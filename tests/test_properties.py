"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ledger.accounts import AccountID, decode_account_id, encode_account_id
from repro.ledger.amounts import Amount
from repro.ledger.crypto import KeyPair, verify
from repro.ledger.currency import EUR, USD, Currency, strength_of
from repro.ledger.state import LedgerState
from repro.ledger.accounts import account_from_name
from repro.core.resolution import (
    AmountResolution,
    TimeResolution,
    coarsen_timestamps,
    granularity_exponent,
    round_amount,
)
from repro.payments.execution import Executor

# Strategy for ledger-precision currency values.
values = st.integers(min_value=1, max_value=10 ** 12).map(lambda v: v / 10 ** 6)
small_values = st.integers(min_value=1, max_value=10 ** 9).map(lambda v: v / 10 ** 6)


class TestBase58Properties:
    @given(st.binary(min_size=20, max_size=20))
    def test_address_roundtrip(self, raw):
        assert decode_account_id(encode_account_id(raw)) == raw

    @given(st.binary(min_size=20, max_size=20))
    def test_address_always_starts_with_r(self, raw):
        assert encode_account_id(raw).startswith("r")


class TestAmountProperties:
    @given(values, values)
    def test_addition_commutes(self, a, b):
        x = Amount.from_value(USD, a)
        y = Amount.from_value(USD, b)
        assert (x + y).to_float() == (y + x).to_float()

    @given(values, values)
    def test_add_then_subtract_is_identity(self, a, b):
        x = Amount.from_value(USD, a)
        y = Amount.from_value(USD, b)
        restored = (x + y) - y
        # 15 significant digits of precision.
        assert restored.to_float() == (
            np.float64(restored.to_float())
        )
        assert abs(restored.to_float() - x.to_float()) <= max(1e-9, x.to_float() * 1e-12)

    @given(values)
    def test_negation_involutive(self, a):
        x = Amount.from_value(USD, a)
        assert (-(-x)).mantissa == x.mantissa
        assert (-(-x)).exponent == x.exponent

    @given(values, st.integers(min_value=-3, max_value=7))
    def test_rounding_is_idempotent(self, a, exponent):
        x = Amount.from_value(USD, a)
        once = x.round_to(exponent)
        twice = once.round_to(exponent)
        assert once.to_float() == twice.to_float()

    @given(values, st.integers(min_value=-3, max_value=7))
    def test_rounding_error_bounded(self, a, exponent):
        x = Amount.from_value(USD, a)
        rounded = x.round_to(exponent)
        granularity = 10.0 ** exponent
        assert abs(rounded.to_float() - x.to_float()) <= granularity / 2 * (1 + 1e-9)

    @given(values, st.integers(min_value=-3, max_value=5))
    def test_rounded_is_multiple_of_granularity(self, a, exponent):
        rounded = Amount.from_value(USD, a).round_to(exponent)
        if not rounded.is_zero:
            scaled = rounded.to_float() / 10.0 ** exponent
            assert abs(scaled - round(scaled)) < 1e-6


class TestResolutionProperties:
    @given(values, st.sampled_from(["USD", "BTC", "XRP", "EUR", "CCK"]))
    def test_scalar_rounding_matches_granularity(self, value, code):
        currency = Currency(code)
        exponent = granularity_exponent(currency, AmountResolution.MAX)
        rounded = round_amount(value, currency, AmountResolution.MAX)
        scaled = rounded / 10.0 ** exponent
        assert abs(scaled - round(scaled)) < 1e-6

    @given(st.lists(st.integers(min_value=0, max_value=10 ** 9), min_size=1, max_size=50))
    def test_coarsening_monotone_nested(self, raw_times):
        times = np.array(raw_times, dtype=np.int64)
        minutes = coarsen_timestamps(times, TimeResolution.MINUTES)
        hours = coarsen_timestamps(times, TimeResolution.HOURS)
        days = coarsen_timestamps(times, TimeResolution.DAYS)
        # Coarser buckets never exceed finer ones, and nesting holds.
        assert (minutes <= times).all()
        assert (hours <= minutes).all()
        assert (days <= hours).all()
        # Same-bucket at fine resolution implies same-bucket at coarse.
        for fine, coarse in ((minutes, hours), (hours, days)):
            for i in range(len(times)):
                for j in range(len(times)):
                    if fine[i] == fine[j]:
                        assert coarse[i] == coarse[j]

    @given(st.sampled_from(["USD", "BTC", "XRP", "EUR", "JPY", "CCK", "MTL", "ZZZ"]))
    def test_every_currency_has_total_strength(self, code):
        # strength_of must be total over the open code space.
        assert strength_of(Currency(code)) is not None


class TestCryptoProperties:
    @settings(max_examples=10, deadline=None)  # modular exponentiation is slow
    @given(st.binary(min_size=0, max_size=64), st.binary(min_size=1, max_size=16))
    def test_sign_verify_roundtrip(self, message, seed):
        keypair = KeyPair.from_seed(seed)
        assert verify(keypair.public, message, keypair.sign(message))

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=1, max_size=32), st.binary(min_size=1, max_size=32))
    def test_cross_message_never_verifies(self, m1, m2):
        if m1 == m2:
            return
        keypair = KeyPair.from_seed(b"prop")
        assert not verify(keypair.public, m2, keypair.sign(m1))


class TestExecutorProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(small_values, min_size=1, max_size=8))
    def test_rollback_restores_exact_balances(self, amounts):
        state = LedgerState()
        a = account_from_name("prop-a")
        b = account_from_name("prop-b")
        state.create_account(a, 10 ** 12)
        state.create_account(b, 10 ** 12)
        state.set_trust(b, a, Amount.from_value(USD, 10 ** 7))
        state.set_trust(a, b, Amount.from_value(USD, 10 ** 7))
        executor = Executor(state)
        for index, value in enumerate(amounts):
            if index % 2 == 0:
                executor.hop(a, b, Amount.from_value(USD, value))
            else:
                executor.xrp(a, b, int(value * 10 ** 6) + 1)
        executor.rollback()
        assert state.iou_balance(a, USD).is_zero
        assert state.iou_balance(b, USD).is_zero
        assert state.xrp_balance(a) == 10 ** 12
        assert state.xrp_balance(b) == 10 ** 12

    @settings(max_examples=40, deadline=None)
    @given(st.lists(small_values, min_size=1, max_size=8))
    def test_hops_conserve_value(self, amounts):
        # A hop moves value: sender position falls, receiver rises, total 0.
        state = LedgerState()
        a = account_from_name("cons-a")
        b = account_from_name("cons-b")
        state.create_account(a, 10 ** 12)
        state.create_account(b, 10 ** 12)
        state.set_trust(b, a, Amount.from_value(USD, 10 ** 7))
        for value in amounts:
            state.apply_hop(a, b, Amount.from_value(USD, value))
        total = (
            state.iou_balance(a, USD).to_float()
            + state.iou_balance(b, USD).to_float()
        )
        assert abs(total) < 1e-6


class TestConsensusProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1), st.integers(min_value=4, max_value=10))
    def test_agreement_and_validity(self, seed, n_validators):
        """RPCA safety: when a round validates, the agreed set is a subset
        of the proposed pool, and all in-sync validators signed the same
        page."""
        from repro.consensus.engine import ConsensusEngine
        from repro.consensus.faults import active
        from repro.consensus.unl import UNL
        from repro.consensus.validator import Validator

        names = [f"v{i}" for i in range(n_validators)]
        unl = UNL.of(names)
        validators = [Validator(n, unl, active(availability=1.0)) for n in names]
        engine = ConsensusEngine(validators, master_unl=unl, seed=seed, keep_outcomes=True)
        report = engine.run(5)
        for outcome in report.outcomes:
            if not outcome.validated:
                continue
            votes = [
                v for v in outcome.validations if v.page_hash == outcome.validated_hash
            ]
            assert len(votes) >= unl.quorum_size(0.8)
            assert len(set(v.validator for v in votes)) == len(votes)


class TestConsensusFaultMixProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2 ** 31 - 1),
        st.integers(min_value=5, max_value=9),   # active
        st.integers(min_value=0, max_value=3),   # lagging
        st.integers(min_value=0, max_value=3),   # forked
        st.integers(min_value=0, max_value=2),   # byzantine
    )
    def test_accounting_invariants_under_random_faults(
        self, seed, n_active, n_lagging, n_forked, n_byzantine
    ):
        """Whatever the fault mix: valid <= total per validator, forked
        validators never produce valid pages, and availability is a valid
        fraction."""
        from repro.consensus.engine import ConsensusEngine
        from repro.consensus.faults import active, byzantine, forked, lagging
        from repro.consensus.unl import UNL
        from repro.consensus.validator import Validator

        names = [f"a{i}" for i in range(n_active)]
        unl = UNL.of(names)
        validators = [Validator(n, unl, active(availability=0.95)) for n in names]
        for i in range(n_lagging):
            validators.append(Validator(f"lag{i}", unl, lagging()))
        for i in range(n_forked):
            validators.append(
                Validator(f"fork{i}", UNL.of([f"fork{i}"]), forked(network_id=1))
            )
        for i in range(n_byzantine):
            validators.append(Validator(f"byz{i}", unl, byzantine()))
        engine = ConsensusEngine(validators, master_unl=unl, seed=seed)
        report = engine.run(25)

        assert 0.0 <= report.availability <= 1.0
        for stats in report.stats.values():
            assert 0 <= stats.valid_pages <= stats.total_pages
        for i in range(n_forked):
            assert report.stats[f"fork{i}"].valid_pages == 0
        # Main-chain hashes are unique (no two rounds validate one page).
        assert len(set(report.main_chain_hashes)) == len(report.main_chain_hashes)
