"""Tests for population analytics and CSV export."""

import csv

import numpy as np
import pytest

from repro.analysis.currencies import currency_ranking
from repro.analysis.export import (
    export_figure2,
    export_figure3,
    export_figure4,
    export_figure5,
    export_figure6,
    export_figure7,
    export_table2,
)
from repro.analysis.gateways import top_intermediaries
from repro.analysis.market_makers import table2
from repro.analysis.paths import path_structure
from repro.analysis.population import (
    growth_is_increasing,
    monthly_volume,
    new_accounts_per_month,
    population_stats,
    top_senders,
)
from repro.analysis.survival import figure5_curves
from repro.core.deanonymizer import Deanonymizer


class TestPopulation:
    def test_stats_shape(self, dataset):
        stats = population_stats(dataset)
        assert stats.accounts_seen > 0
        assert 0 < stats.active_senders <= stats.accounts_seen
        assert 0 < stats.active_share <= 1
        assert stats.payments_per_active_sender >= 1

    def test_minimum_payments_threshold(self, dataset):
        casual = population_stats(dataset, min_payments=1)
        committed = population_stats(dataset, min_payments=10)
        assert committed.active_senders < casual.active_senders

    def test_activity_is_concentrated(self, dataset):
        # Zipf-distributed senders: a heavily unequal activity profile.
        stats = population_stats(dataset)
        assert stats.activity_concentration > 0.3

    def test_monthly_volume_covers_history(self, dataset):
        volume = monthly_volume(dataset)
        months = [month for month, _ in volume]
        assert months == sorted(months)
        assert sum(count for _, count in volume) == len(dataset)

    def test_growth_over_time(self, dataset):
        # The generator's arrival process grows; the analysis must see it.
        assert growth_is_increasing(dataset)

    def test_top_senders_sorted(self, dataset):
        top = top_senders(dataset, top_k=5)
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)

    def test_new_accounts_per_month_totals(self, dataset):
        registrations = new_accounts_per_month(dataset)
        seen = np.union1d(
            np.unique(dataset.sender_ids), np.unique(dataset.destination_ids)
        )
        assert sum(registrations.values()) == len(seen)


class TestExports:
    def read(self, path):
        with open(path) as handle:
            return list(csv.reader(handle))

    def test_export_figure3(self, dataset, tmp_path):
        path = str(tmp_path / "fig3.csv")
        gains = Deanonymizer(dataset).figure3()
        assert export_figure3(gains, path) == 10
        rows = self.read(path)
        assert rows[0] == ["feature_list", "identified", "total", "percent"]
        assert len(rows) == 11

    def test_export_figure4(self, dataset, tmp_path):
        path = str(tmp_path / "fig4.csv")
        count = export_figure4(currency_ranking(dataset), path)
        assert count > 10
        rows = self.read(path)
        assert rows[1][0] == "XRP"

    def test_export_figure5(self, dataset, tmp_path):
        path = str(tmp_path / "fig5.csv")
        curves = figure5_curves(dataset)
        export_figure5(curves, path)
        rows = self.read(path)
        assert rows[0][0] == "amount"
        assert len(rows[0]) == len(curves) + 1

    def test_export_figure6(self, dataset, tmp_path):
        path = str(tmp_path / "fig6.csv")
        export_figure6(path_structure(dataset), path)
        rows = self.read(path)
        series = {row[0] for row in rows[1:]}
        assert series == {"hops", "parallel_paths"}

    def test_export_figure7(self, history, tmp_path):
        path = str(tmp_path / "fig7.csv")
        count = export_figure7(top_intermediaries(history, 20), path)
        assert count == 20

    def test_export_table2(self, history, tmp_path):
        path = str(tmp_path / "table2.csv")
        assert export_table2(table2(history), path) == 3

    def test_export_figure2(self, tmp_path):
        from repro.core.robustness import run_period
        from repro.stream.periods import period

        report = run_period(period("dec2015"), scale=1 / 4000, seed=1)
        path = str(tmp_path / "fig2.csv")
        count = export_figure2(report, path)
        assert count == len(report.observations)
        rows = self.read(path)
        assert rows[1][0] == "R1"
