"""Tests for ledger-archive dump/load, including the corruption matrix."""

import gzip
import json
import os

import pytest

from repro.analysis.archive import (
    dump_archive,
    iter_archive,
    load_archive,
    record_from_json,
    record_to_json,
    validate_payload,
)
from repro.analysis.dataset import TransactionDataset
from repro.durability import IngestStats
from repro.errors import (
    AnalysisError,
    IngestError,
    IntegrityError,
    QuarantineOverflowError,
)


class TestRoundtrip:
    def test_record_json_roundtrip(self, history):
        record = history.records[0]
        assert record_from_json(record_to_json(record)) == record

    def test_plain_file_roundtrip(self, history, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        subset = history.records[:200]
        assert dump_archive(subset, path) == 200
        assert load_archive(path) == subset

    def test_gzip_roundtrip(self, history, tmp_path):
        path = str(tmp_path / "ledger.jsonl.gz")
        subset = history.records[:150]
        dump_archive(subset, path)
        assert load_archive(path) == subset
        # It really is gzip on disk.
        with gzip.open(path, "rt") as handle:
            header = json.loads(handle.readline())
        assert header["records"] == 150

    def test_streaming_is_lazy(self, history, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        dump_archive(history.records[:50], path)
        iterator = iter_archive(path)
        first = next(iterator)
        assert first == history.records[0]

    def test_dataset_from_archive_matches(self, history, tmp_path):
        path = str(tmp_path / "ledger.jsonl.gz")
        dump_archive(history.records, path)
        restored = TransactionDataset.from_records(load_archive(path))
        original = TransactionDataset.from_records(history.records)
        assert len(restored) == len(original)
        assert (restored.amounts == original.amounts).all()
        assert (restored.timestamps == original.timestamps).all()


class TestFailureModes:
    def test_missing_file(self):
        with pytest.raises(AnalysisError):
            list(iter_archive("/nonexistent/ledger.jsonl"))

    def test_truncated_archive_detected(self, history, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        dump_archive(history.records[:30], path)
        lines = open(path).readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-5])  # chop off the tail
        with pytest.raises(AnalysisError, match="truncated"):
            list(iter_archive(path))

    def test_bad_header_rejected(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write("not json\n")
        with pytest.raises(AnalysisError):
            list(iter_archive(path))

    def test_wrong_version_rejected(self, tmp_path):
        path = str(tmp_path / "v99.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"version": 99, "records": 0}) + "\n")
        with pytest.raises(AnalysisError, match="version"):
            list(iter_archive(path))

    def test_missing_field_rejected(self):
        with pytest.raises(AnalysisError):
            record_from_json({"i": 1})


def _mangle_line(path, line_index, mutate):
    """Apply ``mutate`` to one line of a plain-text archive, in place.

    Written with a bare ``open`` on purpose: corruption bypasses the
    atomic-write path, which is exactly the scenario under test.  The
    manifest sidecar is removed so the line-level checks are exercised
    (manifest verification has its own tests).
    """
    lines = open(path).readlines()
    lines[line_index] = mutate(lines[line_index])
    with open(path, "w") as handle:
        handle.writelines(lines)
    try:
        os.remove(path + ".sha256")
    except OSError:
        pass


def _archive(history, tmp_path, n=120, gz=False):
    name = "ledger.jsonl.gz" if gz else "ledger.jsonl"
    path = str(tmp_path / name)
    dump_archive(history.records[:n], path)
    return path


class TestManifestOnRead:
    def test_dump_writes_sidecar_and_load_verifies(self, history, tmp_path):
        path = _archive(history, tmp_path)
        assert os.path.exists(path + ".sha256")
        manifest = json.load(open(path + ".sha256"))
        assert manifest["records"] == 120
        assert load_archive(path) == history.records[:120]

    def test_wrong_manifest_hash_rejected(self, history, tmp_path):
        path = _archive(history, tmp_path)
        manifest = json.load(open(path + ".sha256"))
        manifest["sha256"] = "f" * 64
        del manifest["bytes"]  # force the hash check, not the size check
        with open(path + ".sha256", "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(IntegrityError, match="sha256 mismatch"):
            load_archive(path)

    def test_post_write_corruption_caught_before_parsing(self, history, tmp_path):
        path = _archive(history, tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(IntegrityError):
            load_archive(path)


class TestStrictIngest:
    def test_bad_json_line_is_typed_with_line_number(self, history, tmp_path):
        path = _archive(history, tmp_path)
        _mangle_line(path, 5, lambda line: line[:10] + "\x00garbage\n")
        with pytest.raises(IngestError, match="line 6") as excinfo:
            load_archive(path)
        assert excinfo.value.line_number == 6

    def test_missing_field_is_typed_with_line_number(self, history, tmp_path):
        path = _archive(history, tmp_path)

        def drop_amount(line):
            payload = json.loads(line)
            del payload["a"]
            return json.dumps(payload) + "\n"

        _mangle_line(path, 3, drop_amount)
        with pytest.raises(IngestError, match="line 4.*missing:amount"):
            load_archive(path)

    def test_negative_amount_rejected(self, history, tmp_path):
        path = _archive(history, tmp_path)

        def negate(line):
            payload = json.loads(line)
            payload["a"] = -3.5
            return json.dumps(payload) + "\n"

        _mangle_line(path, 7, negate)
        with pytest.raises(IngestError, match="schema:amount"):
            load_archive(path)

    def test_pre_epoch_timestamp_rejected(self, history, tmp_path):
        path = _archive(history, tmp_path)

        def backdate(line):
            payload = json.loads(line)
            payload["t"] = -1
            return json.dumps(payload) + "\n"

        _mangle_line(path, 2, backdate)
        with pytest.raises(IngestError, match="schema:timestamp"):
            load_archive(path)

    def test_bit_flipped_address_rejected(self, history, tmp_path):
        path = _archive(history, tmp_path)

        def flip(line):
            payload = json.loads(line)
            payload["s"] = "r" + "Q" * 30
            return json.dumps(payload) + "\n"

        _mangle_line(path, 4, flip)
        with pytest.raises(IngestError, match="decode:"):
            load_archive(path)

    def test_truncated_gzip_reported_distinctly(self, history, tmp_path):
        path = _archive(history, tmp_path, gz=True)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        os.remove(path + ".sha256")
        with pytest.raises(AnalysisError, match="gzip stream truncated"):
            load_archive(path)

    def test_not_gzip_at_all_reported_distinctly(self, history, tmp_path):
        path = str(tmp_path / "fake.jsonl.gz")
        with open(path, "wb") as handle:
            handle.write(b"this was never gzip data at all\n")
        with pytest.raises(AnalysisError, match="not a valid gzip"):
            load_archive(path)


class TestLenientIngest:
    def test_bad_lines_quarantined_with_reason(self, history, tmp_path):
        path = _archive(history, tmp_path)
        _mangle_line(path, 5, lambda line: "not json at all\n")

        def negate(line):
            payload = json.loads(line)
            payload["a"] = -1.0
            return json.dumps(payload) + "\n"

        _mangle_line(path, 9, negate)
        stats = IngestStats()
        records = load_archive(path, strict=False, stats=stats)
        assert len(records) == 118
        assert stats.read == 118
        assert stats.quarantined == 2
        assert stats.reasons == {"parse": 1, "schema:amount": 1}
        entries = [
            json.loads(line)
            for line in open(path + ".quarantine.jsonl")
        ]
        assert [entry["line"] for entry in entries] == [6, 10]
        assert entries[0]["reason"] == "parse"
        assert entries[1]["reason"] == "schema:amount"
        assert "raw" in entries[0]

    def test_clean_archive_leaves_no_quarantine_file(self, history, tmp_path):
        path = _archive(history, tmp_path)
        stats = IngestStats()
        load_archive(path, strict=False, stats=stats)
        assert stats.quarantined == 0
        assert not os.path.exists(path + ".quarantine.jsonl")

    def test_bad_fraction_cap_aborts(self, history, tmp_path):
        path = _archive(history, tmp_path, n=200)
        lines = open(path).readlines()
        # Wreck every fourth data line: 25% bad ≫ the 1% default cap.
        for index in range(1, len(lines), 4):
            lines[index] = "garbage\n"
        with open(path, "w") as handle:
            handle.writelines(lines)
        os.remove(path + ".sha256")
        with pytest.raises(QuarantineOverflowError, match="tolerance"):
            load_archive(path, strict=False)

    def test_loose_cap_tolerates_more(self, history, tmp_path):
        path = _archive(history, tmp_path, n=200)
        lines = open(path).readlines()
        for index in range(1, len(lines), 4):
            lines[index] = "garbage\n"
        with open(path, "w") as handle:
            handle.writelines(lines)
        os.remove(path + ".sha256")
        stats = IngestStats()
        records = load_archive(
            path, strict=False, max_bad_fraction=0.5, stats=stats
        )
        assert len(records) == 150
        assert stats.quarantined == 50

    def test_header_truncation_still_detected_in_lenient_mode(
        self, history, tmp_path
    ):
        path = _archive(history, tmp_path)
        lines = open(path).readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-10])
        os.remove(path + ".sha256")
        with pytest.raises(AnalysisError, match="truncated"):
            load_archive(path, strict=False)


class TestValidatePayload:
    def test_accepts_real_records(self, history):
        for record in history.records[:50]:
            assert validate_payload(record_to_json(record)) is None

    @pytest.mark.parametrize("mutation,reason", [
        ({"a": float("nan")}, "schema:amount"),
        ({"h": -1}, "schema:counts"),
        ({"p": -2}, "schema:counts"),
        ({"c": "TOOLONG"}, "schema:currency"),
        ({"c": 12}, "schema:currency"),
        ({"t": "not-a-number"}, "schema:type"),
        ({"via": "rabc"}, "schema:via"),
        ({"s": 5}, "schema:address"),
    ])
    def test_rejects_mutations(self, history, mutation, reason):
        payload = record_to_json(history.records[0])
        payload.update(mutation)
        assert validate_payload(payload) == reason

    def test_rejects_non_objects(self):
        assert validate_payload([1, 2]) == "schema:not-an-object"
