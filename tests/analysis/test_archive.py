"""Tests for ledger-archive dump/load."""

import gzip
import json

import pytest

from repro.analysis.archive import (
    dump_archive,
    iter_archive,
    load_archive,
    record_from_json,
    record_to_json,
)
from repro.analysis.dataset import TransactionDataset
from repro.errors import AnalysisError


class TestRoundtrip:
    def test_record_json_roundtrip(self, history):
        record = history.records[0]
        assert record_from_json(record_to_json(record)) == record

    def test_plain_file_roundtrip(self, history, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        subset = history.records[:200]
        assert dump_archive(subset, path) == 200
        assert load_archive(path) == subset

    def test_gzip_roundtrip(self, history, tmp_path):
        path = str(tmp_path / "ledger.jsonl.gz")
        subset = history.records[:150]
        dump_archive(subset, path)
        assert load_archive(path) == subset
        # It really is gzip on disk.
        with gzip.open(path, "rt") as handle:
            header = json.loads(handle.readline())
        assert header["records"] == 150

    def test_streaming_is_lazy(self, history, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        dump_archive(history.records[:50], path)
        iterator = iter_archive(path)
        first = next(iterator)
        assert first == history.records[0]

    def test_dataset_from_archive_matches(self, history, tmp_path):
        path = str(tmp_path / "ledger.jsonl.gz")
        dump_archive(history.records, path)
        restored = TransactionDataset.from_records(load_archive(path))
        original = TransactionDataset.from_records(history.records)
        assert len(restored) == len(original)
        assert (restored.amounts == original.amounts).all()
        assert (restored.timestamps == original.timestamps).all()


class TestFailureModes:
    def test_missing_file(self):
        with pytest.raises(AnalysisError):
            list(iter_archive("/nonexistent/ledger.jsonl"))

    def test_truncated_archive_detected(self, history, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        dump_archive(history.records[:30], path)
        lines = open(path).readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-5])  # chop off the tail
        with pytest.raises(AnalysisError, match="truncated"):
            list(iter_archive(path))

    def test_bad_header_rejected(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write("not json\n")
        with pytest.raises(AnalysisError):
            list(iter_archive(path))

    def test_wrong_version_rejected(self, tmp_path):
        path = str(tmp_path / "v99.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"version": 99, "records": 0}) + "\n")
        with pytest.raises(AnalysisError, match="version"):
            list(iter_archive(path))

    def test_missing_field_rejected(self):
        with pytest.raises(AnalysisError):
            record_from_json({"i": 1})
