"""The batched ETL must factorize exactly like the per-row reference."""

from __future__ import annotations

import numpy as np

from repro.analysis.dataset import TransactionDataset


def reference_from_records(records):
    """The historical per-row loop, kept as the semantic specification."""
    rows = [record for record in records if record.delivered]
    account_index, accounts = {}, []
    currency_index, currencies = {}, []

    def intern_account(account):
        found = account_index.get(account)
        if found is None:
            found = account_index[account] = len(accounts)
            accounts.append(account)
        return found

    def intern_currency(code):
        found = currency_index.get(code)
        if found is None:
            found = currency_index[code] = len(currencies)
            currencies.append(code)
        return found

    n = len(rows)
    columns = {
        "timestamps": np.empty(n, dtype=np.int64),
        "sender_ids": np.empty(n, dtype=np.int64),
        "destination_ids": np.empty(n, dtype=np.int64),
        "currency_ids": np.empty(n, dtype=np.int64),
        "amounts": np.empty(n, dtype=np.float64),
    }
    for i, record in enumerate(rows):
        columns["timestamps"][i] = record.timestamp
        columns["sender_ids"][i] = intern_account(record.sender)
        columns["destination_ids"][i] = intern_account(record.destination)
        columns["currency_ids"][i] = intern_currency(record.currency)
        columns["amounts"][i] = record.amount
    return accounts, currencies, columns


class TestFromRecordsEquivalence:
    def test_matches_reference_loop(self, history):
        dataset = TransactionDataset.from_records(history.records)
        accounts, currencies, columns = reference_from_records(history.records)
        assert dataset.accounts == accounts
        assert dataset.currencies == currencies
        for name, expected in columns.items():
            np.testing.assert_array_equal(getattr(dataset, name), expected)

    def test_currency_index_matches_list_scan(self, dataset):
        for code in dataset.currencies:
            np.testing.assert_array_equal(
                dataset.rows_for_currency(code),
                dataset.currency_ids == dataset.currencies.index(code),
            )
        assert not dataset.rows_for_currency("ZZZ").any()

    def test_mask_subset_keeps_currency_lookup(self, dataset):
        subset = dataset.mask_subset(dataset.multi_hop_mask())
        for code in subset.currencies:
            np.testing.assert_array_equal(
                subset.rows_for_currency(code),
                subset.currency_ids == subset.currencies.index(code),
            )
