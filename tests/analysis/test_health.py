"""Credit-network health: liquidity, concentration, utilization, settlability.

The settlability probe's design contract is monotonicity: banning a relayer
can only remove capacity, never add it.  The hypothesis property at the
bottom states that directly on a two-gateway economy where bans actually
bite (unlike the synthetic CCK hub swarm, which routes around gateways).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.health import (
    OVERUTILIZED_THRESHOLD,
    health_report,
    issuer_concentration,
    liquidity_distribution,
    pair_settles,
    render_health,
    sample_pairs,
    settlability_outcomes,
    settlability_probe,
    utilization_profile,
)
from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import USD, XRP, eur_value
from repro.ledger.state import LedgerState

#: Accounts of the two-gateway economy, in a fixed order so hypothesis can
#: draw ban sets as index prefixes of a permutation.
RICH_NAMES = ("gw1", "gw2", "u0", "u1", "u2", "u3")


@pytest.fixture(scope="module")
def rich_state():
    """Four users holding 300 USD at each of two gateways.

    Every user pair settles 100 USD through either gateway; banning one
    gateway halves the depth, banning both strands everyone.  This is the
    economy where relayer bans have visible, strictly ordered effects.
    """
    state = LedgerState()
    accounts = {
        name: account_from_name(name, namespace="health-tests")
        for name in RICH_NAMES
    }
    for account in accounts.values():
        state.create_account(account, 10 ** 9)
    for user in ("u0", "u1", "u2", "u3"):
        for gateway in ("gw1", "gw2"):
            state.set_trust(
                accounts[user], accounts[gateway], Amount.from_value(USD, 1000)
            )
            state.apply_hop(
                accounts[gateway], accounts[user], Amount.from_value(USD, 300)
            )
    return state, accounts


class TestLiquidity:
    def test_iou_contributions_cancel_in_the_total(self, simple_state):
        state, actors = simple_state
        wallets = [actors[n] for n in ("alice", "bob", "carol", "gateway")]
        dist = liquidity_distribution(state, wallets)
        # Every IOU is someone's asset and someone else's liability, so
        # the aggregate is just everyone's XRP at the EUR rate.
        xrp_eur = (10 ** 9 / 10 ** 6) * eur_value(XRP)
        assert dist.wallets == 4
        assert dist.total_eur == pytest.approx(4 * xrp_eur)

    def test_deposit_holder_is_richer_than_peers(self, simple_state):
        state, actors = simple_state
        wallets = [actors[n] for n in ("alice", "bob", "carol")]
        dist = liquidity_distribution(state, wallets)
        alice = liquidity_distribution(state, [actors["alice"]])
        bob = liquidity_distribution(state, [actors["bob"]])
        assert alice.total_eur > bob.total_eur
        assert dist.p90_eur >= dist.median_eur >= 0.0


class TestIssuerConcentration:
    def test_single_issuer_owns_the_market(self, simple_state):
        state, actors = simple_state
        conc = issuer_concentration(state)
        assert conc.issuers == 1
        assert conc.outstanding_eur == pytest.approx(500 * eur_value(USD))
        assert conc.share_of_top(1) == pytest.approx(1.0)

    def test_two_gateways_split_evenly(self, rich_state):
        state, _ = rich_state
        conc = issuer_concentration(state, top_ks=(1, 2))
        assert conc.issuers == 2
        assert conc.share_of_top(1) == pytest.approx(0.5)
        assert conc.share_of_top(2) == pytest.approx(1.0)


class TestUtilization:
    def test_profile_counts_credited_lines(self, simple_state):
        state, _ = simple_state
        profile = utilization_profile(state)
        # Three lines at limit 1000; only alice's carries a 500 balance.
        assert profile.lines == 3
        assert profile.mean == pytest.approx(0.5 / 3)
        assert profile.threshold == OVERUTILIZED_THRESHOLD
        assert profile.overextended == 0
        assert profile.overextended_fraction == 0.0

    def test_lower_threshold_flags_the_hot_line(self, simple_state):
        state, _ = simple_state
        profile = utilization_profile(state, threshold=0.4)
        assert profile.overextended == 1
        assert profile.overextended_fraction == pytest.approx(1 / 3)


class TestPairSettles:
    def test_deposit_ripples_through_the_gateway(self, simple_state):
        state, actors = simple_state
        assert pair_settles(
            state, actors["alice"], actors["bob"], USD, 100.0
        )

    def test_amount_beyond_the_deposit_fails(self, simple_state):
        state, actors = simple_state
        assert not pair_settles(
            state, actors["alice"], actors["bob"], USD, 600.0
        )

    def test_empty_wallet_cannot_pay(self, simple_state):
        state, actors = simple_state
        assert not pair_settles(
            state, actors["bob"], actors["carol"], USD, 50.0
        )

    def test_banning_the_only_relayer_strands_the_pair(self, simple_state):
        state, actors = simple_state
        assert not pair_settles(
            state, actors["alice"], actors["bob"], USD, 100.0,
            banned={actors["gateway"]},
        )

    def test_exact_fallback_splits_across_gateways(self, rich_state):
        # 500 USD needs both gateways (300 each): a multi-path answer the
        # greedy planner may miss but the exact max flow must certify.
        state, accounts = rich_state
        assert pair_settles(
            state, accounts["u0"], accounts["u1"], USD, 500.0
        )
        assert not pair_settles(
            state, accounts["u0"], accounts["u1"], USD, 500.0,
            banned={accounts["gw1"]},
        )


class TestSampling:
    def test_same_seed_same_pairs(self, simple_state):
        state, actors = simple_state
        wallets = [actors[n] for n in ("alice", "bob", "carol")]
        first = sample_pairs(state, wallets, pairs=10, seed=3)
        second = sample_pairs(state, wallets, pairs=10, seed=3)
        assert first == second
        assert all(source != target for source, target, _ in first)

    def test_probe_matches_outcome_stream(self, rich_state):
        state, accounts = rich_state
        users = [accounts[n] for n in RICH_NAMES if n.startswith("u")]
        probe = settlability_probe(state, users, pairs=20, amount=50.0, seed=1)
        outcomes = settlability_outcomes(
            state, users, pairs=20, amount=50.0, seed=1
        )
        assert probe.pairs == len(outcomes)
        assert probe.settlable == sum(outcomes)
        assert 0.0 <= probe.fraction <= 1.0


class TestReport:
    def test_report_renders_every_section(self, simple_state):
        state, actors = simple_state
        wallets = [actors[n] for n in ("alice", "bob", "carol")]
        report = health_report(state, wallets, pairs=10, seed=2)
        text = render_health(report)
        for heading in (
            "Wallet liquidity",
            "IOU issuer concentration",
            "Trust-limit utilization",
            "Settlability",
        ):
            assert heading in text

    def test_as_dict_is_json_clean(self, simple_state):
        state, actors = simple_state
        report = health_report(state, [actors["alice"]], pairs=5, seed=2)
        round_tripped = json.loads(json.dumps(report.as_dict()))
        assert round_tripped["liquidity"]["wallets"] == 1


class TestBanMonotonicity:
    """Removing an account never increases the settlable-pair fraction."""

    @staticmethod
    def _settlable(state, accounts, banned):
        users = [accounts[n] for n in RICH_NAMES if n.startswith("u")]
        return sum(
            pair_settles(state, source, target, USD, 100.0, banned=banned)
            for source in users
            for target in users
            if source != target
        )

    def test_known_collapse_points(self, rich_state):
        state, accounts = rich_state
        assert self._settlable(state, accounts, set()) == 12
        assert self._settlable(state, accounts, {accounts["gw1"]}) == 12
        both = {accounts["gw1"], accounts["gw2"]}
        assert self._settlable(state, accounts, both) == 0

    @given(
        order=st.permutations(list(range(len(RICH_NAMES)))),
        cuts=st.tuples(
            st.integers(0, len(RICH_NAMES)),
            st.integers(0, len(RICH_NAMES)),
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_bans_never_increase_settlability(self, rich_state, order, cuts):
        state, accounts = rich_state
        lo, hi = sorted(cuts)
        smaller = {accounts[RICH_NAMES[i]] for i in order[:lo]}
        larger = {accounts[RICH_NAMES[i]] for i in order[:hi]}
        assert self._settlable(state, accounts, larger) <= self._settlable(
            state, accounts, smaller
        )
