"""Tests for the appendix analyses: dataset, Figs. 4-7, Table II."""

import numpy as np
import pytest

from repro.analysis.currencies import (
    currency_ranking,
    rank_of,
    share_of,
    unrecognized_in_top,
)
from repro.analysis.dataset import TransactionDataset
from repro.analysis.gateways import (
    balance_eur,
    coverage_of_top,
    gateway_count_in_top,
    intermediary_counts,
    top_intermediaries,
    trust_profile_eur,
)
from repro.analysis.market_makers import (
    offer_concentration,
    replay_without_market_makers,
    table2,
)
from repro.analysis.paths import path_structure, spam_hop_attribution
from repro.analysis.survival import curve_distance, figure5_curves, survival_curve
from repro.api.render import (
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_table2,
)
from repro.errors import AnalysisError


class TestDataset:
    def test_lengths_consistent(self, dataset):
        n = len(dataset)
        assert len(dataset.sender_ids) == n
        assert len(dataset.amounts) == n
        assert len(dataset.currency_ids) == n

    def test_only_delivered_by_default(self, history, dataset):
        delivered = sum(1 for r in history.records if r.delivered)
        assert len(dataset) == delivered

    def test_include_failures_option(self, history):
        full = TransactionDataset.from_records(history.records, delivered_only=False)
        assert len(full) == len(history.records)

    def test_factorization_roundtrip(self, history, dataset):
        record = history.records[0]
        row_sender = dataset.accounts[int(dataset.sender_ids[0])]
        assert row_sender == record.sender

    def test_mask_subset(self, dataset):
        mask = dataset.rows_for_currency("XRP")
        subset = dataset.mask_subset(mask)
        assert len(subset) == int(mask.sum())
        assert all(
            subset.currencies[int(i)] == "XRP" for i in np.unique(subset.currency_ids)
        )

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            TransactionDataset.from_records([])

    def test_multi_hop_mask(self, dataset):
        mask = dataset.multi_hop_mask()
        assert not (mask & dataset.is_xrp_direct).any()

    def test_time_window_mask(self, dataset):
        start = int(dataset.timestamps.min())
        mask = dataset.time_window_mask(start, start)
        assert mask.any()


class TestFigure4Currencies:
    def test_xrp_on_top_at_about_half(self, dataset):
        ranking = currency_ranking(dataset)
        assert ranking[0].code == "XRP"
        assert ranking[0].share == pytest.approx(0.49, abs=0.03)

    def test_cck_and_mtl_in_top_three(self, dataset):
        top3 = [usage.code for usage in currency_ranking(dataset)[:3]]
        assert "CCK" in top3 and "MTL" in top3

    def test_unrecognized_in_top(self, dataset):
        assert set(unrecognized_in_top(dataset, 3)) == {"CCK", "MTL"}

    def test_btc_first_well_known_fiat(self, dataset):
        assert rank_of(dataset, "BTC") < rank_of(dataset, "USD")
        assert rank_of(dataset, "USD") < rank_of(dataset, "EUR")

    def test_shares(self, dataset):
        assert share_of(dataset, "BTC") == pytest.approx(0.047, abs=0.02)
        assert share_of(dataset, "EUR") < 0.02

    def test_ranking_sorted(self, dataset):
        counts = [usage.payments for usage in currency_ranking(dataset)]
        assert counts == sorted(counts, reverse=True)


class TestFigure5Survival:
    def test_survival_monotone_decreasing(self, dataset):
        curves = figure5_curves(dataset)
        for curve in curves.values():
            values = list(curve.values)
            assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_eur_usd_similar(self, dataset):
        curves = figure5_curves(dataset)
        assert curve_distance(curves["EUR"], curves["USD"]) < 0.35

    def test_btc_cck_micro_regime(self, dataset):
        curves = figure5_curves(dataset)
        # Most BTC/CCK payments are below 1 unit.
        assert curves["BTC"].at(1.0) < 0.35
        assert curves["CCK"].at(1.0) < 0.35
        # while USD payments are mostly above 1.
        assert curves["USD"].at(1.0) > 0.5

    def test_mtl_cliff_at_1e9(self, dataset):
        curves = figure5_curves(dataset)
        assert curves["MTL"].at(1e7) > 0.95
        assert curves["MTL"].at(1e11) < 0.05

    def test_global_is_mixture(self, dataset):
        curves = figure5_curves(dataset)
        assert curves["Global"].samples == len(dataset)

    def test_median(self):
        curve = survival_curve(np.array([1.0] * 50 + [100.0] * 50), "x", grid=[0.5, 2, 500])
        assert curve.median() == pytest.approx(2)

    def test_mismatched_grids_rejected(self, dataset):
        a = survival_curve(dataset.amounts, "a", grid=[1, 2])
        b = survival_curve(dataset.amounts, "b", grid=[1, 3])
        with pytest.raises(AnalysisError):
            curve_distance(a, b)


class TestFigure6Paths:
    def test_direct_xrp_excluded(self, dataset):
        structure = path_structure(dataset)
        assert structure.direct_xrp_payments > 0
        assert structure.multi_hop_payments + structure.direct_xrp_payments <= len(dataset)

    def test_spam_spike_at_8(self, dataset):
        structure = path_structure(dataset)
        assert structure.modal_spam_hop() == 8
        assert structure.hop_share(8) == pytest.approx(0.28, abs=0.05)

    def test_organic_trend_decreasing(self, dataset):
        structure = path_structure(dataset)
        assert structure.hop_share(1) > structure.hop_share(2)
        assert structure.hop_share(2) > structure.hop_share(4)

    def test_44_hop_outlier_present(self, dataset):
        structure = path_structure(dataset)
        assert structure.hops_histogram.get(44, 0) >= 1

    def test_parallel_paths_spike_at_6(self, dataset):
        structure = path_structure(dataset)
        assert structure.parallel_share(6) == pytest.approx(0.28, abs=0.05)
        assert structure.parallel_share(5) < 0.02

    def test_parallel_mass_at_1_to_4(self, dataset):
        structure = path_structure(dataset)
        organic = sum(structure.parallel_share(k) for k in (1, 2, 3, 4))
        assert organic > 0.6

    def test_8_hop_spike_is_mtl(self, dataset):
        attribution = spam_hop_attribution(dataset, 8)
        assert max(attribution, key=attribution.get) == "MTL"


class TestTable2:
    def test_cross_currency_all_fail(self, history):
        result = table2(history)
        assert result.cross_currency.submitted > 50
        assert result.cross_currency.delivered == 0

    def test_single_currency_majority_fails(self, history):
        result = table2(history)
        assert 0.15 < result.single_currency.delivery_rate < 0.60

    def test_total_rate_small(self, history):
        result = table2(history)
        assert result.total.delivery_rate < 0.25

    def test_control_replay_mostly_delivers(self, history):
        control = replay_without_market_makers(history, remove_market_makers=False)
        assert control.total.delivery_rate > 0.7

    def test_window_is_majority_cross_currency(self, history):
        result = table2(history)
        cross_share = result.cross_currency.submitted / result.total.submitted
        assert cross_share == pytest.approx(0.687, abs=0.12)


class TestOfferConcentration:
    def test_top10_majority(self, history):
        concentration = offer_concentration(history.offer_records)
        assert 0.4 < concentration.share_of_top(10) < 0.85
        assert concentration.share_of_top(50) > concentration.share_of_top(10)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            offer_concentration([])


class TestFigure7Gateways:
    def test_hubs_are_top_two(self, history):
        profiles = top_intermediaries(history, 50)
        top2 = {profiles[0].label, profiles[1].label}
        assert top2 == {"rp2PaY...X1mEx7", "r42Ccn...Xqm5M3"}
        assert not profiles[0].is_gateway and not profiles[1].is_gateway

    def test_gateways_present_in_top50(self, history):
        count = gateway_count_in_top(history, 50)
        assert count >= 5

    def test_gateway_profile_shape(self, history):
        profiles = top_intermediaries(history, 50)
        gateways = [p for p in profiles if p.is_gateway]
        # Gateways: large incoming trust, negative balances.
        assert all(p.incoming_trust_eur > p.outgoing_trust_eur for p in gateways)
        assert all(p.balance_eur < 0 for p in gateways)

    def test_hub_balances_positive(self, history):
        profiles = top_intermediaries(history, 2)
        assert all(p.balance_eur > 0 for p in profiles)

    def test_coverage_of_top50(self, history):
        assert coverage_of_top(history, 50) > 0.8

    def test_spam_relays_excluded(self, history):
        counts = intermediary_counts(history.records)
        assert not any(
            history.cast.label(account).startswith("mtl-relay") for account in counts
        )

    def test_spam_relays_included_when_asked(self, history):
        counts = intermediary_counts(history.records, exclude_spam=False)
        assert any(
            history.cast.label(account).startswith("mtl-relay") for account in counts
        )

    def test_trust_profile_eur(self, history):
        gateway = history.cast.gateways[0].account
        incoming, outgoing = trust_profile_eur(history.state, gateway)
        assert incoming > 0

    def test_balance_eur_matches_sign(self, history):
        gateway = history.cast.gateways[0].account
        assert balance_eur(history.state, gateway) < 0


class TestRendering:
    def test_all_renderers_produce_text(self, history, dataset):
        from repro.core.deanonymizer import Deanonymizer
        from repro.core.robustness import run_period
        from repro.stream.periods import period

        assert "Figure 4" in render_figure4(currency_ranking(dataset))
        assert "Figure 5" in render_figure5(figure5_curves(dataset), [1.0, 100.0])
        assert "Figure 6" in render_figure6(path_structure(dataset))
        assert "Figure 7" in render_figure7(top_intermediaries(history, 10))
        assert "Table II" in render_table2(table2(history))
        igs = Deanonymizer(dataset).figure3()
        assert "Figure 3" in render_figure3(igs)
        report = run_period(period("dec2015"), scale=1 / 2000, seed=0)
        assert "Figure 2" in render_figure2(report)
