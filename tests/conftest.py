"""Shared fixtures: one small synthetic history reused across test modules.

Generating a history executes thousands of payments through the real
engine, so the expensive fixtures are session-scoped — the same pattern as
the paper's analyses all reading one ledger download.
"""

from __future__ import annotations

import pytest

from repro.analysis.dataset import TransactionDataset
from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import EUR, USD
from repro.ledger.state import LedgerState
from repro.synthetic.config import small_config
from repro.synthetic.generator import generate_history


@pytest.fixture(scope="session")
def history():
    """A 4k-payment synthetic history (session-scoped; ~3 s to build)."""
    return generate_history(small_config(seed=7, n_payments=4_000))


@pytest.fixture(scope="session")
def dataset(history):
    """Columnar dataset over the session history's delivered payments."""
    return TransactionDataset.from_records(history.records)


@pytest.fixture()
def simple_state():
    """A tiny hand-built ledger: alice/bob/carol around one gateway.

    * everyone holds plenty of XRP;
    * alice, bob, carol trust the gateway for 1000 USD;
    * alice has a 500 USD deposit (the gateway owes her).
    """
    state = LedgerState()
    actors = {}
    for name in ("alice", "bob", "carol", "gateway"):
        account = account_from_name(name, namespace="tests")
        state.create_account(account, 10 ** 9)
        actors[name] = account
    for name in ("alice", "bob", "carol"):
        state.set_trust(actors[name], actors["gateway"], Amount.from_value(USD, 1000))
    state.apply_hop(actors["gateway"], actors["alice"], Amount.from_value(USD, 500))
    return state, actors
