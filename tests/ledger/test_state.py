"""Tests for mutable ledger state."""

import pytest

from repro.errors import (
    InsufficientBalanceError,
    LedgerError,
    TrustLineError,
    UnknownAccountError,
)
from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import EUR, USD
from repro.ledger.offers import Offer
from repro.ledger.state import BASE_RESERVE_DROPS, LedgerState


def usd(value):
    return Amount.from_value(USD, value)


class TestAccounts:
    def test_create_and_lookup(self, simple_state):
        state, actors = simple_state
        assert state.has_account(actors["alice"])
        assert state.xrp_balance(actors["alice"]) == 10 ** 9

    def test_duplicate_create_rejected(self, simple_state):
        state, actors = simple_state
        with pytest.raises(LedgerError):
            state.create_account(actors["alice"])

    def test_unknown_account_raises(self):
        state = LedgerState()
        with pytest.raises(UnknownAccountError):
            state.account(account_from_name("ghost"))

    def test_xrp_transfer(self, simple_state):
        state, actors = simple_state
        state.transfer_xrp(actors["alice"], actors["bob"], 500)
        assert state.xrp_balance(actors["bob"]) == 10 ** 9 + 500

    def test_overdraft_rejected(self, simple_state):
        state, actors = simple_state
        with pytest.raises(InsufficientBalanceError):
            state.transfer_xrp(actors["alice"], actors["bob"], 10 ** 10)

    def test_reserve_enforcement(self, simple_state):
        state, actors = simple_state
        state.enforce_reserve = True
        spendable = 10 ** 9 - BASE_RESERVE_DROPS
        state.transfer_xrp(actors["alice"], actors["bob"], spendable)
        with pytest.raises(InsufficientBalanceError):
            state.transfer_xrp(actors["alice"], actors["bob"], 1)

    def test_fee_burning_destroys_xrp(self, simple_state):
        state, actors = simple_state
        total_before = state.total_xrp_drops()
        state.burn_fee(actors["alice"], 10)
        assert state.total_xrp_drops() == total_before - 10
        assert state.burned_fee_drops == 10

    def test_sequence_numbers_monotone(self, simple_state):
        state, actors = simple_state
        first = state.next_sequence(actors["alice"])
        second = state.next_sequence(actors["alice"])
        assert second == first + 1


class TestTrust:
    def test_set_trust_creates_line(self, simple_state):
        state, actors = simple_state
        line = state.trust_line(actors["alice"], actors["gateway"], USD)
        assert line is not None and line.limit.to_float() == 1000

    def test_set_trust_updates_limit(self, simple_state):
        state, actors = simple_state
        state.set_trust(actors["alice"], actors["gateway"], usd(2000))
        line = state.trust_line(actors["alice"], actors["gateway"], USD)
        assert line.limit.to_float() == 2000

    def test_indexes_consistent(self, simple_state):
        state, actors = simple_state
        trusted = state.lines_trusted_by(actors["alice"])
        trusting = state.lines_trusting(actors["gateway"])
        assert any(line.trustee == actors["gateway"] for line in trusted)
        assert any(line.truster == actors["alice"] for line in trusting)

    def test_iou_balance_nets_credit_and_debt(self, simple_state):
        state, actors = simple_state
        # alice holds 500 of gateway credit
        assert state.iou_balance(actors["alice"], USD).to_float() == 500
        assert state.iou_balance(actors["gateway"], USD).to_float() == -500


class TestHops:
    def test_hop_capacity_combines_directions(self, simple_state):
        state, actors = simple_state
        # gateway -> bob: bob trusts gateway for 1000, no debt yet.
        assert state.hop_capacity(actors["gateway"], actors["bob"], USD) == 1000
        # alice -> gateway: alice holds 500 (settle) + no trust from gateway.
        assert state.hop_capacity(actors["alice"], actors["gateway"], USD) == 500

    def test_apply_hop_settles_before_extending(self, simple_state):
        state, actors = simple_state
        # alice pays gateway 300: settles 300 of the gateway's 500 debt.
        state.apply_hop(actors["alice"], actors["gateway"], usd(300))
        assert state.iou_balance(actors["alice"], USD).to_float() == 200

    def test_apply_hop_mixed_settle_extend(self, simple_state):
        state, actors = simple_state
        # gateway owes alice 500; gateway also trusts nobody.  Alice pays
        # 600: 500 settles, 100 requires trust gateway->alice — absent.
        with pytest.raises(TrustLineError):
            state.apply_hop(actors["alice"], actors["gateway"], usd(600))

    def test_apply_hop_without_any_line_rejected(self, simple_state):
        state, actors = simple_state
        with pytest.raises(TrustLineError):
            state.apply_hop(actors["alice"], actors["bob"], usd(1))


class TestOffers:
    def offer(self, actors, sequence=1, pays=110.0, gets=100.0):
        return Offer(
            owner=actors["alice"],
            sequence=sequence,
            taker_pays=usd(pays),
            taker_gets=Amount.from_value(EUR, gets),
        )

    def test_place_and_book_lookup(self, simple_state):
        state, actors = simple_state
        state.place_offer(self.offer(actors))
        book = state.book_offers(USD, EUR)
        assert len(book) == 1

    def test_books_sorted_by_quality(self, simple_state):
        state, actors = simple_state
        state.place_offer(self.offer(actors, sequence=1, pays=120))
        state.place_offer(self.offer(actors, sequence=2, pays=105))
        book = state.book_offers(USD, EUR)
        assert book[0].sequence == 2

    def test_duplicate_offer_rejected(self, simple_state):
        state, actors = simple_state
        state.place_offer(self.offer(actors))
        with pytest.raises(LedgerError):
            state.place_offer(self.offer(actors))

    def test_cancel(self, simple_state):
        state, actors = simple_state
        state.place_offer(self.offer(actors))
        assert state.cancel_offer(actors["alice"], 1)
        assert not state.cancel_offer(actors["alice"], 1)
        assert state.book_offers(USD, EUR) == []

    def test_consumed_offers_pruned_lazily(self, simple_state):
        state, actors = simple_state
        offer = self.offer(actors)
        state.place_offer(offer)
        offer.fill(Amount.from_value(EUR, 100))
        assert state.book_offers(USD, EUR) == []
        assert (actors["alice"], 1) not in state.offers

    def test_remove_all_offers_of_owner(self, simple_state):
        state, actors = simple_state
        state.place_offer(self.offer(actors, sequence=1))
        state.place_offer(self.offer(actors, sequence=2))
        assert state.remove_all_offers_of(actors["alice"]) == 2
        assert state.book_offers(USD, EUR) == []
