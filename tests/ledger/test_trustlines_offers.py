"""Tests for trust lines and exchange offers."""

import pytest

from repro.errors import InvalidAmountError, OfferError, TrustLineError
from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import EUR, USD, XRP
from repro.ledger.offers import Offer, better_quality
from repro.ledger.trustlines import TrustLine

ALICE = account_from_name("alice")
BOB = account_from_name("bob")


def usd(value):
    return Amount.from_value(USD, value)


class TestTrustLine:
    def test_no_self_trust(self):
        with pytest.raises(TrustLineError):
            TrustLine(ALICE, ALICE, USD, usd(10))

    def test_no_xrp_trust_lines(self):
        with pytest.raises(TrustLineError):
            TrustLine(ALICE, BOB, XRP, Amount.xrp(10))

    def test_negative_limit_rejected(self):
        with pytest.raises(TrustLineError):
            TrustLine(ALICE, BOB, USD, usd(-1))

    def test_currency_mismatch_rejected(self):
        with pytest.raises(InvalidAmountError):
            TrustLine(ALICE, BOB, USD, Amount.from_value(EUR, 10))

    def test_extend_and_settle(self):
        line = TrustLine(ALICE, BOB, USD, usd(100))
        line.extend_debt(usd(60))
        assert line.balance.to_float() == 60
        assert line.available_credit().to_float() == 40
        line.settle_debt(usd(25))
        assert line.balance.to_float() == 35

    def test_extend_beyond_limit_rejected(self):
        line = TrustLine(ALICE, BOB, USD, usd(100))
        with pytest.raises(TrustLineError):
            line.extend_debt(usd(101))

    def test_settle_more_than_owed_rejected(self):
        line = TrustLine(ALICE, BOB, USD, usd(100))
        line.extend_debt(usd(10))
        with pytest.raises(TrustLineError):
            line.settle_debt(usd(11))

    def test_lowering_limit_below_balance_freezes_credit(self):
        # As in Ripple: lowering a limit never erases existing debt.
        line = TrustLine(ALICE, BOB, USD, usd(100))
        line.extend_debt(usd(80))
        line.set_limit(usd(50))
        assert line.balance.to_float() == 80
        assert line.available_credit().is_zero

    def test_dead_line_detection(self):
        line = TrustLine(ALICE, BOB, USD, usd(0))
        assert line.is_dead()
        line.set_limit(usd(5))
        assert not line.is_dead()


class TestOffer:
    def make(self, pays=110.0, gets=100.0):
        return Offer(
            owner=ALICE,
            sequence=1,
            taker_pays=usd(pays),
            taker_gets=Amount.from_value(EUR, gets),
        )

    def test_quality(self):
        assert self.make().quality == pytest.approx(1.1)

    def test_zero_amounts_rejected(self):
        with pytest.raises(OfferError):
            Offer(ALICE, 1, usd(0), Amount.from_value(EUR, 1))

    def test_same_asset_rejected(self):
        with pytest.raises(OfferError):
            Offer(ALICE, 1, usd(1), usd(2))

    def test_xrp_vs_iou_same_code_never_happens_but_issuers_differ(self):
        # Same currency code with different issuers is a valid book.
        a = Amount.from_value(USD, 1, issuer=account_from_name("g1"))
        b = Amount.from_value(USD, 1, issuer=account_from_name("g2"))
        Offer(ALICE, 1, a, b)  # must not raise

    def test_partial_fill(self):
        offer = self.make()
        pays = offer.fill(Amount.from_value(EUR, 40))
        assert pays.to_float() == pytest.approx(44.0)
        assert offer.taker_gets.to_float() == pytest.approx(60.0)
        assert offer.taker_pays.to_float() == pytest.approx(66.0)
        # Quality is preserved under partial fills.
        assert offer.quality == pytest.approx(1.1)

    def test_full_fill_consumes(self):
        offer = self.make()
        offer.fill(Amount.from_value(EUR, 100))
        assert offer.is_consumed

    def test_overfill_rejected(self):
        with pytest.raises(OfferError):
            self.make().fill(Amount.from_value(EUR, 101))

    def test_fill_wrong_currency_rejected(self):
        with pytest.raises(OfferError):
            self.make().fill(usd(10))

    def test_max_gets_for(self):
        offer = self.make()
        gets = offer.max_gets_for(usd(55))
        assert gets.to_float() == pytest.approx(50.0)

    def test_max_gets_capped_at_size(self):
        offer = self.make()
        gets = offer.max_gets_for(usd(1e6))
        assert gets.to_float() == pytest.approx(100.0)


class TestBetterQuality:
    def test_lower_wins(self):
        assert better_quality(1.0, 2.0)
        assert not better_quality(2.0, 1.0)

    def test_none_handling(self):
        assert better_quality(1.0, None)
        assert not better_quality(None, 1.0)
