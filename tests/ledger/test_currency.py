"""Tests for currency codes and Table I strength groups."""

import pytest

from repro.errors import InvalidCurrencyError
from repro.ledger.currency import (
    BTC,
    CCK,
    CNY,
    EUR,
    JPY,
    MTL,
    USD,
    XRP,
    Currency,
    Strength,
    eur_value,
    rounding_resolutions,
    strength_of,
)


class TestCurrency:
    def test_code_must_be_three_chars(self):
        with pytest.raises(InvalidCurrencyError):
            Currency("USDX")
        with pytest.raises(InvalidCurrencyError):
            Currency("US")

    def test_code_must_be_uppercase(self):
        with pytest.raises(InvalidCurrencyError):
            Currency("usd")

    def test_xrp_flag(self):
        assert XRP.is_xrp and not USD.is_xrp

    def test_iso_recognition(self):
        assert USD.is_iso4217 and EUR.is_iso4217
        # The paper's spam currencies are NOT in the standard.
        assert not CCK.is_iso4217 and not MTL.is_iso4217

    def test_equality_and_hash(self):
        assert Currency("USD") == USD
        assert len({Currency("USD"), USD, EUR}) == 2


class TestStrengthGroups:
    """Exactly the Table I rows."""

    @pytest.mark.parametrize("code", ["BTC", "XAG", "XAU", "XPT"])
    def test_powerful(self, code):
        assert strength_of(Currency(code)) is Strength.POWERFUL

    @pytest.mark.parametrize("code", ["CNY", "EUR", "USD", "AUD", "GBP", "JPY"])
    def test_medium(self, code):
        assert strength_of(Currency(code)) is Strength.MEDIUM

    @pytest.mark.parametrize("code", ["XRP", "CCK", "STR", "KRW", "MTL"])
    def test_weak(self, code):
        assert strength_of(Currency(code)) is Strength.WEAK

    def test_rounding_triplets(self):
        assert rounding_resolutions(BTC) == (1e-3, 1e-2, 1e-1)
        assert rounding_resolutions(EUR) == (1e1, 1e2, 1e3)
        assert rounding_resolutions(XRP) == (1e5, 1e6, 1e7)

    def test_unknown_currency_defaults_sensibly(self):
        # Unlisted codes classify by value or default to MEDIUM — the
        # analysis must be total over the open currency-code space.
        assert strength_of(Currency("ZZZ")) is Strength.MEDIUM
        assert strength_of(Currency("LTC")) is Strength.MEDIUM

    def test_valueless_weak_classification(self):
        # DOG-style micro currencies classify as weak via eur value.
        assert strength_of(Currency("STR")) is Strength.WEAK


class TestEurValue:
    def test_known_values(self):
        assert eur_value(EUR) == 1.0
        assert eur_value(BTC) > 100
        assert eur_value(XRP) < 0.1

    def test_unknown_default(self):
        assert eur_value(Currency("QQQ")) == pytest.approx(0.1)
