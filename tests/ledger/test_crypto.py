"""Tests for the Schnorr signature scheme."""

import pytest

from repro.errors import SignatureError
from repro.ledger import crypto


@pytest.fixture(scope="module")
def keypair():
    return crypto.KeyPair.from_seed(b"test-keypair")


class TestKeyPair:
    def test_deterministic_from_seed(self):
        a = crypto.KeyPair.from_seed(b"seed")
        b = crypto.KeyPair.from_seed(b"seed")
        assert a.secret == b.secret and a.public == b.public

    def test_different_seeds_differ(self):
        assert (
            crypto.KeyPair.from_seed(b"one").public
            != crypto.KeyPair.from_seed(b"two").public
        )

    def test_public_is_group_element(self, keypair):
        assert 1 < keypair.public < crypto.P
        # Element of the order-q subgroup: y^q == 1 (mod p).
        assert pow(keypair.public, crypto.Q, crypto.P) == 1

    def test_public_bytes_length(self, keypair):
        assert len(keypair.public_bytes()) == 256


class TestSignVerify:
    def test_valid_signature_verifies(self, keypair):
        signature = keypair.sign(b"message")
        assert crypto.verify(keypair.public, b"message", signature)

    def test_signing_is_deterministic(self, keypair):
        assert keypair.sign(b"m") == keypair.sign(b"m")

    def test_different_messages_different_signatures(self, keypair):
        assert keypair.sign(b"m1") != keypair.sign(b"m2")

    def test_tampered_message_fails(self, keypair):
        signature = keypair.sign(b"message")
        assert not crypto.verify(keypair.public, b"messagX", signature)

    def test_wrong_key_fails(self, keypair):
        other = crypto.KeyPair.from_seed(b"other")
        signature = keypair.sign(b"message")
        assert not crypto.verify(other.public, b"message", signature)

    def test_tampered_signature_fails(self, keypair):
        signature = keypair.sign(b"message")
        forged = crypto.Signature(s=(signature.s + 1) % crypto.Q, e=signature.e)
        assert not crypto.verify(keypair.public, b"message", forged)

    def test_out_of_range_signature_rejected(self, keypair):
        signature = keypair.sign(b"message")
        forged = crypto.Signature(s=signature.s + crypto.Q, e=signature.e)
        assert not crypto.verify(keypair.public, b"message", forged)

    def test_require_valid_raises(self, keypair):
        signature = keypair.sign(b"message")
        crypto.require_valid(keypair.public, b"message", signature)
        with pytest.raises(SignatureError):
            crypto.require_valid(keypair.public, b"other", signature)


class TestSerialization:
    def test_roundtrip(self, keypair):
        signature = keypair.sign(b"wire")
        restored = crypto.Signature.from_bytes(signature.to_bytes())
        assert restored == signature
        assert crypto.verify(keypair.public, b"wire", restored)

    def test_bad_length_rejected(self):
        with pytest.raises(SignatureError):
            crypto.Signature.from_bytes(b"\x00" * 100)
