"""Tests for account identifiers and the base58check address encoding."""

import pytest

from repro.errors import InvalidAddressError
from repro.ledger.accounts import (
    ACCOUNT_ZERO,
    AccountID,
    account_from_name,
    base58_decode,
    base58_encode,
    decode_account_id,
    encode_account_id,
)


class TestBase58:
    def test_roundtrip_simple(self):
        data = b"\x01\x02\x03\xff"
        assert base58_decode(base58_encode(data)) == data

    def test_leading_zeros_preserved(self):
        data = b"\x00\x00\xab\xcd"
        assert base58_decode(base58_encode(data)) == data

    def test_zero_byte_encodes_to_r(self):
        # Ripple's alphabet starts with 'r', so zero bytes render as 'r'.
        assert base58_encode(b"\x00") == "r"

    def test_invalid_character_rejected(self):
        with pytest.raises(InvalidAddressError):
            base58_decode("0OIl")  # characters absent from the alphabet


class TestAddressEncoding:
    def test_address_starts_with_r(self):
        account = account_from_name("anyone")
        assert account.address.startswith("r")

    def test_roundtrip(self):
        account = account_from_name("roundtrip")
        assert AccountID.from_address(account.address) == account

    def test_checksum_detects_corruption(self):
        address = account_from_name("victim").address
        # Flip one character (avoiding the first, to keep the prefix).
        tampered = address[:-1] + ("r" if address[-1] != "r" else "p")
        with pytest.raises(InvalidAddressError):
            decode_account_id(tampered)

    def test_wrong_length_rejected(self):
        with pytest.raises(InvalidAddressError):
            encode_account_id(b"\x01" * 19)

    def test_wrong_payload_length_rejected(self):
        with pytest.raises(InvalidAddressError):
            decode_account_id("rrrrr")


class TestAccountID:
    def test_must_be_20_bytes(self):
        with pytest.raises(InvalidAddressError):
            AccountID(b"\x01" * 21)

    def test_deterministic_from_name(self):
        assert account_from_name("bob") == account_from_name("bob")
        assert account_from_name("bob") != account_from_name("alice")

    def test_namespaces_separate(self):
        assert account_from_name("bob", "a") != account_from_name("bob", "b")

    def test_ordering_and_hashing(self):
        accounts = sorted({account_from_name(str(i)) for i in range(10)})
        assert len(accounts) == 10
        assert accounts == sorted(accounts, key=lambda a: a.raw)

    def test_short_form(self):
        account = account_from_name("short")
        short = account.short()
        assert short.startswith(account.address[:6])
        assert short.endswith(account.address[-6:])
        assert "..." in short

    def test_account_zero_is_all_zero_bytes(self):
        assert ACCOUNT_ZERO.raw == b"\x00" * 20
        # and still encodes/decodes like any account
        assert AccountID.from_address(ACCOUNT_ZERO.address) == ACCOUNT_ZERO

    def test_from_public_key_is_160_bits(self):
        account = AccountID.from_public_key(b"\x04" + b"\x11" * 64)
        assert len(account.raw) == 20
