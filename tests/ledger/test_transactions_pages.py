"""Tests for transaction types, hashing, and the ledger page chain."""

import datetime as dt

import pytest

from repro.errors import InvalidTransactionError, LedgerError
from repro.ledger import crypto
from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import EUR, USD, XRP
from repro.ledger.hashing import sha512half, tx_set_hash
from repro.ledger.pages import GENESIS_PARENT_HASH, LedgerChain, LedgerPage
from repro.ledger.transactions import (
    AccountSet,
    OfferCancel,
    OfferCreate,
    Payment,
    TrustSet,
    from_ripple_time,
    to_ripple_time,
)

ALICE = account_from_name("alice")
BOB = account_from_name("bob")


def payment(**kwargs):
    defaults = dict(
        account=ALICE,
        sequence=1,
        destination=BOB,
        amount=Amount.from_value(USD, 10),
    )
    defaults.update(kwargs)
    return Payment(**defaults)


class TestRippleTime:
    def test_epoch(self):
        epoch = dt.datetime(2000, 1, 1, tzinfo=dt.timezone.utc)
        assert to_ripple_time(epoch) == 0

    def test_roundtrip(self):
        when = dt.datetime(2015, 8, 24, 15, 41, 3, tzinfo=dt.timezone.utc)
        assert from_ripple_time(to_ripple_time(when)) == when

    def test_naive_datetime_treated_as_utc(self):
        naive = dt.datetime(2015, 1, 1)
        aware = dt.datetime(2015, 1, 1, tzinfo=dt.timezone.utc)
        assert to_ripple_time(naive) == to_ripple_time(aware)


class TestTransactionValidation:
    def test_valid_payment(self):
        payment().validate()

    def test_payment_to_self_rejected(self):
        with pytest.raises(InvalidTransactionError):
            payment(destination=ALICE).validate()

    def test_non_positive_amount_rejected(self):
        with pytest.raises(InvalidTransactionError):
            payment(amount=Amount.zero(USD)).validate()

    def test_fee_below_base_rejected(self):
        with pytest.raises(InvalidTransactionError):
            payment(fee_drops=1).validate()

    def test_cross_currency_flag(self):
        tx = payment(send_max=Amount.from_value(EUR, 20))
        assert tx.is_cross_currency
        assert not payment().is_cross_currency

    def test_trust_set_validation(self):
        TrustSet(account=ALICE, sequence=1, trustee=BOB, limit=Amount.from_value(USD, 5)).validate()
        with pytest.raises(InvalidTransactionError):
            TrustSet(account=ALICE, sequence=1, trustee=ALICE, limit=Amount.from_value(USD, 5)).validate()
        with pytest.raises(InvalidTransactionError):
            TrustSet(account=ALICE, sequence=1, trustee=BOB, limit=Amount.xrp(5)).validate()

    def test_offer_create_validation(self):
        OfferCreate(
            account=ALICE, sequence=1,
            taker_pays=Amount.from_value(USD, 1), taker_gets=Amount.from_value(EUR, 1),
        ).validate()
        with pytest.raises(InvalidTransactionError):
            OfferCreate(
                account=ALICE, sequence=1,
                taker_pays=Amount.zero(USD), taker_gets=Amount.from_value(EUR, 1),
            ).validate()

    def test_offer_cancel_validation(self):
        OfferCancel(account=ALICE, sequence=1, offer_sequence=3).validate()
        with pytest.raises(InvalidTransactionError):
            OfferCancel(account=ALICE, sequence=1, offer_sequence=-1).validate()


class TestHashing:
    def test_hash_changes_with_any_field(self):
        base = payment()
        assert payment(sequence=2).tx_hash != base.tx_hash
        assert payment(amount=Amount.from_value(USD, 11)).tx_hash != base.tx_hash
        assert payment(timestamp=5).tx_hash != base.tx_hash

    def test_hash_is_stable(self):
        assert payment().tx_hash == payment().tx_hash

    def test_different_types_never_collide(self):
        trust = TrustSet(account=ALICE, sequence=1, trustee=BOB, limit=Amount.from_value(USD, 10))
        assert trust.tx_hash != payment().tx_hash

    def test_tx_set_hash_order_independent(self):
        hashes = [sha512half(bytes([i])) for i in range(5)]
        assert tx_set_hash(hashes) == tx_set_hash(list(reversed(hashes)))

    def test_signature_roundtrip(self):
        tx = payment()
        keypair = crypto.KeyPair.from_seed(b"alice-signing")
        tx.sign(keypair)
        assert tx.verify_signature()
        tx.amount = Amount.from_value(USD, 999)
        assert not tx.verify_signature()

    def test_unsigned_does_not_verify(self):
        assert not payment().verify_signature()


class TestLedgerChain:
    def test_genesis(self):
        chain = LedgerChain.with_genesis()
        assert len(chain) == 1
        assert chain.head.sequence == 0
        assert chain.head.parent_hash == GENESIS_PARENT_HASH

    def test_seal_links_pages(self):
        chain = LedgerChain.with_genesis()
        first = chain.seal([payment()], close_time=10)
        second = chain.seal([], close_time=15)
        assert second.parent_hash == first.page_hash
        assert chain.transaction_count() == 1

    def test_bad_linkage_rejected(self):
        chain = LedgerChain.with_genesis()
        rogue = LedgerPage(
            sequence=1, parent_hash=b"\x01" * 32, close_time=1, transactions=()
        )
        with pytest.raises(LedgerError):
            chain.append(rogue)

    def test_non_monotone_close_time_rejected(self):
        chain = LedgerChain.with_genesis(close_time=100)
        with pytest.raises(LedgerError):
            chain.seal([], close_time=50)

    def test_page_lookup_by_hash(self):
        chain = LedgerChain.with_genesis()
        page = chain.seal([payment()], close_time=5)
        assert chain.page_by_hash(page.page_hash) is page
        assert chain.page_by_hash(b"\x00" * 32) is None

    def test_iter_transactions(self):
        chain = LedgerChain.with_genesis()
        chain.seal([payment(), payment(sequence=2)], close_time=5)
        pairs = list(chain.iter_transactions())
        assert len(pairs) == 2
        assert all(page.sequence == 1 for page, _ in pairs)

    def test_tx_set_id_ignores_order(self):
        a, b = payment(), payment(sequence=2)
        chain1 = LedgerChain.with_genesis()
        chain2 = LedgerChain.with_genesis()
        p1 = chain1.seal([a, b], close_time=5)
        p2 = chain2.seal([b, a], close_time=5)
        assert p1.tx_set_id == p2.tx_set_id
        assert p1.page_hash == p2.page_hash
