"""Tests for the STAmount-style amount representation."""

import pytest

from repro.errors import InvalidAmountError
from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import DROPS_PER_XRP, Amount
from repro.ledger.currency import BTC, EUR, USD, XRP


class TestConstruction:
    def test_xrp_from_value(self):
        amount = Amount.xrp(1.5)
        assert amount.to_float() == pytest.approx(1.5)
        assert amount.is_xrp

    def test_drops(self):
        assert Amount.drops(DROPS_PER_XRP).to_float() == pytest.approx(1.0)

    def test_xrp_cannot_have_issuer(self):
        with pytest.raises(InvalidAmountError):
            Amount(XRP, 1, 0, issuer=account_from_name("gw"))

    def test_ledger_precision_is_micro(self):
        # The ledger records amounts at 1e-6 (the paper's stated precision).
        amount = Amount.from_value(USD, 0.1234567)
        assert amount.to_float() == pytest.approx(0.123457)

    def test_zero(self):
        zero = Amount.zero(USD)
        assert zero.is_zero and not zero.is_positive and not zero.is_negative

    def test_normalization_idempotent(self):
        a = Amount(USD, 123456789, -3)
        b = Amount(USD, a.mantissa, a.exponent)
        assert (a.mantissa, a.exponent) == (b.mantissa, b.exponent)


class TestArithmetic:
    def test_add_sub(self):
        a = Amount.from_value(USD, 10.5)
        b = Amount.from_value(USD, 2.25)
        assert (a + b).to_float() == pytest.approx(12.75)
        assert (a - b).to_float() == pytest.approx(8.25)

    def test_negation(self):
        a = Amount.from_value(USD, 3.0)
        assert (-a).to_float() == pytest.approx(-3.0)
        assert (-a).is_negative

    def test_currency_mismatch_rejected(self):
        with pytest.raises(InvalidAmountError):
            Amount.from_value(USD, 1) + Amount.from_value(EUR, 1)

    def test_issuer_mismatch_rejected(self):
        a = Amount.from_value(USD, 1, issuer=account_from_name("g1"))
        b = Amount.from_value(USD, 1, issuer=account_from_name("g2"))
        with pytest.raises(InvalidAmountError):
            a + b

    def test_scaled(self):
        assert Amount.from_value(USD, 10).scaled(0.25).to_float() == pytest.approx(2.5)

    def test_ratio(self):
        a = Amount.from_value(USD, 10)
        b = Amount.from_value(USD, 4)
        assert a.ratio(b) == pytest.approx(2.5)

    def test_ratio_by_zero_rejected(self):
        with pytest.raises(InvalidAmountError):
            Amount.from_value(USD, 1).ratio(Amount.zero(USD))

    def test_min(self):
        a = Amount.from_value(USD, 10)
        b = Amount.from_value(USD, 4)
        assert a.min(b) is b

    def test_comparisons(self):
        a = Amount.from_value(USD, 1)
        b = Amount.from_value(USD, 2)
        assert a < b and a <= b and b > a and b >= a
        assert not (b < a)


class TestRounding:
    """Table I rounding semantics — these must be exact."""

    def test_round_to_tens(self):
        assert Amount.from_value(EUR, 123.45).round_to(1).to_float() == 120.0

    def test_round_to_hundreds(self):
        assert Amount.from_value(EUR, 163.45).round_to(2).to_float() == 200.0

    def test_round_to_thousandths_btc(self):
        assert Amount.from_value(BTC, 0.0123).round_to(-3).to_float() == pytest.approx(0.012)

    def test_round_half_away_from_zero(self):
        assert Amount.from_value(USD, 15.0).round_to(1).to_float() == 20.0
        assert Amount.from_value(USD, -15.0).round_to(1).to_float() == -20.0

    def test_small_amount_rounds_to_zero(self):
        # An XRP latte-sized payment vanishes at the weak-group Max of 1e5.
        assert Amount.from_value(XRP, 4.5).round_to(5).is_zero

    def test_huge_mtl_amount(self):
        spam = Amount.from_value(Amount.from_value(USD, 0).currency, 0)  # placeholder
        mtl = Amount(BTC, 1234567891, 0)
        assert mtl.round_to(7).to_float() == pytest.approx(1.23e9)

    def test_rounding_preserves_currency_and_issuer(self):
        issuer = account_from_name("gw")
        amount = Amount.from_value(USD, 55.0, issuer=issuer)
        rounded = amount.round_to(1)
        assert rounded.currency == USD and rounded.issuer == issuer


class TestOverflow:
    def test_exponent_overflow_rejected(self):
        with pytest.raises(InvalidAmountError):
            Amount(USD, 10 ** 15, 80)

    def test_underflow_becomes_zero(self):
        assert Amount(USD, 1, -200).is_zero


class TestExactNumerics:
    """Regression pins for the PR 3 precision fixes.

    ``min`` and ``ratio`` used to route through ``to_float()``; the cases
    here are chosen so the float detour gives a *different* answer than
    exact integer arithmetic — they fail on the pre-fix code.
    """

    def test_ratio_is_correctly_rounded_single_division(self):
        # to_float()/to_float() rounds three times; the exact aligned-int
        # quotient differs in the last bit for this pair.
        a = Amount(USD, 912381323017539, 9)
        b = Amount(USD, 357564042624565, 0)
        exact = (912381323017539 * 10 ** 9) / 357564042624565
        assert a.ratio(b) == exact
        assert a.to_float() / b.to_float() != exact

    def test_ratio_more_double_rounding_cases(self):
        for m1, e1, m2 in (
            (294788211859887, 11, 717892751856593),
            (982316779551687, 8, 933734492216487),
            (985457430577449, 7, 472827266592590),
        ):
            a, b = Amount(USD, m1, e1), Amount(USD, m2, 0)
            assert a.ratio(b) == (m1 * 10 ** e1) / m2

    def test_min_never_consults_floats(self, monkeypatch):
        # Exactness by construction: min must decide on aligned integer
        # mantissas even when float conversion is unavailable.
        a = Amount(USD, 999999999999999, 2)
        b = Amount(USD, 999999999999998, 2)

        def boom(self):  # pragma: no cover - called only on regression
            raise AssertionError("min() routed through to_float()")

        monkeypatch.setattr(Amount, "to_float", boom)
        assert a.min(b) is b
        assert b.min(a) is b

    def test_min_of_adjacent_15_digit_mantissas(self):
        # Aligned values differ by one unit in the 15th digit at a large
        # exponent — far beyond 2^53 once scaled.
        a = Amount(USD, 999999999999999, 40)
        b = Amount(USD, 999999999999998, 40)
        assert a.min(b) is b and not (a <= b)

    def test_ordering_exact_across_exponents(self):
        lo = Amount(USD, 100000000000000, 1)   # 1e15
        hi = Amount(USD, 100000000000001, 1)   # 1e15 + 10
        assert lo < hi and hi > lo and lo.min(hi) is lo
