"""Whole-economy invariants over the generated history.

These are the conservation laws a credit-network ledger must satisfy no
matter what the workload did — the deepest correctness net for the
generator + engine + state stack:

* XRP is conserved up to deliberate burning (fees);
* IOU positions are zero-sum per currency (every credit is someone's debt);
* every trust line's balance is within [0, limit];
* per-record metadata is internally consistent.
"""

import numpy as np
import pytest

from repro.ledger.currency import Currency


class TestXrpConservation:
    def test_total_xrp_plus_burn_is_constant(self, history):
        # The generator mints XRP only at account creation; afterwards every
        # movement is a transfer or a burn.  Whatever happened across
        # thousands of payments, nothing leaked.
        total_now = history.state.total_xrp_drops()
        burned = history.state.burned_fee_drops
        snapshot = history.snapshot_state
        total_snapshot = snapshot.total_xrp_drops() + snapshot.burned_fee_drops
        assert total_now + burned == total_snapshot

    def test_fees_were_actually_burned(self, history):
        assert history.state.burned_fee_drops > 0


class TestIouZeroSum:
    def test_every_currency_nets_to_zero(self, history):
        # Each trust line contributes +balance to the truster's position
        # and -balance to the trustee's; summing iou_balance over every
        # account must therefore cancel exactly — a strong end-to-end check
        # of the per-account netting API.
        state = history.state
        for code in ("USD", "CCK", "MTL", "BTC", "EUR"):
            currency = Currency(code)
            net = 0.0
            for account in state.accounts:
                net += state.iou_balance(account, currency).to_float()
            assert net == pytest.approx(0.0, abs=1e-3), code


class TestTrustLineBounds:
    def test_no_negative_balances(self, history):
        for line in history.state.iter_trustlines():
            assert not line.balance.is_negative

    def test_balances_within_limits(self, history):
        # The generator never lowers limits, so balance <= limit throughout.
        violations = [
            line
            for line in history.state.iter_trustlines()
            if line.balance.to_float() > line.limit.to_float() * (1 + 1e-9)
        ]
        assert violations == []


class TestRecordConsistency:
    def test_delivered_multi_hop_has_intermediaries(self, history):
        for record in history.records:
            if record.is_multi_hop:
                assert len(record.intermediaries) >= 1
                assert record.parallel_paths >= 1

    def test_failed_payments_have_no_paths(self, history):
        for record in history.records:
            if not record.delivered:
                assert record.intermediate_hops == 0
                assert record.intermediaries == ()

    def test_xrp_direct_records_have_no_intermediaries(self, history):
        for record in history.records:
            if record.is_xrp_direct and record.delivered:
                assert record.intermediaries == ()

    def test_sender_never_equals_destination(self, history):
        assert all(r.sender != r.destination for r in history.records)

    def test_timestamps_within_configured_span(self, history):
        config = history.config
        for record in history.records:
            assert config.start_time <= record.timestamp <= config.end_time

    def test_indices_unique_and_dense(self, history):
        indices = sorted(record.index for record in history.records)
        assert indices == list(range(len(history.records)))

    def test_amounts_positive_at_ledger_precision(self, history):
        amounts = np.array([record.amount for record in history.records])
        assert (amounts > 0).all()
        assert np.allclose(amounts, np.round(amounts, 6))

    def test_cross_currency_only_on_fiat(self, history):
        for record in history.records:
            if record.cross_currency:
                assert record.kind == "fiat"

    def test_intermediaries_exclude_endpoints(self, history):
        for record in history.records:
            assert record.sender not in record.intermediaries
            assert record.destination not in record.intermediaries
