"""WAL event codec: roundtrip, determinism, poison detection."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.consensus.proposals import Validation
from repro.errors import IngestError
from repro.online.events import (
    KIND_PAYMENT,
    KIND_VALIDATION,
    IngestEvent,
    PoisonEventError,
    decode_event,
    encode_event,
    payment_event,
    validate_event_body,
    validation_event,
)
from repro.stream.events import StreamEvent


def stream_event(validator="v1", sequence=7, sign_time=100, received_at=101):
    return StreamEvent(
        validation=Validation(
            validator=validator,
            sequence=sequence,
            page_hash=b"\x0a" * 32,
            sign_time=sign_time,
        ),
        received_at=received_at,
    )


class TestCodec:
    def test_roundtrip(self):
        event = payment_event(3, {"a": 1.5, "ok": True})
        assert decode_event(encode_event(event)) == event

    def test_validation_event_body(self):
        event = validation_event(0, stream_event())
        assert event.kind == KIND_VALIDATION
        assert event.body["page_hash"] == "0a" * 32
        assert decode_event(encode_event(event)) == event

    def test_encoding_is_deterministic(self):
        a = payment_event(1, {"z": 1, "a": 2})
        b = payment_event(1, {"a": 2, "z": 1})
        assert encode_event(a) == encode_event(b)

    @pytest.mark.parametrize("line", [
        "",
        "not json",
        "[1,2]",
        '{"v":99,"seq":0,"kind":"payment","body":{}}',
        '{"v":1,"seq":0,"kind":"mystery","body":{}}',
        '{"v":1,"seq":-2,"kind":"payment","body":{}}',
        '{"v":1,"seq":0,"kind":"payment","body":[]}',
    ])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(IngestError):
            decode_event(line)

    @given(st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8),
                  st.booleans(), st.none()),
        max_size=6,
    ), st.integers(min_value=0, max_value=10**9))
    def test_roundtrip_property(self, body, seq):
        event = IngestEvent(seq=seq, kind=KIND_PAYMENT, body=body)
        decoded = decode_event(encode_event(event))
        # JSON roundtrip may normalize float representation but must
        # preserve equality under json semantics.
        assert decoded.seq == seq and decoded.kind == KIND_PAYMENT
        assert json.loads(json.dumps(decoded.body)) == json.loads(
            json.dumps(body)
        )


class TestPoison:
    def test_valid_payment_passes(self, history):
        from repro.analysis.archive import record_to_json

        body = record_to_json(history.records[0])
        validate_event_body(payment_event(0, body))

    def test_schema_violation_is_poison(self):
        with pytest.raises(PoisonEventError) as err:
            validate_event_body(payment_event(0, {"i": 1}))
        assert err.value.reason.startswith("schema")

    def test_parse_error_marker_is_poison(self):
        with pytest.raises(PoisonEventError) as err:
            validate_event_body(
                payment_event(0, {"parse_error": "bad line"})
            )
        assert err.value.reason == "parse"

    def test_valid_validation_passes(self):
        validate_event_body(validation_event(0, stream_event()))

    @pytest.mark.parametrize("field,value", [
        ("validator", 7),
        ("sequence", "x"),
        ("sequence", True),
        ("page_hash", "zz"),
        ("sign_time", None),
    ])
    def test_bad_validation_fields_are_poison(self, field, value):
        event = validation_event(0, stream_event())
        body = dict(event.body)
        body[field] = value
        with pytest.raises(PoisonEventError) as err:
            validate_event_body(
                IngestEvent(seq=0, kind=KIND_VALIDATION, body=body)
            )
        assert err.value.reason.startswith("event:")
