"""Shared fixtures for the online-ingest tests.

The expensive pieces — a synthetic history and its dumped archive — are
session-scoped; each test gets its own state directory.
"""

from __future__ import annotations

import pytest

from repro.analysis.archive import dump_archive
from repro.obs.metrics import METRICS


@pytest.fixture(autouse=True)
def clean_metrics():
    """Online components tick the global registry; isolate each test."""
    METRICS.reset()
    METRICS.enable()
    yield
    METRICS.disable()
    METRICS.reset()


@pytest.fixture(scope="session")
def archive_path(history, tmp_path_factory):
    """A dumped archive of the first 1000 session-history payments."""
    path = str(tmp_path_factory.mktemp("online") / "ledger.jsonl.gz")
    dump_archive(history.records[:1000], path)
    return path
