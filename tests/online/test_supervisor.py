"""The ingest supervisor: bounded restarts, backoff shape, stall watchdog."""

import itertools
import time

import pytest

from repro.node import RetryPolicy
from repro.obs.metrics import METRICS
from repro.online import IngestConfig, IngestPipeline, archive_event_source
from repro.online.state import OnlineState
from repro.online.supervisor import IngestSupervisor, SupervisorError


def config(tmp_path, **overrides):
    defaults = dict(
        state_dir=str(tmp_path / "state"),
        snapshot_every=100,
        wal_segment_events=32,
        fsync=False,
    )
    defaults.update(overrides)
    return IngestConfig(**defaults)


FAST_RETRY = RetryPolicy(base_backoff=0.001, multiplier=2.0,
                         max_backoff=0.01, jitter=0.0)


class FlakySource:
    """An archive source that dies after N events, `crashes` times."""

    def __init__(self, archive_path, crashes, die_after=75):
        self.archive_path = archive_path
        self.crashes = crashes
        self.die_after = die_after

    def __call__(self, start_seq):
        def generate():
            produced = 0
            for event in archive_event_source(self.archive_path, start_seq):
                if self.crashes > 0 and produced >= self.die_after:
                    self.crashes -= 1
                    raise ConnectionError("stream dropped")
                produced += 1
                yield event

        return generate()


class TestRestarts:
    def test_crashes_are_survived_and_counted(self, archive_path, tmp_path):
        baseline = IngestPipeline(
            config(tmp_path, state_dir=str(tmp_path / "base"))
        )
        baseline.recover()
        expected = baseline.run(archive_event_source(archive_path, 0))

        slept = []
        supervisor = IngestSupervisor(
            config(tmp_path),
            FlakySource(archive_path, crashes=3),
            max_restarts=5,
            retry=FAST_RETRY,
            poll_interval=0.01,
            sleep=slept.append,
        )
        digest, pipeline = supervisor.run()
        assert digest == expected
        assert supervisor.restarts == 3
        assert pipeline.restarts == 3  # surfaced in status.json
        assert METRICS.counters.get("online.supervisor.restarts") == 3
        # Exponential backoff shape: each delay doubles (no jitter).
        assert slept == [
            pytest.approx(0.001), pytest.approx(0.002), pytest.approx(0.004)
        ]

    def test_no_event_is_lost_or_doubled_across_restarts(
        self, archive_path, tmp_path
    ):
        supervisor = IngestSupervisor(
            config(tmp_path),
            FlakySource(archive_path, crashes=2, die_after=120),
            retry=FAST_RETRY,
            poll_interval=0.01,
            sleep=lambda _s: None,
        )
        _digest, pipeline = supervisor.run()
        assert pipeline.state.events == 1000
        assert pipeline.state.applied_seq == 999

    def test_budget_exhaustion_raises(self, archive_path, tmp_path):
        supervisor = IngestSupervisor(
            config(tmp_path),
            FlakySource(archive_path, crashes=99),
            max_restarts=2,
            retry=FAST_RETRY,
            poll_interval=0.01,
            sleep=lambda _s: None,
        )
        with pytest.raises(SupervisorError, match="budget exhausted"):
            supervisor.run()
        assert supervisor.restarts == 3


class TestWatchdog:
    def test_stall_raises_instead_of_restarting(
        self, archive_path, tmp_path, monkeypatch
    ):
        # Wedge the apply path: the heartbeat stops advancing while an
        # event is in flight, which must become a loud SupervisorError
        # (an in-process restart would race the wedged thread on the WAL).
        original = OnlineState.absorb

        def wedged(self, event):
            if event.seq == 10:
                time.sleep(60.0)
            return original(self, event)

        monkeypatch.setattr(OnlineState, "absorb", wedged)
        supervisor = IngestSupervisor(
            config(tmp_path),
            lambda start: archive_event_source(archive_path, start),
            heartbeat_timeout=0.3,
            poll_interval=0.02,
            retry=FAST_RETRY,
        )
        with pytest.raises(SupervisorError, match="stall"):
            supervisor.run()
        assert METRICS.counters.get("online.supervisor.stalls") == 1

    def test_idle_wait_is_not_a_stall(self, archive_path, tmp_path):
        # A source that is merely slow keeps the pipeline idle between
        # events; the watchdog must not fire.
        def slow_source(start_seq):
            for event in itertools.islice(
                archive_event_source(archive_path, start_seq), 5
            ):
                time.sleep(0.15)
                yield event

        supervisor = IngestSupervisor(
            config(tmp_path),
            slow_source,
            heartbeat_timeout=0.3,
            poll_interval=0.02,
            retry=FAST_RETRY,
        )
        _digest, pipeline = supervisor.run()
        assert pipeline.state.events == 5
