"""OnlineState: exact batch equivalence, fork watch, canonical digests."""

import json

import pytest

from repro.analysis.archive import record_to_json
from repro.analysis.dataset import TransactionDataset
from repro.consensus.forks import find_forks
from repro.consensus.proposals import Validation
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator
from repro.core.deanonymizer import Deanonymizer
from repro.errors import IngestError
from repro.online.events import payment_event, validation_event
from repro.online.state import ForkWatch, OnlineState
from repro.stream.events import StreamEvent


def feed_payments(state, records, start_seq=0):
    for offset, record in enumerate(records):
        state.absorb(payment_event(start_seq + offset,
                                   record_to_json(record)))


class TestBatchEquivalence:
    """The online indexes must reproduce Fig. 3 *exactly* — identified
    counts and percentages — against the batch Deanonymizer over the
    same payments, across all ten feature lists (including the
    currency-blind ones, whose batch bucketing rescales to a
    dataset-wide finest exponent the online path cannot know)."""

    def test_figure3_matches_batch(self, history):
        records = history.records[:1500]
        state = OnlineState()
        feed_payments(state, records)
        batch = Deanonymizer(
            TransactionDataset.from_records(records)
        ).figure3()
        online = state.figure3_rows()
        assert len(online) == len(batch) == 10
        for row, (label, identified, gain) in zip(batch, online):
            assert row.feature_list.label() == label
            assert row.identified == identified
            assert abs(row.percent - gain) < 1e-9

    def test_absorption_order_does_not_matter(self, history):
        records = history.records[:300]
        forward, backward = OnlineState(), OnlineState()
        feed_payments(forward, records)
        for offset, record in enumerate(reversed(records)):
            backward.absorb(payment_event(offset, record_to_json(record)))
        assert (
            [(label, n) for label, n, _ in forward.figure3_rows()]
            == [(label, n) for label, n, _ in backward.figure3_rows()]
        )

    def test_delivery_counters_match_records(self, history):
        records = history.records[:800]
        state = OnlineState()
        feed_payments(state, records)
        rows = dict(
            (category, (submitted, delivered))
            for category, submitted, delivered in state.delivery_rows()
        )
        cross = [r for r in records if r.cross_currency]
        single = [r for r in records if not r.cross_currency]
        assert rows["Cross-currency"] == (
            len(cross), sum(1 for r in cross if r.delivered)
        )
        assert rows["Single-currency"] == (
            len(single), sum(1 for r in single if r.delivered)
        )
        assert rows["Total"] == (len(records),
                                 sum(1 for r in records if r.delivered))


def _validation(validator, sequence, page, network_id=0, sign_time=0):
    return Validation(
        validator=validator,
        sequence=sequence,
        page_hash=page,
        sign_time=sign_time,
        network_id=network_id,
    )


class TestForkWatch:
    """Incremental fork detection agrees with the batch find_forks."""

    def _roster(self):
        # Two camps with disjoint-majority views: camp A trusts a1-a4,
        # camp B trusts b1-b4; one shared member keeps it one network.
        camp_a = ["a1", "a2", "a3", "a4"]
        camp_b = ["b1", "b2", "b3", "b4"]
        return (
            [Validator(n, UNL.of(camp_a)) for n in camp_a]
            + [Validator(n, UNL.of(camp_b)) for n in camp_b]
        )

    def _conflicting(self, sequence):
        page_x, page_y = b"\x01" * 32, b"\x02" * 32
        return (
            [_validation(n, sequence, page_x) for n in
             ("a1", "a2", "a3", "a4")]
            + [_validation(n, sequence, page_y) for n in
               ("b1", "b2", "b3", "b4")]
        )

    def test_conflicting_views_fork(self):
        validators = self._roster()
        validations = self._conflicting(9)
        batch = find_forks(validations, validators)
        assert [f.sequence for f in batch] == [9]

        watch = ForkWatch.from_validators(validators)
        state = OnlineState(fork_watch=watch)
        for seq, validation in enumerate(validations):
            event = validation_event(
                seq, StreamEvent(validation=validation, received_at=seq)
            )
            state.absorb(event)
        assert state.fork_watch.forked == [9]
        assert state.validations == len(validations)

    def test_agreement_is_not_a_fork(self):
        validators = self._roster()
        watch = ForkWatch.from_validators(validators)
        state = OnlineState(fork_watch=watch)
        page = b"\x07" * 32
        for seq, name in enumerate(("a1", "a2", "a3", "a4", "b1", "b2",
                                    "b3", "b4")):
            state.absorb(validation_event(seq, StreamEvent(
                validation=_validation(name, 3, page), received_at=seq)))
        assert state.fork_watch.forked == []

    def test_other_network_ignored(self):
        watch = ForkWatch.from_validators(self._roster())
        state = OnlineState(fork_watch=watch)
        for seq, validation in enumerate(self._conflicting(5)):
            rogue = _validation(
                validation.validator, 5, validation.page_hash, network_id=1
            )
            state.absorb(validation_event(seq, StreamEvent(
                validation=rogue, received_at=seq)))
        assert state.fork_watch.forked == []

    def test_fork_watch_payload_roundtrip(self):
        watch = ForkWatch.from_validators(self._roster())
        for validation in self._conflicting(2):
            watch.absorb({
                "validator": validation.validator,
                "sequence": validation.sequence,
                "page_hash": validation.page_hash.hex(),
                "network_id": validation.network_id,
            })
        restored = ForkWatch.from_payload(watch.payload())
        assert restored.payload() == watch.payload()
        assert restored.forked == [2]


class TestSerialization:
    def test_payload_roundtrip_preserves_digest(self, history):
        state = OnlineState()
        feed_payments(state, history.records[:200])
        state.note_quarantined(payment_event(200, {"bad": 1}), "schema:test")
        restored = OnlineState.from_payload(state.payload())
        assert restored.digest() == state.digest()
        assert restored.applied_seq == 200
        assert restored.quarantined_total == 1

    def test_digest_reflects_every_event(self, history):
        a, b = OnlineState(), OnlineState()
        feed_payments(a, history.records[:50])
        feed_payments(b, history.records[:51])
        assert a.digest() != b.digest()

    def test_version_mismatch_rejected(self):
        state = OnlineState()
        payload = state.payload()
        payload["state_version"] = 99
        with pytest.raises(IngestError):
            OnlineState.from_payload(payload)

    def test_label_mismatch_rejected(self, history):
        state = OnlineState()
        feed_payments(state, history.records[:10])
        payload = state.payload()
        payload["figure3"][0]["label"] = "<bogus>"
        with pytest.raises(IngestError):
            OnlineState.from_payload(payload)
