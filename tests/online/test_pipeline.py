"""The ingest pipeline: crash equivalence, quarantine, recovery paths.

The central invariant, asserted many ways: a run that is killed at an
arbitrary point and resumed from the same state directory produces a
final state digest *identical* to a never-interrupted run over the same
events.
"""

import glob
import gzip
import itertools
import json
import os

import pytest

from repro.durability.atomic import manifest_path
from repro.errors import IngestError
from repro.obs.metrics import METRICS
from repro.online import (
    BoundedEventQueue,
    IngestConfig,
    IngestPipeline,
    archive_event_source,
    payment_event,
    read_status,
)
from repro.online.wal import segment_name


def config(tmp_path, **overrides):
    defaults = dict(
        state_dir=str(tmp_path / "state"),
        snapshot_every=100,
        wal_segment_events=32,
        status_every=50,
        fsync=False,
    )
    defaults.update(overrides)
    return IngestConfig(**defaults)


def full_run_digest(archive_path, tmp_path, name="baseline"):
    cfg = config(tmp_path, state_dir=str(tmp_path / name))
    pipeline = IngestPipeline(cfg)
    pipeline.recover()
    return pipeline.run(archive_event_source(archive_path, 0)), pipeline


def run_until(cfg, archive_path, n):
    """Ingest n events then abandon the process state (simulated crash)."""
    pipeline = IngestPipeline(cfg)
    pipeline.recover()
    for event in itertools.islice(
        archive_event_source(archive_path, pipeline.state.applied_seq + 1), n
    ):
        pipeline.wal.append(event)
        pipeline._apply(event)
        pipeline._since_snapshot += 1
        if pipeline._since_snapshot >= cfg.snapshot_every:
            pipeline.seal_snapshot()
    pipeline.wal.close()
    return pipeline


def resume_and_finish(cfg, archive_path):
    pipeline = IngestPipeline(cfg)
    pipeline.recover()
    return pipeline.run(
        archive_event_source(archive_path, pipeline.state.applied_seq + 1)
    ), pipeline


class TestCrashEquivalence:
    def test_uninterrupted_run_is_reproducible(self, archive_path, tmp_path):
        digest_a, _ = full_run_digest(archive_path, tmp_path, "a")
        digest_b, _ = full_run_digest(archive_path, tmp_path, "b")
        assert digest_a == digest_b

    @pytest.mark.parametrize("kill_at", [1, 99, 100, 101, 350, 999])
    def test_kill_and_resume_matches(self, archive_path, tmp_path, kill_at):
        baseline, _ = full_run_digest(archive_path, tmp_path)
        cfg = config(tmp_path)
        run_until(cfg, archive_path, kill_at)
        digest, pipeline = resume_and_finish(cfg, archive_path)
        assert digest == baseline
        assert pipeline.state.events == 1000

    def test_double_kill(self, archive_path, tmp_path):
        baseline, _ = full_run_digest(archive_path, tmp_path)
        cfg = config(tmp_path)
        run_until(cfg, archive_path, 230)
        run_until(cfg, archive_path, 400)
        digest, _ = resume_and_finish(cfg, archive_path)
        assert digest == baseline

    def test_torn_wal_tail_resumes_identically(self, archive_path, tmp_path):
        baseline, _ = full_run_digest(archive_path, tmp_path)
        cfg = config(tmp_path)
        run_until(cfg, archive_path, 250)
        # Tear the last WAL line mid-byte, as kill -9 during write would.
        last = sorted(glob.glob(
            os.path.join(cfg.state_dir, "wal", "wal-*.jsonl")))[-1]
        with open(last, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            handle.truncate(handle.tell() - 7)
        digest, pipeline = resume_and_finish(cfg, archive_path)
        assert digest == baseline
        assert METRICS.counters.get("online.wal.torn_tail_dropped", 0) == 1

    def test_crash_mid_snapshot_seal_resumes(self, archive_path, tmp_path):
        baseline, _ = full_run_digest(archive_path, tmp_path)
        cfg = config(tmp_path)
        run_until(cfg, archive_path, 320)
        snapdir = os.path.join(cfg.state_dir, "snapshots")
        newest = sorted(glob.glob(os.path.join(snapdir, "snapshot-*.json")))[-1]
        # A crash between body write and sidecar write: body, no sidecar.
        os.remove(manifest_path(newest))
        # Plus a stale temp from an even-less-complete attempt.
        with open(os.path.join(snapdir, "snapshot-x.json.tmp.999"), "w") as f:
            f.write("{half")
        digest, _ = resume_and_finish(cfg, archive_path)
        assert digest == baseline
        assert not os.path.exists(newest)  # discarded, not trusted

    def test_corrupt_newest_snapshot_falls_back_further(
        self, archive_path, tmp_path
    ):
        baseline, _ = full_run_digest(archive_path, tmp_path)
        cfg = config(tmp_path)
        run_until(cfg, archive_path, 520)  # snapshots at 99/199/299/399/499
        snapdir = os.path.join(cfg.state_dir, "snapshots")
        newest = sorted(glob.glob(os.path.join(snapdir, "snapshot-*.json")))[-1]
        with open(newest, "r+b") as handle:
            handle.seek(25)
            handle.write(b"????")
        pipeline = IngestPipeline(cfg)
        replayed = pipeline.recover()
        # Fallback snapshot covers through 399; WAL replays 400..519.
        assert pipeline.state.applied_seq == 519
        assert replayed == 120
        digest = pipeline.run(
            archive_event_source(archive_path, 520)
        )
        assert digest == baseline


class TestQuarantine:
    def _poisoned_archive(self, archive_path, tmp_path, lines):
        """Copy the archive, injecting poison at the given data-line slots."""
        out = str(tmp_path / "poisoned.jsonl")
        with gzip.open(archive_path, "rt") as src, open(out, "w") as dst:
            dst.write(src.readline())  # header
            for number, line in enumerate(src):
                if number in lines:
                    dst.write(lines[number] + "\n")
                dst.write(line)
        # Patch the header count: the source reads raw lines, so only
        # honesty about version matters, but keep it coherent anyway.
        return out

    def test_poison_is_quarantined_not_fatal(self, archive_path, tmp_path):
        poisoned = self._poisoned_archive(
            archive_path, tmp_path,
            {5: "this is not json", 10: '{"i": 1, "a": "NaN-ish"}'},
        )
        cfg = config(tmp_path)
        pipeline = IngestPipeline(cfg)
        pipeline.recover()
        pipeline.run(archive_event_source(poisoned, 0))
        assert pipeline.state.events == 1002
        assert pipeline.state.payments == 1000
        assert pipeline.state.quarantined_total == 2
        assert pipeline.state.quarantined.get("parse") == 1
        sidecar = os.path.join(cfg.state_dir, "quarantine.jsonl")
        with open(sidecar) as handle:
            entries = [json.loads(line) for line in handle]
        assert len(entries) == 2
        reasons = sorted(e["reason"] for e in entries)
        assert reasons[0] == "parse"
        assert reasons[1].startswith("schema")

    def test_quarantine_replay_does_not_duplicate(self, archive_path, tmp_path):
        poisoned = self._poisoned_archive(
            archive_path, tmp_path, {50: "garbage line"}
        )
        cfg = config(tmp_path)
        baseline_pipeline = IngestPipeline(
            config(tmp_path, state_dir=str(tmp_path / "base"))
        )
        baseline_pipeline.recover()
        baseline = baseline_pipeline.run(archive_event_source(poisoned, 0))
        run_until(cfg, poisoned, 120)  # crash after the poison event
        digest, pipeline = resume_and_finish(cfg, poisoned)
        assert digest == baseline
        assert pipeline.state.quarantined_total == 1
        sidecar = os.path.join(cfg.state_dir, "quarantine.jsonl")
        with open(sidecar) as handle:
            entries = [json.loads(line) for line in handle]
        assert len(entries) == 1  # replay did not re-divert it


class TestRecoveryEdges:
    def test_unrecoverable_gap_raises(self, tmp_path):
        cfg = config(tmp_path)
        pipeline = IngestPipeline(cfg)
        pipeline.recover()
        for event in (payment_event(i, {"parse_error": "x"}) for i in
                      range(40)):
            pipeline.wal.append(event)
            pipeline._apply(event)
        pipeline.wal.close()
        # Remove every snapshot AND the first WAL segment: seq 0..31 are
        # gone but 32.. remain — accepted events would be skipped.
        for stale in glob.glob(
            os.path.join(cfg.state_dir, "snapshots", "snapshot-*")
        ):
            os.remove(stale)
        first = os.path.join(cfg.state_dir, "wal", segment_name(0))
        os.remove(first)
        os.remove(manifest_path(first))
        fresh = IngestPipeline(cfg)
        with pytest.raises(IngestError, match="unrecoverable"):
            fresh.recover()

    def test_snapshot_newer_than_wal_resets_log(self, archive_path, tmp_path):
        cfg = config(tmp_path)
        run_until(cfg, archive_path, 150)
        # The whole WAL is lost (snapshot sealed at 99; events 100..149
        # vanish with it).  Recovery must restart from the snapshot and
        # re-pull the tail from the source, not append at seq 0.
        for stale in glob.glob(os.path.join(cfg.state_dir, "wal", "wal-*")):
            os.remove(stale)
        pipeline = IngestPipeline(cfg)
        pipeline.recover()
        assert pipeline.state.applied_seq == 99
        assert pipeline.wal.next_seq == 100
        digest, _ = (
            pipeline.run(archive_event_source(archive_path, 100)), pipeline
        )
        baseline, _ = full_run_digest(archive_path, tmp_path)
        assert digest == baseline

    def test_status_file_is_written(self, archive_path, tmp_path):
        cfg = config(tmp_path)
        pipeline = IngestPipeline(cfg)
        pipeline.recover()
        digest = pipeline.run(archive_event_source(archive_path, 0))
        status = read_status(cfg.state_dir)
        assert status["phase"] == "drained"
        assert status["applied_seq"] == 999
        assert status["digest"] == digest
        assert status["events"] == 1000
        assert status["last_snapshot_seq"] == 999

    def test_stop_requested_drains_cleanly(self, archive_path, tmp_path):
        cfg = config(tmp_path)
        pipeline = IngestPipeline(cfg)
        pipeline.recover()

        def stopping_source():
            for event in archive_event_source(archive_path, 0):
                if event.seq == 249:
                    pipeline.request_stop()
                yield event  # 249 is already in flight; it must land

        digest = pipeline.run(stopping_source())
        assert pipeline.state.applied_seq == 249
        status = read_status(cfg.state_dir)
        assert status["phase"] == "drained"
        # The drain snapshot makes resume instant (no replay needed).
        resumed = IngestPipeline(cfg)
        assert resumed.recover() == 0
        assert resumed.state.digest() == digest


class TestBoundedQueue:
    def test_backpressure_is_counted(self):
        queue = BoundedEventQueue(maxsize=1)
        queue.put(payment_event(0, {}))
        import threading

        def drain_later():
            import time

            time.sleep(0.05)
            list(itertools.islice(iter(queue), 1))

        thread = threading.Thread(target=drain_later)
        thread.start()
        queue.put(payment_event(1, {}))  # must block until the drain
        thread.join()
        assert queue.waits == 1
        assert METRICS.counters.get("online.backpressure.waits") == 1

    def test_close_ends_iteration(self):
        queue = BoundedEventQueue(maxsize=4)
        queue.put(payment_event(0, {}))
        queue.close()
        assert [e.seq for e in queue] == [0]
