"""Snapshot store: sealing, verification, fallback past defects."""

import json
import os

import pytest

from repro.durability.atomic import manifest_path
from repro.errors import IntegrityError
from repro.online.events import payment_event
from repro.online.snapshots import SnapshotStore, snapshot_name
from repro.online.state import OnlineState


def state_after(n):
    state = OnlineState()
    for i in range(n):
        state.note_quarantined(payment_event(i, {"i": i}), "schema:test")
    return state


class TestSealLoad:
    def test_roundtrip(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"))
        sealed = store.seal(state_after(5))
        assert os.path.basename(sealed) == snapshot_name(4)
        assert os.path.exists(manifest_path(sealed))
        loaded, applied_seq = store.load(sealed)
        assert applied_seq == 4
        assert loaded.digest() == state_after(5).digest()

    def test_keep_bound_prunes_oldest(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"), keep=2)
        for n in (1, 2, 3, 4):
            store.seal(state_after(n))
        names = [os.path.basename(p) for p in store.paths()]
        assert names == [snapshot_name(2), snapshot_name(3)]
        assert store.oldest_applied_seq() == 2

    def test_sweep_removes_stale_temps(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"))
        stale = tmp_path / "snaps" / "snapshot-0000000005.json.tmp.123"
        stale.write_text("half-written")
        assert store.sweep() == 1
        assert not stale.exists()


class TestFallback:
    def _store_with(self, tmp_path, counts):
        store = SnapshotStore(str(tmp_path / "snaps"), keep=5)
        for n in counts:
            store.seal(state_after(n))
        return store

    def test_latest_verified_picks_newest(self, tmp_path):
        store = self._store_with(tmp_path, (2, 4, 6))
        _state, applied_seq = store.latest_verified()
        assert applied_seq == 5

    def test_missing_sidecar_falls_back(self, tmp_path):
        store = self._store_with(tmp_path, (2, 4, 6))
        newest = store.paths()[-1]
        os.remove(manifest_path(newest))
        _state, applied_seq = store.latest_verified()
        assert applied_seq == 3
        assert not os.path.exists(newest)  # the defect was discarded

    def test_corrupt_body_falls_back(self, tmp_path):
        store = self._store_with(tmp_path, (2, 4, 6))
        with open(store.paths()[-1], "r+b") as handle:
            handle.seek(30)
            handle.write(b"ZZZZ")
        _state, applied_seq = store.latest_verified()
        assert applied_seq == 3

    def test_tampered_state_fails_embedded_digest(self, tmp_path):
        # A snapshot whose bytes verify against a *re-written* sidecar
        # but whose state disagrees with its own embedded digest.
        store = self._store_with(tmp_path, (3,))
        path = store.paths()[0]
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["state"]["events"] = 999
        from repro.durability.atomic import atomic_write

        with atomic_write(path, manifest=True,
                          fmt="repro-online-snapshot/1") as handle:
            handle.write(json.dumps(payload) + "\n")
        with pytest.raises(IntegrityError):
            store.load(path)
        assert store.latest_verified() is None

    def test_not_after_skips_too_new(self, tmp_path):
        store = self._store_with(tmp_path, (2, 4, 6))
        _state, applied_seq = store.latest_verified(not_after=4)
        assert applied_seq == 3

    def test_empty_store(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"))
        assert store.latest_verified() is None
        assert store.oldest_applied_seq() is None
