"""Segmented WAL: rotation, sealing, torn-tail recovery, pruning.

The torn-write tests simulate ``kill -9`` mid-write by truncating the
log at arbitrary byte offsets: recovery must always yield an exact
prefix of the accepted events — never garbage, never a gap.
"""

import glob
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability.atomic import manifest_path
from repro.errors import IngestError
from repro.online.events import payment_event
from repro.online.wal import WriteAheadLog, segment_name


def events(n, start=0):
    return [payment_event(start + i, {"i": start + i}) for i in range(n)]


def fill(wal, n, start=0):
    for event in events(n, start):
        wal.append(event)


class TestAppendRotate:
    def test_append_and_recover(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_events=4,
                            fsync=False)
        fill(wal, 10)
        wal.close()
        recovered = WriteAheadLog(str(tmp_path / "wal"), segment_events=4,
                                  fsync=False)
        assert [e.seq for e in recovered.recover()] == list(range(10))
        assert recovered.next_seq == 10

    def test_rotation_seals_full_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_events=4,
                            fsync=False)
        fill(wal, 9)
        paths = wal.segment_paths()
        assert [os.path.basename(p) for p in paths] == [
            segment_name(0), segment_name(4), segment_name(8)
        ]
        assert os.path.exists(manifest_path(paths[0]))
        assert os.path.exists(manifest_path(paths[1]))
        assert not os.path.exists(manifest_path(paths[2]))

    def test_out_of_order_append_rejected(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), fsync=False)
        wal.append(payment_event(0, {}))
        with pytest.raises(IngestError):
            wal.append(payment_event(2, {}))

    def test_append_continues_unsealed_segment_after_recover(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_events=10,
                            fsync=False)
        fill(wal, 3)
        wal.close()
        wal2 = WriteAheadLog(str(tmp_path / "wal"), segment_events=10,
                             fsync=False)
        wal2.recover()
        fill(wal2, 2, start=3)
        assert wal2.segment_count() == 1
        wal2.close()
        wal3 = WriteAheadLog(str(tmp_path / "wal"), fsync=False)
        assert [e.seq for e in wal3.recover()] == list(range(5))


class TestTornWrites:
    def _durable_bytes(self, tmp_path, n, segment_events=4):
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_events=segment_events,
                            fsync=False)
        fill(wal, n)
        wal.close()

    def test_torn_final_line_is_dropped(self, tmp_path):
        self._durable_bytes(tmp_path, 6)
        last = sorted(glob.glob(str(tmp_path / "wal" / "wal-*.jsonl")))[-1]
        with open(last, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            handle.truncate(handle.tell() - 3)
        wal = WriteAheadLog(str(tmp_path / "wal"), fsync=False)
        assert [e.seq for e in wal.recover()] == list(range(5))
        assert wal.next_seq == 5

    def test_corrupt_sealed_segment_discards_suffix(self, tmp_path):
        self._durable_bytes(tmp_path, 12)  # segments 0,4,8 sealed/sealed/open
        middle = str(tmp_path / "wal" / segment_name(4))
        with open(middle, "rb+") as handle:
            handle.seek(5)
            handle.write(b"XXXX")
        wal = WriteAheadLog(str(tmp_path / "wal"), fsync=False)
        recovered = wal.recover()
        # Segment 4 fails its sidecar check; it and segment 8 are gone.
        assert [e.seq for e in recovered] == list(range(4))
        assert wal.segment_count() == 1

    def test_missing_sidecar_on_nonfinal_segment_discards(self, tmp_path):
        self._durable_bytes(tmp_path, 12)
        os.remove(manifest_path(str(tmp_path / "wal" / segment_name(4))))
        wal = WriteAheadLog(str(tmp_path / "wal"), fsync=False)
        # Without its sidecar the middle segment reads fine but the
        # *next* segment may then hide a gap; the reader tolerates an
        # unsealed segment only in final position, with a clean chain.
        recovered = wal.recover()
        assert [e.seq for e in recovered] == list(range(12))

    @settings(max_examples=25, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=400))
    def test_truncation_always_recovers_a_prefix(self, tmp_path_factory, cut):
        tmp_path = tmp_path_factory.mktemp("torn")
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_events=5,
                            fsync=False)
        fill(wal, 8)  # one sealed segment + one unsealed
        wal.close()
        last = sorted(glob.glob(str(tmp_path / "wal" / "wal-*.jsonl")))[-1]
        size = os.path.getsize(last)
        with open(last, "rb+") as handle:
            handle.truncate(max(0, size - cut))
        recovered = WriteAheadLog(str(tmp_path / "wal"), fsync=False)
        seqs = [e.seq for e in recovered.recover()]
        assert seqs == list(range(len(seqs)))  # exact prefix, no gaps
        assert len(seqs) >= 5  # the sealed segment always survives
        assert recovered.next_seq == len(seqs)


class TestPruneReset:
    def test_prune_removes_covered_sealed_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_events=4,
                            fsync=False)
        fill(wal, 13)  # sealed 0/4/8 + active segment 12
        assert wal.prune_through(7) == 2
        assert [os.path.basename(p) for p in wal.segment_paths()] == [
            segment_name(8), segment_name(12)
        ]
        # A fully-covering snapshot still never prunes the active segment.
        assert wal.prune_through(100) == 1
        assert [os.path.basename(p) for p in wal.segment_paths()] == [
            segment_name(12)
        ]

    def test_recover_after_prune_starts_at_segment_seq(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_events=4,
                            fsync=False)
        fill(wal, 12)
        wal.prune_through(7)
        wal.close()
        wal2 = WriteAheadLog(str(tmp_path / "wal"), fsync=False)
        assert [e.seq for e in wal2.recover()] == list(range(8, 12))
        assert wal2.next_seq == 12

    def test_reset_to_clears_and_advances(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_events=4,
                            fsync=False)
        fill(wal, 6)
        wal.reset_to(50)
        assert wal.segment_count() == 0
        assert wal.next_seq == 50
        wal.append(payment_event(50, {}))
        assert wal.segment_count() == 1

    def test_start_at_on_empty_log(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), fsync=False)
        wal.recover()
        wal.start_at(30)
        assert wal.next_seq == 30
