"""The typed ArtifactRequest: construction, canonicalization, fingerprints."""

from __future__ import annotations

import argparse

import pytest

from repro.api.request import (
    ArtifactRequest,
    CANONICAL_OPTION_DEFAULTS,
    OPTION_KEYS,
    RequestError,
)
from repro.errors import AnalysisError
from repro.obs.manifest import request_fingerprint

#: The frozen identity of ``fig3 --seed 7 --payments 4000``.  This pin is
#: the serve cache's compatibility contract: changing how requests
#: canonicalize or hash invalidates every existing cache entry, so it
#: must be a deliberate, versioned decision (bump
#: ``FINGERPRINT_SCHEMA_VERSION``), not an accident.
PINNED_FIG3 = "adc00f24885ed14a1532dbde8c912b402a5d79f3799f95e9f7b1d6e33032831b"

#: ``cascade --seed 7 --payments 4000 --kind gateway-default --waves 3
#: --pairs 50 --amount 25`` and ``health --seed 7 --payments 4000
#: --pairs 120 --amount 10`` — the same contract for the new options.
PINNED_CASCADE = (
    "21e8ff1603621f96eb6984b2dc58aee364c484d43a862a2ce2de96c932b476a4"
)
PINNED_HEALTH = (
    "aeb46d1462ac0a1d6baf7a6131ef23794648f09243b3e6774f6f956b18c5fcdf"
)


class TestConstruction:
    def test_defaults_match_cli_defaults(self):
        request = ArtifactRequest(name="fig3")
        assert request.seed == 20170652
        assert request.scale == 600
        assert request.payments == 12_000
        assert request.jobs is None and not request.resume

    def test_name_required(self):
        with pytest.raises(RequestError, match="artifact name"):
            ArtifactRequest(name="")

    def test_unknown_option_rejected(self):
        with pytest.raises(RequestError, match="unknown option"):
            ArtifactRequest(name="fig3", options={"bogus": 1})

    def test_options_read_as_attributes(self):
        request = ArtifactRequest(name="fig4", options={"top": 5})
        assert request.top == 5
        assert getattr(request, "period", None) is None
        assert request.option("top") == 5
        assert request.option("period", "x") == "x"

    def test_frozen_and_hashable(self):
        request = ArtifactRequest(name="fig3")
        with pytest.raises(AttributeError):
            request.seed = 1  # type: ignore[misc]
        assert hash(request) == hash(ArtifactRequest(name="fig3"))

    def test_type_validation(self):
        with pytest.raises(RequestError, match="seed"):
            ArtifactRequest(name="fig3", seed="7")  # type: ignore[arg-type]
        with pytest.raises(RequestError, match="jobs"):
            ArtifactRequest(name="fig3", jobs="4")  # type: ignore[arg-type]


class TestFromNamespace:
    def test_cli_namespace_round_trip(self):
        args = argparse.Namespace(
            command="fig4", seed=7, scale=600, payments=4000, archive=None,
            jobs=2, resume=True, quarantine=False, strict_ingest=False,
            trace=None, top=5,
        )
        request = ArtifactRequest.from_namespace(args)
        assert request.name == "fig4"
        assert request.seed == 7 and request.jobs == 2 and request.resume
        assert request.top == 5 and not request.trace

    def test_artifact_subcommand_name_wins(self):
        args = argparse.Namespace(command="artifact", name="fig3", seed=1)
        assert ArtifactRequest.from_namespace(args).name == "fig3"

    def test_of_lifts_namespace_and_passes_requests_through(self):
        request = ArtifactRequest(name="fig3")
        assert ArtifactRequest.of(request) is request
        lifted = ArtifactRequest.of(argparse.Namespace(seed=3), name="fig3")
        assert lifted == ArtifactRequest(name="fig3", seed=3)


class TestFromDict:
    def test_json_body_shape(self):
        request = ArtifactRequest.from_dict(
            {"artifact": "chaos", "seed": 3, "plan": "delay", "rounds": 40}
        )
        assert request.name == "chaos"
        assert request.plan == "delay" and request.rounds == 40

    def test_name_alias_accepted(self):
        assert ArtifactRequest.from_dict({"name": "fig3"}).name == "fig3"

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestError, match="unknown request field"):
            ArtifactRequest.from_dict({"artifact": "fig3", "sede": 7})

    def test_to_dict_round_trips(self):
        request = ArtifactRequest(
            name="fig2", seed=9, options={"period": "jul2016"}
        )
        assert ArtifactRequest.from_dict(request.to_dict()) == request


class TestCanonicalization:
    """Flag order and explicit-vs-default must not change identity."""

    def test_explicit_defaults_equal_omitted(self):
        explicit = ArtifactRequest(
            name="fig3", seed=20170652, scale=600, payments=12_000,
        )
        assert explicit == ArtifactRequest(name="fig3")
        assert request_fingerprint(explicit) == request_fingerprint(
            ArtifactRequest(name="fig3")
        )

    def test_option_order_is_canonical(self):
        a = ArtifactRequest(name="chaos", options=(("rounds", 40), ("plan", "delay")))
        b = ArtifactRequest(name="chaos", options=(("plan", "delay"), ("rounds", 40)))
        assert a == b and a.options == b.options

    def test_default_valued_options_drop_out(self):
        explicit = ArtifactRequest(
            name="chaos", seed=1, options={"plan": "partition", "rounds": 240}
        )
        omitted = ArtifactRequest(name="chaos", seed=1)
        assert request_fingerprint(explicit) == request_fingerprint(omitted)

    def test_execution_strategy_does_not_change_identity(self):
        base = ArtifactRequest(name="fig3", seed=7, payments=4000)
        for variant in (
            base.replace(jobs=4),
            base.replace(resume=True),
            base.replace(trace=True),
            base.replace(strict_ingest=True),
        ):
            assert request_fingerprint(variant) == request_fingerprint(base)

    def test_semantic_fields_do_change_identity(self):
        base = ArtifactRequest(name="fig3", seed=7, payments=4000)
        for variant in (
            base.replace(seed=8),
            base.replace(payments=4001),
            base.replace(scale=500),
            base.replace(quarantine=True),
            ArtifactRequest(name="fig5", seed=7, payments=4000),
        ):
            assert request_fingerprint(variant) != request_fingerprint(base)

    def test_every_option_key_has_a_canonical_default(self):
        assert set(CANONICAL_OPTION_DEFAULTS) == set(OPTION_KEYS)


class TestFingerprintRegression:
    def test_pinned_fingerprint(self):
        request = ArtifactRequest(name="fig3", seed=7, payments=4000)
        assert request_fingerprint(request) == PINNED_FIG3
        assert request.fingerprint() == PINNED_FIG3

    def test_pinned_fingerprint_via_cli_namespace(self):
        args = argparse.Namespace(
            command="fig3", seed=7, scale=600, payments=4000, archive=None,
            jobs=4, resume=False, quarantine=False, strict_ingest=False,
            trace="auto",
        )
        request = ArtifactRequest.from_namespace(args)
        assert request_fingerprint(request) == PINNED_FIG3

    def test_pinned_cascade_fingerprint(self):
        request = ArtifactRequest(
            name="cascade", seed=7, payments=4000,
            options={
                "kind": "gateway-default", "waves": 3,
                "pairs": 50, "amount": 25.0,
            },
        )
        assert request_fingerprint(request) == PINNED_CASCADE

    def test_pinned_health_fingerprint(self):
        request = ArtifactRequest(
            name="health", seed=7, payments=4000,
            options={"pairs": 120, "amount": 10.0},
        )
        assert request_fingerprint(request) == PINNED_HEALTH


class TestHealthCascadeCanonicalization:
    """CLI and JSON spellings of the new options fingerprint alike."""

    def test_cli_float_equals_json_int_amount(self):
        # argparse parses --amount 10 as the float 10.0; a JSON body says
        # the integer 10.  Same request, same fingerprint.
        cli = ArtifactRequest(
            name="health", seed=7, payments=4000,
            options={"pairs": 120, "amount": 10.0},
        )
        body = ArtifactRequest.from_dict(
            {"artifact": "health", "seed": 7, "payments": 4000,
             "pairs": 120, "amount": 10}
        )
        assert request_fingerprint(cli) == request_fingerprint(body)
        assert request_fingerprint(cli) == PINNED_HEALTH

    def test_explicit_default_kind_drops_out(self):
        # The fig4 --top rule: an explicit default must not fork the
        # fingerprint from an omitted flag.
        explicit = ArtifactRequest(
            name="cascade", seed=7, options={"kind": "outage"}
        )
        omitted = ArtifactRequest(name="cascade", seed=7)
        assert request_fingerprint(explicit) == request_fingerprint(omitted)

    def test_cascade_options_change_identity(self):
        base = ArtifactRequest(name="cascade", seed=7, payments=4000)
        for options in (
            {"kind": "unwind"},
            {"waves": 8},
            {"pairs": 40},
            {"amount": 2.5},
        ):
            variant = base.replace(options=options)
            assert request_fingerprint(variant) != request_fingerprint(base)

    def test_fractional_amount_stays_float(self):
        request = ArtifactRequest(
            name="health", options={"amount": 2.5}
        )
        assert request.canonical_options() == {"amount": 2.5}


class TestArchiveInputs:
    def test_archive_content_keys_identity_not_path(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b" / "c.jsonl"
        second.parent.mkdir()
        first.write_text('{"x": 1}\n')
        second.write_text('{"x": 1}\n')
        one = ArtifactRequest(name="fig3", archive=str(first))
        two = ArtifactRequest(name="fig3", archive=str(second))
        assert request_fingerprint(one) == request_fingerprint(two)
        second.write_text('{"x": 2}\n')
        assert request_fingerprint(one) != request_fingerprint(two)

    def test_missing_archive_fails_before_compute(self, tmp_path):
        request = ArtifactRequest(
            name="fig3", archive=str(tmp_path / "nope.jsonl.gz")
        )
        with pytest.raises(AnalysisError, match="archive not found"):
            request_fingerprint(request)
