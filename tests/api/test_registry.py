"""The artifact registry and its CLI integration."""

import argparse

import pytest

import repro.chaos.report  # noqa: F401  (registers the chaos artifact)
from repro.api import ARTIFACTS, Artifact, ArtifactError, artifact, names, register
from repro.cli import main


class TestRegistry:
    def test_paper_artifacts_registered(self):
        for name in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table2"):
            assert name in ARTIFACTS
            assert ARTIFACTS[name].description

    def test_extensions_self_register(self):
        assert "chaos" in ARTIFACTS  # registered by repro.chaos.report

    def test_unknown_artifact_raises(self):
        with pytest.raises(ArtifactError, match="unknown artifact"):
            artifact("fig99")

    def test_names_preserve_registration_order(self):
        listed = names()
        assert listed.index("fig2") < listed.index("table2")

    def test_run_composes_compute_and_render(self):
        entry = Artifact(
            name="t",
            description="test",
            compute=lambda args: args.seed * 2,
            render=lambda payload, args: f"payload={payload}",
        )
        assert entry.run(argparse.Namespace(seed=21)) == "payload=42"

    def test_register_replaces(self):
        first = register("_tmp", "one", lambda a: 1, lambda p, a: str(p))
        second = register("_tmp", "two", lambda a: 2, lambda p, a: str(p))
        try:
            assert ARTIFACTS["_tmp"] is second is not first
        finally:
            del ARTIFACTS["_tmp"]


class TestRemovedShims:
    """The PR-5 deprecation shims finished their cycle and are gone."""

    def test_perf_shim_removed(self):
        import importlib.util

        assert importlib.util.find_spec("repro.perf") is None

    def test_analysis_report_shim_removed(self):
        import importlib.util

        assert importlib.util.find_spec("repro.analysis.report") is None

    def test_renderers_live_in_api_render(self):
        from repro.api import render as new

        for name in (
            "render_figure2", "render_figure3", "render_figure4",
            "render_figure5", "render_figure6", "render_figure7",
            "render_table2",
        ):
            assert callable(getattr(new, name))


class TestCliDispatch:
    def test_figures_lists_registry(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out

    def test_chaos_command(self, capsys):
        assert main(["chaos", "--plan", "disconnect", "--rounds", "40",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Chaos drill" in out
        assert "Validator health" in out

    def test_out_flag_writes_rendered_text(self, capsys, tmp_path):
        out_path = tmp_path / "fig4.txt"
        assert main(["fig4", "--payments", "1200", "--seed", "5",
                     "--out", str(out_path)]) == 0
        stdout = capsys.readouterr().out
        assert out_path.read_text().strip() == stdout.strip()

    def test_archive_rejected_politely_for_state_artifacts(
        self, capsys, tmp_path
    ):
        archive = str(tmp_path / "dump.jsonl.gz")
        assert main(["generate", "--payments", "1200", "--seed", "5",
                     "--out", archive]) == 0
        capsys.readouterr()
        assert main(["fig7", "--archive", archive]) == 2
        assert "ledger state" in capsys.readouterr().err

    def test_missing_archive_fails_without_traceback(self, capsys):
        assert main(["fig3", "--archive", "nope.jsonl.gz"]) == 2
        assert "archive not found" in capsys.readouterr().err

    def test_profile_flag_accepted_in_both_positions(self):
        from repro.cli import build_parser

        parser = build_parser()
        before = parser.parse_args(["--profile", "fig3"])
        after = parser.parse_args(["fig3", "--profile"])
        neither = parser.parse_args(["fig3"])
        assert before.profile and after.profile
        assert getattr(neither, "profile", False) is False

    def test_shared_flags_on_every_subcommand(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = parser._subparsers._group_actions[0].choices  # noqa: SLF001
        for name, sub in subparsers.items():
            flags = {
                option
                for action in sub._actions  # noqa: SLF001
                for option in action.option_strings
            }
            assert {"--seed", "--scale", "--out", "--profile"} <= flags, name
