"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    @pytest.mark.parametrize(
        ("child", "parent"),
        [
            (errors.InvalidAddressError, errors.LedgerError),
            (errors.InvalidAmountError, errors.LedgerError),
            (errors.TrustLineError, errors.LedgerError),
            (errors.SignatureError, errors.TransactionError),
            (errors.NoPathError, errors.PaymentError),
            (errors.PathDryError, errors.PaymentError),
            (errors.OfferError, errors.PaymentError),
            (errors.QuorumError, errors.ConsensusError),
        ],
    )
    def test_subsystem_nesting(self, child, parent):
        assert issubclass(child, parent)

    def test_catching_the_base_covers_domain_failures(self):
        from repro.ledger.accounts import decode_account_id

        with pytest.raises(errors.ReproError):
            decode_account_id("not-an-address")
