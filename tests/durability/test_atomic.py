"""Atomic-write and manifest tests, including simulated crashes.

The contract under test: a reader never sees a partial file at the target
path, no matter when the writer dies — an exception mid-write, or a
``kill -9``-equivalent hard exit with the temp file still open.
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
import sys

import pytest

from repro.durability import (
    atomic_write,
    manifest_path,
    read_manifest,
    verify_manifest,
)
from repro.errors import AnalysisError, IntegrityError, ReproError


class TestAtomicWrite:
    def test_writes_text(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with atomic_write(path) as handle:
            handle.write("hello\n")
        assert open(path).read() == "hello\n"
        assert glob.glob(str(tmp_path / "*.tmp.*")) == []

    def test_writes_binary(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with atomic_write(path, mode="wb") as handle:
            handle.write(b"\x00\x01\x02")
        assert open(path, "rb").read() == b"\x00\x01\x02"

    def test_rejects_other_modes(self, tmp_path):
        with pytest.raises(ValueError):
            with atomic_write(str(tmp_path / "x"), mode="a"):
                pass

    def test_exception_leaves_original_untouched(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with atomic_write(path) as handle:
            handle.write("original\n")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write("partial garbage")
                raise RuntimeError("writer died")
        assert open(path).read() == "original\n"
        assert glob.glob(str(tmp_path / "*.tmp.*")) == []

    def test_exception_with_no_prior_file_leaves_nothing(self, tmp_path):
        path = str(tmp_path / "fresh.txt")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write("doomed")
                raise RuntimeError("writer died")
        assert not os.path.exists(path)
        assert glob.glob(str(tmp_path / "*.tmp.*")) == []

    def test_hard_kill_mid_write_never_corrupts_target(self, tmp_path):
        """A process hard-exiting (the kill -9 case: no finally blocks,
        no atexit) mid-``atomic_write`` must leave the original intact;
        the stale temp is swept by the next successful write."""
        path = str(tmp_path / "out.txt")
        with atomic_write(path) as handle:
            handle.write("original\n")
        script = (
            "import os, sys\n"
            "from repro.durability import atomic_write\n"
            f"with atomic_write({path!r}) as handle:\n"
            "    handle.write('partial garbage with no newline')\n"
            "    handle.flush()\n"
            "    os._exit(9)\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        )
        assert proc.returncode == 9
        # Target untouched; the orphaned temp file is allowed to exist...
        assert open(path).read() == "original\n"
        # ...until the next successful write sweeps it.
        with atomic_write(path) as handle:
            handle.write("second\n")
        assert open(path).read() == "second\n"
        assert glob.glob(str(tmp_path / "*.tmp.*")) == []


class TestManifest:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.txt")
        with atomic_write(path, manifest=True, records=3, fmt="test/1") as handle:
            handle.write("a\nb\nc\n")
        payload = verify_manifest(path, required=True)
        assert payload["records"] == 3
        assert payload["format"] == "test/1"
        assert payload["bytes"] == 6

    def test_missing_manifest_is_none_unless_required(self, tmp_path):
        path = str(tmp_path / "bare.txt")
        with atomic_write(path) as handle:
            handle.write("x")
        assert verify_manifest(path) is None
        with pytest.raises(IntegrityError):
            verify_manifest(path, required=True)

    def test_tampered_file_detected(self, tmp_path):
        path = str(tmp_path / "data.txt")
        with atomic_write(path, manifest=True) as handle:
            handle.write("payload\n")
        with open(path, "w") as handle:  # non-atomic overwrite = tampering
            handle.write("garbage\n")
        with pytest.raises(IntegrityError, match="truncated or corrupted"):
            verify_manifest(path)

    def test_truncated_file_detected_by_size(self, tmp_path):
        path = str(tmp_path / "data.txt")
        with atomic_write(path, manifest=True) as handle:
            handle.write("0123456789\n")
        with open(path, "r+") as handle:
            handle.truncate(4)
        with pytest.raises(IntegrityError, match="size"):
            verify_manifest(path)

    def test_unreadable_manifest_is_an_error(self, tmp_path):
        path = str(tmp_path / "data.txt")
        with atomic_write(path) as handle:
            handle.write("x")
        with open(manifest_path(path), "w") as handle:
            handle.write("{not json")
        with pytest.raises(IntegrityError, match="manifest"):
            read_manifest(path)

    def test_wrong_hash_in_manifest(self, tmp_path):
        path = str(tmp_path / "data.txt")
        with atomic_write(path, manifest=True) as handle:
            handle.write("payload\n")
        payload = json.load(open(manifest_path(path)))
        payload["sha256"] = "0" * 64
        with open(manifest_path(path), "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(IntegrityError, match="sha256 mismatch"):
            verify_manifest(path)

    def test_integrity_error_is_a_repro_error(self):
        assert issubclass(IntegrityError, ReproError)
        assert issubclass(IntegrityError, AnalysisError)

    def test_rewrite_refreshes_manifest(self, tmp_path):
        path = str(tmp_path / "data.txt")
        with atomic_write(path, manifest=True) as handle:
            handle.write("one\n")
        first = read_manifest(path)
        with atomic_write(path, manifest=True) as handle:
            handle.write("two two\n")
        second = read_manifest(path)
        assert first["sha256"] != second["sha256"]
        verify_manifest(path, required=True)
