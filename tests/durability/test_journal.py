"""Resume-journal tests: checkpointing, corruption tolerance, resume runs.

The shard functions live at module level so the worker pool can unpickle
them by reference; the "was this computed or loaded?" question is answered
with marker files, because workers are separate processes.
"""

from __future__ import annotations

import os

from repro.durability import ResumeJournal
from repro.durability.journal import plan_fingerprint
from repro.node import RetryPolicy
from repro.parallel.engine import map_shards

FAST_POLICY = RetryPolicy(
    max_retries=1, base_backoff=1.0, multiplier=1.0, max_backoff=1.0, jitter=0.0
)


def _square_with_marker(shard):
    """Square a value, dropping a per-shard marker file as evidence."""
    value, marker_dir = shard
    with open(os.path.join(marker_dir, f"computed-{value}"), "w") as handle:
        handle.write("1")
    return value * value


class TestPlanFingerprint:
    def test_depends_on_shape(self):
        assert plan_fingerprint([[1, 2], [3]]) == plan_fingerprint([[9, 9], [9]])
        assert plan_fingerprint([[1, 2], [3]]) != plan_fingerprint([[1], [2, 3]])
        assert plan_fingerprint([]) != plan_fingerprint([[1]])

    def test_tolerates_unsized_shards(self):
        assert plan_fingerprint([7, 8]) == plan_fingerprint([1, 2])


class TestJournalEntries:
    def test_store_load_roundtrip(self, tmp_path):
        journal = ResumeJournal({"artifact": "t"}, root=str(tmp_path))
        journal.store(3, {"partial": [1, 2, 3]})
        assert journal.load(3) == {"partial": [1, 2, 3]}
        assert journal.load(4) is None

    def test_same_key_same_directory(self, tmp_path):
        a = ResumeJournal({"artifact": "t", "seed": 1}, root=str(tmp_path))
        b = ResumeJournal({"artifact": "t", "seed": 1}, root=str(tmp_path))
        c = ResumeJournal({"artifact": "t", "seed": 2}, root=str(tmp_path))
        assert a.directory == b.directory
        assert a.directory != c.directory

    def test_corrupt_entry_degrades_to_recompute(self, tmp_path):
        journal = ResumeJournal({"artifact": "t"}, root=str(tmp_path))
        journal.store(0, [1, 2, 3])
        path = journal._entry_path(0)  # noqa: SLF001
        with open(path, "ab") as handle:  # bit-rot: append garbage
            handle.write(b"\xff\xff")
        assert journal.load(0) is None  # and the bad entry is removed
        assert not os.path.exists(path)

    def test_unpicklable_entry_degrades_to_recompute(self, tmp_path):
        journal = ResumeJournal({"artifact": "t"}, root=str(tmp_path))
        journal.store(0, [1])
        path = journal._entry_path(0)  # noqa: SLF001
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        # Rewrite the sidecar so only the pickle layer is corrupt.
        from repro.durability import write_manifest

        write_manifest(path)
        assert journal.load(0) is None

    def test_meta_json_documents_the_key(self, tmp_path):
        journal = ResumeJournal({"artifact": "fig3", "seed": 7},
                                root=str(tmp_path))
        journal.store(0, "x")
        meta = os.path.join(journal.directory, "meta.json")
        assert os.path.exists(meta)
        assert '"fig3"' in open(meta).read()


class TestMapShardsResume:
    def test_first_run_computes_then_resume_loads(self, tmp_path):
        marker_dir = str(tmp_path / "markers")
        os.makedirs(marker_dir)
        shards = [(v, marker_dir) for v in range(4)]
        journal = ResumeJournal({"artifact": "t"}, root=str(tmp_path / "j"))

        first = map_shards("t", _square_with_marker, shards, 2, FAST_POLICY,
                           journal=journal)
        assert first == [0, 1, 4, 9]
        assert len(os.listdir(marker_dir)) == 4

        for name in os.listdir(marker_dir):
            os.remove(os.path.join(marker_dir, name))
        second = map_shards("t", _square_with_marker, shards, 2, FAST_POLICY,
                            journal=journal)
        assert second == first
        assert os.listdir(marker_dir) == []  # nothing recomputed

    def test_partial_journal_recomputes_only_missing(self, tmp_path):
        marker_dir = str(tmp_path / "markers")
        os.makedirs(marker_dir)
        shards = [(v, marker_dir) for v in range(4)]
        journal = ResumeJournal({"artifact": "t"}, root=str(tmp_path / "j"))
        # Simulate a killed run that completed shards 0 and 2 only.
        journal.store(0, 0)
        journal.store(2, 4)

        results = map_shards("t", _square_with_marker, shards, 2, FAST_POLICY,
                             journal=journal)
        assert results == [0, 1, 4, 9]
        computed = sorted(os.listdir(marker_dir))
        assert computed == ["computed-1", "computed-3"]

    def test_corrupt_checkpoint_recomputes_that_shard(self, tmp_path):
        marker_dir = str(tmp_path / "markers")
        os.makedirs(marker_dir)
        shards = [(v, marker_dir) for v in range(3)]
        journal = ResumeJournal({"artifact": "t"}, root=str(tmp_path / "j"))
        map_shards("t", _square_with_marker, shards, 2, FAST_POLICY,
                   journal=journal)
        # Flip a byte in shard 1's checkpoint.
        path = journal._entry_path(1)  # noqa: SLF001
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))

        for name in os.listdir(marker_dir):
            os.remove(os.path.join(marker_dir, name))
        results = map_shards("t", _square_with_marker, shards, 2, FAST_POLICY,
                             journal=journal)
        assert results == [0, 1, 4]
        assert sorted(os.listdir(marker_dir)) == ["computed-1"]
