"""Bit-for-bit regression pins for the optimized hot paths.

One fixed-seed economy is generated through the full engine and its
analysis outputs are pinned exactly: the per-record stream digest, all ten
Fig. 3 information-gain counts, and the Table II delivery fractions.  Any
optimization that changes routing order, float derivation, fingerprint
grouping, or the replay must trip one of these pins — speed work on this
repo is only valid when these stay green.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.analysis.dataset import TransactionDataset
from repro.analysis.market_makers import table2
from repro.core.deanonymizer import Deanonymizer
from repro.synthetic.config import EconomyConfig
from repro.synthetic.generator import LedgerHistoryGenerator

GOLDEN_CONFIG = EconomyConfig(
    seed=97,
    n_payments=2400,
    n_users=160,
    n_gateways=12,
    n_market_makers=60,
    n_offers=9600,
)

GOLDEN_RECORDS_SHA256 = (
    "dad61f9464d7fbeeaf611837c8429d2ad22a84e168ab392397bbcd79f01cf569"
)
GOLDEN_FAILED_PAYMENTS = 2

#: (identified, total) per Fig. 3 feature list, in the paper's order.
#: Two rows moved when amount coarsening switched from banker's rounding
#: to deterministic half-up: row 8 (⟨Am; T-; C; D⟩) 873 -> 874 (one golden
#: amount sits exactly on a bucket boundary) and row 10 (⟨Al; Tdy; -; -⟩)
#: 765 -> 772 (the currency-blind rescale now applies the same half-up tie
#: rule as the bucketing itself).  Every other row is rounding-tie free.
GOLDEN_FIG3_COUNTS = (
    (2398, 2398),
    (2398, 2398),
    (2398, 2398),
    (2398, 2398),
    (2398, 2398),
    (2390, 2398),
    (2311, 2398),
    (874, 2398),
    (452, 2398),
    (772, 2398),
)

#: (delivered, submitted) for Table II's cross, single, and total rows.
GOLDEN_TABLE2 = (
    ("Cross-currency", 0, 103),
    ("Single-currency", 15, 54),
    ("Total", 15, 157),
)


@pytest.fixture(scope="module")
def golden_history():
    return LedgerHistoryGenerator(GOLDEN_CONFIG).generate()


def records_digest(records) -> str:
    digest = hashlib.sha256()
    for record in records:
        digest.update(
            repr(
                (
                    record.index,
                    record.timestamp,
                    record.sender.address,
                    record.destination.address,
                    record.currency,
                    record.amount,
                    record.is_xrp_direct,
                    record.cross_currency,
                    record.intermediate_hops,
                    record.parallel_paths,
                    tuple(a.address for a in record.intermediaries),
                    record.delivered,
                    record.kind,
                )
            ).encode()
        )
    return digest.hexdigest()


class TestGoldenRegression:
    def test_record_stream_digest(self, golden_history):
        assert golden_history.failed_payments == GOLDEN_FAILED_PAYMENTS
        assert records_digest(golden_history.records) == GOLDEN_RECORDS_SHA256

    def test_figure3_counts(self, golden_history):
        dataset = TransactionDataset.from_records(golden_history.records)
        gains = Deanonymizer(dataset).figure3()
        observed = tuple((ig.identified, ig.total) for ig in gains)
        assert observed == GOLDEN_FIG3_COUNTS

    def test_table2_delivery_fractions(self, golden_history):
        rows = table2(golden_history).rows()
        observed = tuple(
            (row.category, row.delivered, row.submitted) for row in rows
        )
        assert observed == GOLDEN_TABLE2
