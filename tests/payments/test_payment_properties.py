"""Property-based tests for path finding and order-book matching."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import EUR, USD
from repro.ledger.offers import Offer
from repro.ledger.state import LedgerState
from repro.payments.graph import TrustGraph
from repro.payments.orderbook import OrderBook
from repro.payments.pathfinding import plan_payment

# Random small credit networks: limits per edge of a layered graph.
layer_limits = st.lists(
    st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=1, max_size=4),
    min_size=1,
    max_size=3,
)


def build_layered(limits):
    """Source -> layer1 -> ... -> sink, trust limits from the strategy."""
    state = LedgerState()
    source = account_from_name("prop-src", namespace="pp")
    sink = account_from_name("prop-sink", namespace="pp")
    state.create_account(source, 10 ** 9)
    state.create_account(sink, 10 ** 9)
    previous = [source]
    for layer_index, layer in enumerate(limits):
        nodes = []
        for node_index, limit in enumerate(layer):
            node = account_from_name(
                f"prop-{layer_index}-{node_index}", namespace="pp"
            )
            state.create_account(node, 10 ** 9)
            for upstream in previous:
                state.set_trust(node, upstream, Amount.from_value(USD, limit))
            nodes.append(node)
        previous = nodes
    for upstream in previous:
        state.set_trust(sink, upstream, Amount.from_value(USD, 100.0))
    return state, source, sink


class TestPathfindingProperties:
    @settings(max_examples=40, deadline=None)
    @given(layer_limits, st.floats(min_value=1.0, max_value=400.0))
    def test_plan_never_overshoots(self, limits, amount):
        state, source, sink = build_layered(limits)
        graph = TrustGraph(state, USD)
        plan = plan_payment(graph, source, sink, amount)
        assert plan.total <= amount * (1 + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(layer_limits, st.floats(min_value=1.0, max_value=400.0))
    def test_planned_paths_respect_capacity(self, limits, amount):
        state, source, sink = build_layered(limits)
        graph = TrustGraph(state, USD)
        plan = plan_payment(graph, source, sink, amount)
        # Sum of planned flow per hop never exceeds that hop's capacity.
        flow = {}
        for path, value in zip(plan.paths, plan.amounts):
            for a, b in zip(path, path[1:]):
                flow[(a, b)] = flow.get((a, b), 0.0) + value
        for (a, b), used in flow.items():
            assert used <= graph.capacity(a, b) * (1 + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(layer_limits, st.floats(min_value=1.0, max_value=400.0))
    def test_paths_are_simple_and_endpoints_correct(self, limits, amount):
        state, source, sink = build_layered(limits)
        graph = TrustGraph(state, USD)
        plan = plan_payment(graph, source, sink, amount)
        for path in plan.paths:
            assert path[0] == source and path[-1] == sink
            assert len(set(path)) == len(path)  # no cycles

    @settings(max_examples=30, deadline=None)
    @given(layer_limits)
    def test_plan_is_deterministic(self, limits):
        state_a, source_a, sink_a = build_layered(limits)
        state_b, source_b, sink_b = build_layered(limits)
        plan_a = plan_payment(TrustGraph(state_a, USD), source_a, sink_a, 50.0)
        plan_b = plan_payment(TrustGraph(state_b, USD), source_b, sink_b, 50.0)
        assert plan_a.amounts == plan_b.amounts
        assert plan_a.paths == plan_b.paths


offer_specs = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=50.0),    # quality (pays per gets)
        st.floats(min_value=1.0, max_value=500.0),   # gets size
    ),
    min_size=1,
    max_size=8,
)


class TestOrderBookProperties:
    def build_book(self, specs):
        state = LedgerState()
        maker = account_from_name("prop-maker", namespace="pp")
        state.create_account(maker, 10 ** 9)
        for index, (quality, gets) in enumerate(specs):
            state.place_offer(
                Offer(
                    owner=maker,
                    sequence=index + 1,
                    taker_pays=Amount.from_value(USD, quality * gets),
                    taker_gets=Amount.from_value(EUR, gets),
                )
            )
        return OrderBook(state, USD, EUR)

    @settings(max_examples=50, deadline=None)
    @given(offer_specs, st.floats(min_value=0.5, max_value=2000.0))
    def test_quote_never_exceeds_depth(self, specs, wanted):
        book = self.build_book(specs)
        depth = book.depth_gets()
        quote = book.quote_gets(wanted)
        assert quote.total_gets <= min(wanted, depth) * (1 + 1e-9)

    @settings(max_examples=50, deadline=None)
    @given(offer_specs, st.floats(min_value=0.5, max_value=2000.0))
    def test_quote_walks_best_first(self, specs, wanted):
        book = self.build_book(specs)
        quote = book.quote_gets(wanted)
        rates = [fill.rate for fill in quote.fills if fill.gets.to_float() > 0]
        # Ledger precision (1e-6) introduces epsilon jitter between fills
        # of equal-quality offers; ordering must hold beyond that noise.
        assert all(a <= b + 1e-5 * max(1.0, b) for a, b in zip(rates, rates[1:]))

    @settings(max_examples=50, deadline=None)
    @given(offer_specs)
    def test_consume_matches_quote(self, specs):
        wanted = self.build_book(specs).depth_gets() * 0.5
        if wanted <= 0:
            return
        quote_book = self.build_book(specs)
        consume_book = self.build_book(specs)
        quoted = quote_book.quote_gets(wanted)
        consumed = consume_book.consume_gets(wanted)
        assert abs(consumed.total_gets - quoted.total_gets) < max(
            1e-5, quoted.total_gets * 1e-5
        )
        assert abs(consumed.total_pays - quoted.total_pays) < max(
            1e-4, quoted.total_pays * 1e-4
        )

    @settings(max_examples=50, deadline=None)
    @given(offer_specs)
    def test_consumption_conserves_value_at_offer_rates(self, specs):
        book = self.build_book(specs)
        wanted = book.depth_gets() * 0.7
        if wanted <= 0:
            return
        result = book.consume_gets(wanted)
        recomputed = sum(fill.gets.to_float() * fill.rate for fill in result.fills)
        assert abs(recomputed - result.total_pays) < max(1e-4, result.total_pays * 1e-4)
