"""Tests for the arbitrage bot (Section III-C)."""

import pytest

from repro.errors import PaymentError
from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import DROPS_PER_XRP, Amount
from repro.ledger.currency import EUR, USD, XRP, Currency
from repro.ledger.offers import Offer
from repro.ledger.state import LedgerState
from repro.payments.arbitrage import ArbitrageBot


@pytest.fixture()
def market():
    state = LedgerState()
    bot_account = account_from_name("arb-bot", namespace="arb")
    maker_a = account_from_name("maker-a", namespace="arb")
    maker_b = account_from_name("maker-b", namespace="arb")
    for account in (bot_account, maker_a, maker_b):
        state.create_account(account, 10 ** 9 * DROPS_PER_XRP)
    return state, bot_account, maker_a, maker_b


def place(state, owner, seq, pays_cur, pays, gets_cur, gets):
    state.place_offer(
        Offer(
            owner=owner,
            sequence=seq,
            taker_pays=Amount.from_value(pays_cur, pays),
            taker_gets=Amount.from_value(gets_cur, gets),
        )
    )


class TestDetection:
    def test_skewed_market_detected(self, market):
        state, bot_account, maker_a, maker_b = market
        # Buy USD at 100 XRP/USD (pay 10000 XRP get 100 USD),
        # sell USD at 110 XRP/USD: 10% cycle profit.
        place(state, maker_a, 1, XRP, 10_000, USD, 100)
        place(state, maker_b, 2, USD, 100, XRP, 11_000)
        bot = ArbitrageBot(state, bot_account)
        quotes = bot.find_opportunities([USD])
        assert quotes and quotes[0].profitable
        assert quotes[0].rate == pytest.approx(1.1)

    def test_efficient_market_yields_nothing(self, market):
        state, bot_account, maker_a, maker_b = market
        place(state, maker_a, 1, XRP, 10_000, USD, 100)
        place(state, maker_b, 2, USD, 100, XRP, 9_500)  # round trip loses
        bot = ArbitrageBot(state, bot_account)
        assert bot.find_opportunities([USD]) == []

    def test_triangular_cycle_detected(self, market):
        state, bot_account, maker_a, maker_b = market
        # XRP -> USD -> EUR -> XRP with compounded skew.
        place(state, maker_a, 1, XRP, 10_000, USD, 100)   # 0.01 USD per XRP
        place(state, maker_a, 2, USD, 100, EUR, 95)       # 0.95 EUR per USD
        place(state, maker_b, 3, EUR, 95, XRP, 11_000)    # back to XRP, +10%
        bot = ArbitrageBot(state, bot_account)
        quotes = bot.find_opportunities([USD, EUR])
        triangular = [q for q in quotes if len(q.legs) == 3]
        assert triangular
        assert triangular[0].rate == pytest.approx(1.1, rel=1e-6)

    def test_capacity_bounded_by_depth(self, market):
        state, bot_account, maker_a, maker_b = market
        place(state, maker_a, 1, XRP, 1_000, USD, 10)   # shallow buy side
        place(state, maker_b, 2, USD, 100, XRP, 11_000)
        bot = ArbitrageBot(state, bot_account)
        quote = bot.find_opportunities([USD])[0]
        assert quote.capacity_xrp <= 1_000 + 1e-6


class TestExecution:
    def test_profitable_cycle_increases_xrp(self, market):
        state, bot_account, maker_a, maker_b = market
        place(state, maker_a, 1, XRP, 10_000, USD, 100)
        place(state, maker_b, 2, USD, 100, XRP, 11_000)
        bot = ArbitrageBot(state, bot_account)
        before = state.xrp_balance(bot_account)
        quote = bot.find_opportunities([USD])[0]
        result = bot.execute(quote, xrp_budget=5_000)
        assert result.profit_xrp > 0
        after = state.xrp_balance(bot_account)
        assert after - before == pytest.approx(
            result.profit_xrp * DROPS_PER_XRP, rel=1e-6
        )

    def test_execution_consumes_offers(self, market):
        state, bot_account, maker_a, maker_b = market
        place(state, maker_a, 1, XRP, 10_000, USD, 100)
        place(state, maker_b, 2, USD, 100, XRP, 11_000)
        bot = ArbitrageBot(state, bot_account)
        quote = bot.find_opportunities([USD])[0]
        bot.execute(quote, xrp_budget=10_000)
        # Both best offers were (at least partially) eaten.
        remaining_buy = state.book_offers(XRP, USD)
        assert not remaining_buy or remaining_buy[0].taker_gets.to_float() < 100

    def test_zero_volume_rejected(self, market):
        state, bot_account, maker_a, maker_b = market
        place(state, maker_a, 1, XRP, 10_000, USD, 100)
        place(state, maker_b, 2, USD, 100, XRP, 11_000)
        bot = ArbitrageBot(state, bot_account)
        quote = bot.find_opportunities([USD])[0]
        with pytest.raises(PaymentError):
            bot.execute(quote, xrp_budget=0)

    def test_harvest_drives_market_efficient(self, market):
        state, bot_account, maker_a, maker_b = market
        place(state, maker_a, 1, XRP, 10_000, USD, 100)
        place(state, maker_b, 2, USD, 100, XRP, 11_000)
        bot = ArbitrageBot(state, bot_account)
        results = bot.harvest([USD], xrp_budget=50_000, max_cycles=5)
        assert results
        # After harvesting, no profitable cycle remains.
        assert bot.find_opportunities([USD]) == []

    def test_harvest_on_efficient_market_is_empty(self, market):
        state, bot_account, maker_a, maker_b = market
        place(state, maker_a, 1, XRP, 10_000, USD, 100)
        place(state, maker_b, 2, USD, 110, XRP, 10_000)
        bot = ArbitrageBot(state, bot_account)
        assert bot.harvest([USD], xrp_budget=10_000) == []
