"""Tests for the payment engine: routing, atomicity, and experiment knobs."""

import pytest

from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import DROPS_PER_XRP, Amount
from repro.ledger.currency import EUR, USD, XRP
from repro.ledger.offers import Offer
from repro.ledger.state import LedgerState
from repro.ledger.transactions import BASE_FEE_DROPS
from repro.payments.engine import PaymentEngine
from repro.payments.execution import Executor


def usd(value):
    return Amount.from_value(USD, value)


def eur(value):
    return Amount.from_value(EUR, value)


@pytest.fixture()
def economy():
    """sender/receiver at one gateway, market maker, EUR receiver."""
    state = LedgerState()
    names = ["sender", "receiver", "gateway", "gateway2", "maker", "euro-receiver"]
    actors = {n: account_from_name(n, namespace="engine") for n in names}
    for account in actors.values():
        state.create_account(account, 10 ** 12)
    for user in ("sender", "receiver"):
        state.set_trust(actors[user], actors["gateway"], usd(10_000))
    state.set_trust(actors["euro-receiver"], actors["gateway2"], eur(10_000))
    # sender deposit
    state.apply_hop(actors["gateway"], actors["sender"], usd(5_000))
    # maker holds deposits at both gateways
    state.set_trust(actors["maker"], actors["gateway"], usd(10 ** 6))
    state.apply_hop(actors["gateway"], actors["maker"], usd(10 ** 5))
    state.set_trust(actors["maker"], actors["gateway2"], eur(10 ** 6))
    state.apply_hop(actors["gateway2"], actors["maker"], eur(10 ** 5))
    return state, actors


class TestXrpPayments:
    def test_direct_transfer(self, economy):
        state, actors = economy
        engine = PaymentEngine(state)
        result = engine.submit(actors["sender"], actors["receiver"], Amount.xrp(5))
        assert result.success
        assert result.intermediate_hops == 0
        assert state.xrp_balance(actors["receiver"]) == 10 ** 12 + 5 * DROPS_PER_XRP

    def test_fee_burned_even_on_failure(self, economy):
        state, actors = economy
        engine = PaymentEngine(state)
        lonely = account_from_name("lonely", namespace="engine")
        state.create_account(lonely, 10 ** 9)
        result = engine.submit(actors["sender"], lonely, usd(10))
        assert not result.success
        assert result.fee_drops == BASE_FEE_DROPS
        assert state.burned_fee_drops == BASE_FEE_DROPS

    def test_fees_can_be_disabled(self, economy):
        state, actors = economy
        engine = PaymentEngine(state, enforce_fees=False)
        engine.submit(actors["sender"], actors["receiver"], Amount.xrp(1))
        assert state.burned_fee_drops == 0


class TestSameCurrency:
    def test_one_hop_through_gateway(self, economy):
        state, actors = economy
        engine = PaymentEngine(state)
        result = engine.submit(actors["sender"], actors["receiver"], usd(100))
        assert result.success
        assert result.intermediate_hops == 1
        assert result.intermediaries == [actors["gateway"]]
        assert state.iou_balance(actors["receiver"], USD).to_float() == pytest.approx(100)

    def test_insufficient_deposit_fails_cleanly(self, economy):
        state, actors = economy
        engine = PaymentEngine(state)
        before = state.iou_balance(actors["sender"], USD).to_float()
        result = engine.submit(actors["sender"], actors["receiver"], usd(6_000))
        assert not result.success
        # Atomicity: nothing moved.
        assert state.iou_balance(actors["sender"], USD).to_float() == pytest.approx(before)
        assert state.iou_balance(actors["receiver"], USD).is_zero

    def test_unknown_receiver_fails(self, economy):
        state, actors = economy
        engine = PaymentEngine(state)
        ghost = account_from_name("ghost", namespace="engine")
        result = engine.submit(actors["sender"], ghost, usd(1))
        assert not result.success and "unknown account" in result.error


class TestCrossCurrency:
    def place_bridge_offer(self, state, actors):
        state.place_offer(
            Offer(
                owner=actors["maker"],
                sequence=1,
                taker_pays=usd(11_000),
                taker_gets=eur(10_000),
            )
        )

    def test_bridge_delivers_eur_for_usd(self, economy):
        state, actors = economy
        self.place_bridge_offer(state, actors)
        engine = PaymentEngine(state)
        result = engine.submit(
            actors["sender"], actors["euro-receiver"], eur(100), send_max=usd(1_000)
        )
        assert result.success
        assert result.is_cross_currency
        assert result.outcome.bridge_account == actors["maker"]
        assert state.iou_balance(actors["euro-receiver"], EUR).to_float() == pytest.approx(100)
        # Sender paid ~110 USD at the 1.1 rate.
        assert state.iou_balance(actors["sender"], USD).to_float() == pytest.approx(5_000 - 110)

    def test_no_offers_no_bridge(self, economy):
        state, actors = economy
        engine = PaymentEngine(state)
        result = engine.submit(
            actors["sender"], actors["euro-receiver"], eur(100), send_max=usd(1_000)
        )
        assert not result.success

    def test_allow_offers_false_blocks_cross_currency(self, economy):
        state, actors = economy
        self.place_bridge_offer(state, actors)
        engine = PaymentEngine(state)
        result = engine.submit(
            actors["sender"],
            actors["euro-receiver"],
            eur(100),
            send_max=usd(1_000),
            allow_offers=False,
        )
        assert not result.success

    def test_banned_maker_blocks_bridge(self, economy):
        state, actors = economy
        self.place_bridge_offer(state, actors)
        engine = PaymentEngine(state)
        result = engine.submit(
            actors["sender"],
            actors["euro-receiver"],
            eur(100),
            send_max=usd(1_000),
            banned_intermediaries={actors["maker"]},
        )
        assert not result.success

    def test_failed_bridge_rolls_back_offer(self, economy):
        state, actors = economy
        self.place_bridge_offer(state, actors)
        # euro-receiver2 exists but trusts nobody — delivery leg must fail.
        stranded = account_from_name("stranded", namespace="engine")
        state.create_account(stranded, 10 ** 9)
        engine = PaymentEngine(state)
        result = engine.submit(
            actors["sender"], stranded, eur(100), send_max=usd(1_000)
        )
        assert not result.success
        offer = state.offers[(actors["maker"], 1)]
        assert offer.taker_gets.to_float() == pytest.approx(10_000)


class TestBannedIntermediaries:
    def test_banned_gateway_blocks_relay(self, economy):
        state, actors = economy
        engine = PaymentEngine(state)
        result = engine.submit(
            actors["sender"],
            actors["receiver"],
            usd(10),
            banned_intermediaries={actors["gateway"]},
        )
        assert not result.success

    def test_banned_account_still_usable_as_endpoint(self, economy):
        state, actors = economy
        engine = PaymentEngine(state)
        result = engine.submit(
            actors["sender"],
            actors["gateway"],
            usd(10),
            banned_intermediaries={actors["gateway"]},
        )
        assert result.success


class TestForcedPaths:
    def test_forced_route_and_metadata(self, economy):
        state, actors = economy
        # Build a 2-intermediate chain with explicit trust.
        chain = [account_from_name(f"relay{i}", namespace="engine") for i in range(2)]
        for account in chain:
            state.create_account(account, 10 ** 9)
        state.set_trust(chain[0], actors["sender"], usd(1_000))
        state.set_trust(chain[1], chain[0], usd(1_000))
        state.set_trust(actors["receiver"], chain[1], usd(1_000))
        engine = PaymentEngine(state)
        path = [actors["sender"], chain[0], chain[1], actors["receiver"]]
        result = engine.submit(
            actors["sender"], actors["receiver"], usd(50),
            forced_paths=[(path, 50.0)],
        )
        assert result.success
        assert result.intermediate_hops == 2
        assert result.parallel_paths == 1

    def test_forced_route_without_capacity_fails_atomically(self, economy):
        state, actors = economy
        path = [actors["sender"], actors["receiver"]]
        result = PaymentEngine(state).submit(
            actors["sender"], actors["receiver"], usd(50),
            forced_paths=[(path, 50.0)],
        )
        # receiver does not trust sender directly
        assert not result.success


class TestExecutorRollback:
    def test_rollback_restores_everything(self, economy):
        state, actors = economy
        executor = Executor(state)
        executor.hop(actors["gateway"], actors["receiver"], usd(25))
        executor.xrp(actors["sender"], actors["receiver"], 1234)
        offer = Offer(
            owner=actors["maker"], sequence=9,
            taker_pays=usd(110), taker_gets=eur(100),
        )
        state.place_offer(offer)
        executor.fill(offer, eur(40))
        executor.rollback()
        assert state.iou_balance(actors["receiver"], USD).is_zero
        assert state.xrp_balance(actors["sender"]) == 10 ** 12
        assert offer.taker_gets.to_float() == pytest.approx(100)
        assert executor.pending_ops == 0

    def test_commit_clears_journal(self, economy):
        state, actors = economy
        executor = Executor(state)
        executor.xrp(actors["sender"], actors["receiver"], 10)
        executor.commit()
        executor.rollback()  # no-op after commit
        assert state.xrp_balance(actors["receiver"]) == 10 ** 12 + 10


class TestSameCurrencyDetour:
    def test_detour_via_books_when_no_trust_path(self, economy):
        state, actors = economy
        # A USD receiver at gateway2 with no path from sender's gateway.
        stranded = account_from_name("stranded-usd", namespace="engine")
        state.create_account(stranded, 10 ** 9)
        state.set_trust(stranded, actors["gateway2"], usd(10_000))
        state.set_trust(actors["maker"], actors["gateway2"], usd(10 ** 6))
        state.apply_hop(actors["gateway2"], actors["maker"], usd(10 ** 5))
        # Books: USD -> XRP and XRP -> USD (the detour's two legs).
        state.place_offer(Offer(owner=actors["maker"], sequence=21,
                                taker_pays=usd(10_000),
                                taker_gets=Amount.xrp(1_000_000)))
        state.place_offer(Offer(owner=actors["maker"], sequence=22,
                                taker_pays=Amount.xrp(1_050_000),
                                taker_gets=usd(10_000)))
        engine = PaymentEngine(state)
        result = engine.submit(actors["sender"], stranded, usd(50))
        assert result.success
        assert state.iou_balance(stranded, USD).to_float() == pytest.approx(50)

    def test_detour_blocked_when_owner_banned(self, economy):
        state, actors = economy
        stranded = account_from_name("stranded-usd2", namespace="engine")
        state.create_account(stranded, 10 ** 9)
        state.set_trust(stranded, actors["gateway2"], usd(10_000))
        state.set_trust(actors["maker"], actors["gateway2"], usd(10 ** 6))
        state.apply_hop(actors["gateway2"], actors["maker"], usd(10 ** 5))
        state.place_offer(Offer(owner=actors["maker"], sequence=31,
                                taker_pays=usd(10_000),
                                taker_gets=Amount.xrp(1_000_000)))
        state.place_offer(Offer(owner=actors["maker"], sequence=32,
                                taker_pays=Amount.xrp(1_050_000),
                                taker_gets=usd(10_000)))
        engine = PaymentEngine(state)
        result = engine.submit(
            actors["sender"], stranded, usd(50),
            banned_intermediaries={actors["maker"]},
        )
        assert not result.success
