"""Tests for order books and cross-currency bridge planning."""

import pytest

from repro.errors import OfferError
from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import BTC, EUR, USD, XRP
from repro.ledger.offers import Offer
from repro.ledger.state import LedgerState
from repro.payments.bridging import plan_bridge, plan_same_currency_detour
from repro.payments.orderbook import OrderBook


@pytest.fixture()
def market():
    state = LedgerState()
    makers = [account_from_name(f"mm{i}", namespace="book") for i in range(3)]
    for maker in makers:
        state.create_account(maker, 10 ** 12)
    return state, makers


def place(state, maker, seq, pays_cur, pays, gets_cur, gets):
    offer = Offer(
        owner=maker,
        sequence=seq,
        taker_pays=Amount.from_value(pays_cur, pays),
        taker_gets=Amount.from_value(gets_cur, gets),
    )
    state.place_offer(offer)
    return offer


class TestOrderBook:
    def test_best_quality(self, market):
        state, makers = market
        place(state, makers[0], 1, USD, 120, EUR, 100)  # 1.2
        place(state, makers[1], 2, USD, 110, EUR, 100)  # 1.1
        book = OrderBook(state, USD, EUR)
        assert book.best_quality() == pytest.approx(1.1)

    def test_same_currency_book_rejected(self, market):
        state, _ = market
        with pytest.raises(OfferError):
            OrderBook(state, USD, USD)

    def test_depth(self, market):
        state, makers = market
        place(state, makers[0], 1, USD, 120, EUR, 100)
        place(state, makers[1], 2, USD, 110, EUR, 50)
        assert OrderBook(state, USD, EUR).depth_gets() == pytest.approx(150)

    def test_quote_walks_best_first(self, market):
        state, makers = market
        place(state, makers[0], 1, USD, 120, EUR, 100)  # 1.2
        place(state, makers[1], 2, USD, 110, EUR, 100)  # 1.1
        quote = OrderBook(state, USD, EUR).quote_gets(150)
        assert quote.total_gets == pytest.approx(150)
        # 100 at 1.1 + 50 at 1.2
        assert quote.total_pays == pytest.approx(110 + 60)
        assert quote.fills[0].offer_sequence == 2

    def test_quote_partial_when_shallow(self, market):
        state, makers = market
        place(state, makers[0], 1, USD, 110, EUR, 100)
        quote = OrderBook(state, USD, EUR).quote_gets(500)
        assert quote.total_gets == pytest.approx(100)

    def test_consume_mutates_offers(self, market):
        state, makers = market
        offer = place(state, makers[0], 1, USD, 110, EUR, 100)
        OrderBook(state, USD, EUR).consume_gets(40)
        assert offer.taker_gets.to_float() == pytest.approx(60)

    def test_consume_shortfall_raises(self, market):
        state, makers = market
        place(state, makers[0], 1, USD, 110, EUR, 100)
        with pytest.raises(OfferError):
            OrderBook(state, USD, EUR).consume_gets(101)


class TestBridgePlanning:
    def test_direct_bridge(self, market):
        state, makers = market
        place(state, makers[0], 1, USD, 115, EUR, 100)
        plan = plan_bridge(state, USD, EUR, 50)
        assert plan is not None and len(plan.steps) == 1
        assert plan.steps[0].owner == makers[0]
        assert plan.source_cost == pytest.approx(57.5)

    def test_auto_bridge_via_xrp(self, market):
        state, makers = market
        # No direct USD->EUR book, but USD->XRP and XRP->EUR exist.
        place(state, makers[0], 1, USD, 100, XRP, 12000)
        place(state, makers[1], 2, XRP, 13000, EUR, 100)
        plan = plan_bridge(state, USD, EUR, 50)
        assert plan is not None and len(plan.steps) == 2
        assert plan.steps[0].gets.currency == XRP

    def test_cheapest_option_wins(self, market):
        state, makers = market
        # Direct at effective rate 1.3; via XRP at ~1.08 — XRP should win.
        place(state, makers[0], 1, USD, 130, EUR, 100)
        place(state, makers[1], 2, USD, 100, XRP, 13000)
        place(state, makers[2], 3, XRP, 14000, EUR, 100)
        plan = plan_bridge(state, USD, EUR, 50)
        assert len(plan.steps) == 2

    def test_no_liquidity_returns_none(self, market):
        state, _ = market
        assert plan_bridge(state, USD, EUR, 50) is None

    def test_same_currency_is_empty_plan(self, market):
        state, _ = market
        plan = plan_bridge(state, USD, USD, 50)
        assert plan is not None and plan.is_empty

    def test_offer_too_small_is_skipped(self, market):
        state, makers = market
        place(state, makers[0], 1, USD, 11, EUR, 10)   # too small for 50
        place(state, makers[1], 2, USD, 130, EUR, 100)  # deep enough
        plan = plan_bridge(state, USD, EUR, 50)
        assert plan.steps[0].owner == makers[1]

    def test_detour_needs_both_legs(self, market):
        state, makers = market
        place(state, makers[0], 1, USD, 100, XRP, 12000)
        assert plan_same_currency_detour(state, USD, 50) is None
        place(state, makers[1], 2, XRP, 13000, USD, 100)
        detour = plan_same_currency_detour(state, USD, 50)
        assert detour is not None and len(detour.steps) == 2

    def test_detour_never_for_xrp(self, market):
        state, _ = market
        assert plan_same_currency_detour(state, XRP, 50) is None
