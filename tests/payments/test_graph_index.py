"""Equivalence of the incremental trust-graph index with the reference scan.

The index must be invisible: for any reachable ledger state, the memoized
per-currency adjacency must yield exactly the edges — same order, same
float capacities — that a fresh full-scan :class:`TrustGraph` computes.
BFS tie-breaking depends on successor order, so even a reordering would
silently change which paths payments take.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TrustLineError
from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import EUR, USD
from repro.ledger.state import LedgerState
from repro.payments import graph as graph_module
from repro.payments.graph import TrustGraph
from repro.synthetic.config import EconomyConfig
from repro.synthetic.generator import LedgerHistoryGenerator

N_ACCOUNTS = 6


def build_state() -> tuple:
    state = LedgerState()
    accounts = []
    for index in range(N_ACCOUNTS):
        account = account_from_name(f"idx-user-{index}", namespace="graph-index")
        root = state.create_account(account, 10**10)
        root.allows_rippling = True
        accounts.append(account)
    return state, accounts


def assert_index_matches_scan(state: LedgerState, live: TrustGraph) -> None:
    """The live (memoized) graph equals a fresh reference recompute."""
    fresh = TrustGraph(state, live.currency)
    for account in state.accounts:
        indexed = list(live.successors(account))
        scanned = list(fresh._successors_scan(account))
        assert indexed == scanned, (
            f"successor mismatch for {account.short()}: "
            f"{indexed} != {scanned}"
        )


# One mutation of the trust fabric: set/update a limit, or push a hop.
operations = st.lists(
    st.tuples(
        st.sampled_from(["trust", "hop"]),
        st.integers(0, N_ACCOUNTS - 1),
        st.integers(0, N_ACCOUNTS - 1),
        st.integers(1, 10**6),
        st.sampled_from([USD, EUR]),
    ),
    min_size=1,
    max_size=40,
)


class TestIndexEquivalence:
    @given(operations)
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_interleavings_match_reference(self, ops):
        state, accounts = build_state()
        live = {code: TrustGraph(state, cur) for code, cur in
                (("USD", USD), ("EUR", EUR))}
        for kind, i, j, value, currency in ops:
            if i == j:
                continue
            if kind == "trust":
                state.set_trust(
                    accounts[i],
                    accounts[j],
                    Amount.from_value(currency, value),
                )
            else:
                try:
                    state.apply_hop(
                        accounts[i],
                        accounts[j],
                        Amount.from_value(currency, value),
                    )
                except TrustLineError:
                    pass  # no capacity for the hop — a legal no-op
            # The *same* long-lived graph objects are queried after every
            # mutation: this is what exercises version-based invalidation.
            for graph in live.values():
                assert_index_matches_scan(state, graph)

    def test_lowering_limit_invalidates_cached_successors(self):
        state, accounts = build_state()
        graph = TrustGraph(state, USD)
        state.set_trust(accounts[0], accounts[1], Amount.from_value(USD, 500))
        before = list(graph.successors(accounts[1]))
        assert before[0].capacity == 500.0
        state.set_trust(accounts[0], accounts[1], Amount.from_value(USD, 120))
        after = list(graph.successors(accounts[1]))
        assert after[0].capacity == 120.0

    def test_hop_consumption_reflected_immediately(self):
        state, accounts = build_state()
        graph = TrustGraph(state, USD)
        state.set_trust(accounts[0], accounts[1], Amount.from_value(USD, 1000))
        assert list(graph.successors(accounts[1]))[0].capacity == 1000.0
        state.apply_hop(accounts[1], accounts[0], Amount.from_value(USD, 250))
        assert list(graph.successors(accounts[1]))[0].capacity == 750.0
        # The debtor side gained a settle edge back.
        back = [e for e in graph.successors(accounts[0])
                if e.payee == accounts[1]]
        assert back and back[0].capacity == 250.0


class TestGeneratedEconomyEquivalence:
    def test_generation_identical_with_index_disabled(self, monkeypatch):
        """The whole synthetic economy is a fixpoint of the optimization:
        every routed payment must pick the same paths with the index off."""
        config = EconomyConfig(
            seed=97,
            n_payments=600,
            n_users=80,
            n_gateways=8,
            n_market_makers=30,
            n_offers=2400,
        )

        def run():
            history = LedgerHistoryGenerator(config).generate()
            return [
                (
                    record.index,
                    record.timestamp,
                    record.sender,
                    record.destination,
                    record.currency,
                    record.amount,
                    record.intermediate_hops,
                    record.parallel_paths,
                    record.intermediaries,
                    record.delivered,
                    record.kind,
                )
                for record in history.records
            ]

        monkeypatch.setattr(graph_module, "USE_INDEX", True)
        with_index = run()
        monkeypatch.setattr(graph_module, "USE_INDEX", False)
        without_index = run()
        assert with_index == without_index
