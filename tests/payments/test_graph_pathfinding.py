"""Tests for the trust graph and payment path finding."""

import pytest

from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import USD
from repro.ledger.state import LedgerState
from repro.payments.graph import TrustGraph, path_bottleneck
from repro.payments.pathfinding import PathPlan, plan_payment, shortest_path


def usd(value):
    return Amount.from_value(USD, value)


def build_chain(names, limit=100.0):
    """A trust chain: each account trusts its predecessor for `limit` USD,
    so value flows left to right."""
    state = LedgerState()
    accounts = [account_from_name(name, namespace="chain") for name in names]
    for account in accounts:
        state.create_account(account, 10 ** 9)
    for prev, node in zip(accounts, accounts[1:]):
        state.set_trust(node, prev, usd(limit))
    return state, accounts


class TestTrustGraph:
    def test_successors_new_debt(self):
        state, accounts = build_chain(["a", "b"])
        graph = TrustGraph(state, USD)
        edges = list(graph.successors(accounts[0]))
        assert len(edges) == 1
        assert edges[0].payee == accounts[1]
        assert edges[0].capacity == pytest.approx(100.0)

    def test_successors_settle_direction(self):
        state, accounts = build_chain(["a", "b"])
        state.apply_hop(accounts[0], accounts[1], usd(60))
        graph = TrustGraph(state, USD)
        # b can now pay a by settling 60 of debt.
        edges = list(graph.successors(accounts[1]))
        assert edges and edges[0].payee == accounts[0]
        assert edges[0].capacity == pytest.approx(60.0)

    def test_capacity_reflects_live_state(self):
        state, accounts = build_chain(["a", "b"])
        graph = TrustGraph(state, USD)
        assert graph.capacity(accounts[0], accounts[1]) == pytest.approx(100)
        state.apply_hop(accounts[0], accounts[1], usd(30))
        assert graph.capacity(accounts[0], accounts[1]) == pytest.approx(70)

    def test_reachability(self):
        state, accounts = build_chain(["a", "b", "c", "d"])
        graph = TrustGraph(state, USD)
        assert accounts[3] in graph.reachable_within(accounts[0], 3)
        assert accounts[3] not in graph.reachable_within(accounts[0], 2)

    def test_can_relay_respects_noripple(self):
        state, accounts = build_chain(["a", "b", "c"])
        graph = TrustGraph(state, USD)
        assert graph.can_relay(accounts[1])
        state.account(accounts[1]).allows_rippling = False
        assert not graph.can_relay(accounts[1])


class TestShortestPath:
    def test_direct(self):
        state, accounts = build_chain(["a", "b"])
        graph = TrustGraph(state, USD)
        assert shortest_path(graph, accounts[0], accounts[1]) == accounts[:2]

    def test_multi_hop(self):
        state, accounts = build_chain(["a", "b", "c", "d"])
        graph = TrustGraph(state, USD)
        assert shortest_path(graph, accounts[0], accounts[3]) == accounts

    def test_hop_limit(self):
        state, accounts = build_chain(["a", "b", "c", "d", "e"])
        graph = TrustGraph(state, USD)
        assert shortest_path(graph, accounts[0], accounts[4], max_intermediate_hops=2) is None
        assert shortest_path(graph, accounts[0], accounts[4], max_intermediate_hops=3) is not None

    def test_no_path(self):
        state, accounts = build_chain(["a", "b"])
        lonely = account_from_name("lonely", namespace="chain")
        state.create_account(lonely, 10 ** 9)
        graph = TrustGraph(state, USD)
        assert shortest_path(graph, accounts[0], lonely) is None

    def test_residual_blocks_saturated_hop(self):
        state, accounts = build_chain(["a", "b"])
        graph = TrustGraph(state, USD)
        residual = {(accounts[0], accounts[1]): 100.0}
        assert shortest_path(graph, accounts[0], accounts[1], residual=residual) is None

    def test_noripple_node_blocks_transit_but_not_endpoint(self):
        state, accounts = build_chain(["a", "b", "c"])
        state.account(accounts[1]).allows_rippling = False
        graph = TrustGraph(state, USD)
        # b cannot relay a -> c ...
        assert shortest_path(graph, accounts[0], accounts[2]) is None
        # ... but can still be paid directly.
        assert shortest_path(graph, accounts[0], accounts[1]) is not None


class TestPlanPayment:
    def test_single_path_plan(self):
        state, accounts = build_chain(["a", "b", "c"])
        graph = TrustGraph(state, USD)
        plan = plan_payment(graph, accounts[0], accounts[2], 50.0)
        assert plan.is_complete_for(50.0)
        assert plan.parallel_paths == 1
        assert plan.max_intermediate_hops == 1

    def test_bottleneck_respected(self):
        state, accounts = build_chain(["a", "b", "c"], limit=30.0)
        graph = TrustGraph(state, USD)
        plan = plan_payment(graph, accounts[0], accounts[2], 50.0)
        assert not plan.is_complete_for(50.0)
        assert plan.total == pytest.approx(30.0)

    def test_parallel_paths_split(self):
        # Two disjoint 1-intermediate routes of 40 each; 60 needs both.
        state = LedgerState()
        names = ["src", "m1", "m2", "dst"]
        accounts = {n: account_from_name(n, namespace="par") for n in names}
        for account in accounts.values():
            state.create_account(account, 10 ** 9)
        for mid in ("m1", "m2"):
            state.set_trust(accounts[mid], accounts["src"], usd(40))
            state.set_trust(accounts["dst"], accounts[mid], usd(40))
        graph = TrustGraph(state, USD)
        plan = plan_payment(graph, accounts["src"], accounts["dst"], 60.0)
        assert plan.is_complete_for(60.0)
        assert plan.parallel_paths == 2
        assert sorted(plan.amounts, reverse=True) == [pytest.approx(40.0), pytest.approx(20.0)]

    def test_max_parallel_paths_cap(self):
        state = LedgerState()
        src = account_from_name("src", namespace="cap")
        dst = account_from_name("dst", namespace="cap")
        state.create_account(src, 10 ** 9)
        state.create_account(dst, 10 ** 9)
        mids = []
        for i in range(8):
            mid = account_from_name(f"m{i}", namespace="cap")
            state.create_account(mid, 10 ** 9)
            state.set_trust(mid, src, usd(10))
            state.set_trust(dst, mid, usd(10))
            mids.append(mid)
        graph = TrustGraph(state, USD)
        plan = plan_payment(graph, src, dst, 80.0, max_parallel_paths=6)
        assert plan.parallel_paths == 6
        assert plan.total == pytest.approx(60.0)

    def test_bottleneck_helper(self):
        state, accounts = build_chain(["a", "b", "c"], limit=30.0)
        state.apply_hop(accounts[0], accounts[1], usd(10))
        graph = TrustGraph(state, USD)
        assert path_bottleneck(graph, accounts) == pytest.approx(20.0)

    def test_empty_plan_for_unreachable(self):
        state, accounts = build_chain(["a", "b"])
        lonely = account_from_name("x", namespace="chain")
        state.create_account(lonely, 10 ** 9)
        graph = TrustGraph(state, USD)
        plan = plan_payment(graph, accounts[0], lonely, 10.0)
        assert plan.parallel_paths == 0 and plan.total == 0.0
