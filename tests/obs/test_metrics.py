"""The unified metrics registry: recording, absorption, expositions."""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry, prom_name


class TestRecording:
    def test_disabled_records_nothing(self):
        metrics = MetricsRegistry(enabled=False)
        metrics.count("a")
        metrics.gauge("g", 1.5)
        metrics.observe("h", 2.0)
        with metrics.timer("t"):
            pass
        assert metrics.snapshot() == {"counters": {}, "timers": {}}

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry(enabled=True)
        metrics.gauge("depth", 3)
        metrics.gauge("depth", 7)
        assert metrics.snapshot()["gauges"] == {"depth": 7}

    def test_histogram_tracks_count_sum_min_max(self):
        metrics = MetricsRegistry(enabled=True)
        for value in (4.0, 1.0, 9.0):
            metrics.observe("latency", value)
        hist = metrics.snapshot()["histograms"]["latency"]
        assert hist == {"count": 3, "sum": 14.0, "min": 1.0, "max": 9.0}

    def test_snapshot_omits_empty_sections(self):
        metrics = MetricsRegistry(enabled=True)
        metrics.count("only", 2)
        snap = metrics.snapshot()
        assert set(snap) == {"counters", "timers"}


class TestAbsorb:
    def test_absorb_merges_every_metric_family(self):
        parent = MetricsRegistry(enabled=True)
        parent.count("payments", 10)
        parent.add_time("work", 1.0)
        parent.observe("size", 5.0)
        worker = MetricsRegistry(enabled=True)
        worker.count("payments", 4)
        worker.add_time("work", 0.5)
        worker.add_time("work", 0.5)
        worker.observe("size", 11.0)
        worker.gauge("depth", 2)

        parent.absorb(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"] == {"payments": 14}
        assert snap["timers"]["work"]["calls"] == 3
        assert abs(snap["timers"]["work"]["seconds"] - 2.0) < 1e-9
        assert snap["histograms"]["size"] == {
            "count": 2, "sum": 16.0, "min": 5.0, "max": 11.0,
        }
        assert snap["gauges"] == {"depth": 2.0}

    def test_absorb_is_noop_when_disabled(self):
        parent = MetricsRegistry(enabled=False)
        parent.absorb({"counters": {"x": 1}})
        assert parent.snapshot()["counters"] == {}


class TestExpositions:
    def test_prom_name_sanitizes(self):
        assert prom_name("engine.submit", "_total") == "repro_engine_submit_total"
        assert prom_name("a-b c") == "repro_a_b_c"

    def test_prom_exposition_golden(self):
        metrics = MetricsRegistry(enabled=True)
        metrics.count("engine.payments", 12)
        metrics.gauge("pool.depth", 4)
        metrics.add_time("etl.load", 0.25)
        metrics.add_time("etl.load", 0.25)
        metrics.observe("shard.rows", 100.0)
        assert metrics.to_prom() == (
            "# TYPE repro_engine_payments_total counter\n"
            "repro_engine_payments_total 12\n"
            "# TYPE repro_pool_depth gauge\n"
            "repro_pool_depth 4\n"
            "# TYPE repro_etl_load_seconds summary\n"
            "repro_etl_load_seconds_count 2\n"
            "repro_etl_load_seconds_sum 0.5\n"
            "# TYPE repro_shard_rows summary\n"
            "repro_shard_rows_count 1\n"
            "repro_shard_rows_sum 100.0\n"
            "repro_shard_rows_min 100.0\n"
            "repro_shard_rows_max 100.0\n"
        )

    def test_empty_prom_exposition_is_empty(self):
        assert MetricsRegistry(enabled=True).to_prom() == ""

    def test_json_exposition_round_trips(self):
        metrics = MetricsRegistry(enabled=True)
        metrics.count("a", 1)
        parsed = json.loads(metrics.to_json())
        assert parsed["counters"] == {"a": 1}
