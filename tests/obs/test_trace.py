"""The span tracer: nesting, kinds, absorption, deterministic lines."""

from __future__ import annotations

import json

from repro.obs.trace import VOLATILE_KEYS, Tracer


def _shape(tracer):
    """(seq, parent, name, kind) tuples — the deterministic skeleton."""
    return [
        (r["seq"], r["parent"], r["name"], r["kind"]) for r in tracer.spans
    ]


class TestSpans:
    def test_disabled_tracer_allocates_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            with tracer.span("y"):
                pass
        assert tracer.spans == []

    def test_nesting_sets_parents(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", kind="phase"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert _shape(tracer) == [
            (0, None, "outer", "phase"),
            (1, 0, "inner", "detail"),
            (2, 0, "sibling", "detail"),
        ]

    def test_durations_filled_on_exit(self):
        tracer = Tracer(enabled=True)
        with tracer.span("timed"):
            pass
        assert tracer.spans[0]["duration_s"] >= 0.0

    def test_attrs_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", shard=3):
            pass
        assert tracer.spans[0]["attrs"] == {"shard": 3}


class TestTiming:
    def test_wall_clock_is_a_transport_annotation_only(self):
        """``wall_ts`` exists for humans; nothing deterministic reads it."""
        tracer = Tracer(enabled=True)
        with tracer.span("s"):
            pass
        record = tracer.spans[0]
        assert record["wall_ts"] > 0
        assert "wall_ts" in VOLATILE_KEYS
        assert "start_ts" not in record  # the old wall-clock field is gone

    def test_start_offsets_are_monotonic_from_the_tracer_origin(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        offsets = [record["start_s"] for record in tracer.spans]
        assert all(offset >= 0.0 for offset in offsets)
        assert offsets == sorted(offsets)

    def test_reset_restarts_the_origin(self):
        tracer = Tracer(enabled=True)
        with tracer.span("warmup"):
            pass
        tracer.reset()
        with tracer.span("fresh"):
            pass
        # a reset tracer starts its timeline near zero again
        assert tracer.spans[0]["start_s"] < 1.0


class TestAbsorb:
    def test_absorb_reparents_and_resequences(self):
        worker = Tracer(enabled=True)
        with worker.span("shard.work"):
            with worker.span("shard.step"):
                pass
        parent = Tracer(enabled=True)
        with parent.span("compute", kind="phase"):
            parent.absorb(worker.snapshot())
        assert _shape(parent) == [
            (0, None, "compute", "phase"),
            (1, 0, "shard.work", "detail"),
            (2, 1, "shard.step", "detail"),
        ]

    def test_absorb_in_index_order_is_deterministic(self):
        def snap(tag):
            worker = Tracer(enabled=True)
            with worker.span(f"shard.{tag}"):
                pass
            return worker.snapshot()

        first = Tracer(enabled=True)
        second = Tracer(enabled=True)
        snaps = [snap(0), snap(1), snap(2)]
        for tracer in (first, second):
            for snapshot in snaps:
                tracer.absorb(snapshot)
        assert first.lines(strip_timing=True) == second.lines(strip_timing=True)

    def test_absorb_when_disabled_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.absorb([{"seq": 0, "name": "x"}])
        assert tracer.spans == []


class TestRollups:
    def test_rollup_counts_only_requested_kind(self):
        tracer = Tracer(enabled=True)
        with tracer.span("compute", kind="phase"):
            with tracer.span("detailwork"):
                pass
        with tracer.span("render", kind="phase"):
            pass
        with tracer.span("compute", kind="phase"):
            pass
        assert tracer.rollup("phase") == {"compute": 2, "render": 1}
        assert tracer.rollup("detail") == {"detailwork": 1}

    def test_phase_rollup_ignores_worker_detail_spans(self):
        serial = Tracer(enabled=True)
        with serial.span("fig.compute", kind="phase"):
            pass

        parallel = Tracer(enabled=True)
        with parallel.span("fig.compute", kind="phase"):
            worker = Tracer(enabled=True)
            with worker.span("parallel.fig.shard", shard=0):
                pass
            parallel.absorb(worker.snapshot())
        assert serial.rollup("phase") == parallel.rollup("phase")


class TestLines:
    def test_strip_timing_removes_volatile_keys_only(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", kind="phase", n=1):
            pass
        stripped = json.loads(tracer.lines(strip_timing=True)[0])
        full = json.loads(tracer.lines()[0])
        for key in VOLATILE_KEYS:
            assert key not in stripped
            assert key in full
        assert stripped["name"] == "s" and stripped["attrs"] == {"n": 1}

    def test_equivalent_runs_produce_identical_stripped_lines(self):
        def run():
            tracer = Tracer(enabled=True)
            with tracer.span("a", kind="phase"):
                with tracer.span("b", x=2):
                    pass
            return tracer.lines(strip_timing=True)

        assert run() == run()

    def test_write_emits_jsonl_with_sidecar(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("only"):
            pass
        path = tmp_path / "run.trace.jsonl"
        written = tracer.write(str(path))
        assert written == 1
        assert (tmp_path / "run.trace.jsonl.sha256").exists()
        record = json.loads(path.read_text().strip())
        assert record["name"] == "only"
