"""Run manifests: build/write/validate round-trip and the deterministic view."""

from __future__ import annotations

import argparse
import json

import pytest

from repro.obs.manifest import (
    RUN,
    build_manifest,
    deterministic_view,
    load_schema,
    manifest_destination,
    output_entry,
    validate_manifest,
    write_run_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def clean_run_context():
    RUN.reset()
    yield
    RUN.reset()


def _args(**overrides):
    base = dict(
        seed=7, scale=600, payments=1200, archive=None, jobs=None,
        resume=False, quarantine=False,
    )
    base.update(overrides)
    return argparse.Namespace(**base)


def _build(tmp_path, **kwargs):
    out = tmp_path / "fig.txt"
    out.write_text("rendered\n")
    tracer = Tracer(enabled=True)
    with tracer.span("fig.compute", kind="phase"):
        pass
    return build_manifest(
        "fig3",
        kwargs.pop("args", _args()),
        "rendered",
        [output_entry(str(out))],
        started_at=1.0,
        duration_seconds=0.5,
        tracer=tracer,
        metrics=kwargs.pop("metrics", MetricsRegistry(enabled=False)),
        **kwargs,
    )


class TestRoundTrip:
    def test_built_manifest_validates_against_schema(self, tmp_path):
        payload = _build(tmp_path)
        assert validate_manifest(payload) == []

    def test_write_then_load_preserves_payload(self, tmp_path):
        payload = _build(tmp_path)
        destination = manifest_destination(str(tmp_path / "fig.txt"))
        write_run_manifest(destination, payload)
        assert destination.endswith(".manifest.json")
        with open(destination, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded == payload
        assert validate_manifest(loaded) == []

    def test_run_context_annotations_land_in_manifest(self, tmp_path):
        RUN.note(ingest={"read": 10, "quarantined": 1, "reasons": {"bad": 1}})
        RUN.count("shard_resubmits")
        RUN.count("shard_resubmits")
        payload = _build(tmp_path)
        assert payload["ingest"]["read"] == 10
        assert payload["events"] == {"shard_resubmits": 2}
        assert validate_manifest(payload) == []

    def test_plan_annotation_becomes_plan_block(self, tmp_path):
        RUN.note(plan_fingerprint="abc123", shards=4, jobs=2)
        payload = _build(tmp_path)
        assert payload["plan"] == {
            "fingerprint": "abc123", "shards": 4, "jobs": 2,
        }
        assert validate_manifest(payload) == []

    def test_metrics_snapshot_included_when_enabled(self, tmp_path):
        metrics = MetricsRegistry(enabled=True)
        metrics.count("payments", 3)
        payload = _build(tmp_path, metrics=metrics)
        assert payload["metrics"]["counters"] == {"payments": 3}
        assert validate_manifest(payload) == []


class TestOutputEntry:
    def test_hashes_and_sizes_file(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"abc")
        entry = output_entry(str(path))
        assert entry["bytes"] == 3
        assert entry["kind"] == "artifact"
        assert len(entry["sha256"]) == 64
        assert "volatile" not in entry

    def test_volatile_flag(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("{}\n")
        assert output_entry(str(path), kind="trace", volatile=True)[
            "volatile"
        ] is True


class TestDeterministicView:
    def test_strips_strategy_and_timing_fields(self, tmp_path):
        RUN.note(plan_fingerprint="abc", shards=4, jobs=4)
        payload = _build(tmp_path, args=_args(jobs=4, resume=True))
        view = deterministic_view(payload)
        assert "jobs" not in view["invocation"]
        assert "resume" not in view["invocation"]
        assert "timing" not in view
        assert "plan" not in view
        assert "phase_seconds" not in view
        assert "artifact_metrics" not in view
        assert view["spans"] == {"fig.compute": 1}

    def test_serial_and_sharded_manifests_agree(self, tmp_path):
        serial = _build(tmp_path)
        RUN.reset()
        RUN.note(plan_fingerprint="abc", shards=4, jobs=4)
        sharded = _build(tmp_path, args=_args(jobs=4))
        assert deterministic_view(serial) == deterministic_view(sharded)

    def test_volatile_outputs_excluded_from_hashes(self, tmp_path):
        trace = tmp_path / "x.trace.jsonl"
        trace.write_text("volatile\n")
        payload = _build(tmp_path)
        payload["outputs"].append(
            output_entry(str(trace), kind="trace", volatile=True)
        )
        stable = [e["sha256"] for e in payload["outputs"] if not e.get("volatile")]
        assert deterministic_view(payload)["output_sha256s"] == sorted(stable)


class TestValidator:
    def test_schema_loads(self):
        schema = load_schema()
        assert schema["type"] == "object"
        assert "manifest_version" in schema["required"]

    def test_missing_required_key_reported(self, tmp_path):
        payload = _build(tmp_path)
        del payload["artifact"]
        errors = validate_manifest(payload)
        assert any("artifact" in error for error in errors)

    def test_wrong_type_reported(self, tmp_path):
        payload = _build(tmp_path)
        payload["manifest_version"] = "one"
        errors = validate_manifest(payload)
        assert any("manifest_version" in error for error in errors)

    def test_unexpected_key_reported(self, tmp_path):
        payload = _build(tmp_path)
        payload["surprise"] = 1
        errors = validate_manifest(payload)
        assert any("surprise" in error for error in errors)

    def test_negative_minimum_reported(self, tmp_path):
        payload = _build(tmp_path)
        payload["outputs"][0]["bytes"] = -1
        errors = validate_manifest(payload)
        assert any("bytes" in error for error in errors)

    def test_bool_is_not_integer(self, tmp_path):
        payload = _build(tmp_path)
        payload["manifest_version"] = True
        assert validate_manifest(payload)

    def test_non_object_payload_rejected(self):
        assert validate_manifest([]) != []
