"""CLI observability end-to-end: --trace, run manifests, metrics/manifest
subcommands, and the bit-for-bit guarantees the ISSUE pins down."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.cli import main
from repro.obs.manifest import deterministic_view, validate_manifest
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER

SMALL = ["--payments", "1200", "--seed", "5"]


@pytest.fixture(autouse=True)
def obs_disabled():
    """Each test starts and ends with the process-wide registries cold."""
    TRACER.disable()
    TRACER.reset()
    METRICS.disable()
    METRICS.reset()
    yield
    TRACER.disable()
    TRACER.reset()
    METRICS.disable()
    METRICS.reset()


def _sha(path):
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestTraceFlag:
    def test_trace_off_leaves_artifact_bytes_unchanged(self, capsys, tmp_path):
        plain = tmp_path / "plain.txt"
        traced = tmp_path / "traced.txt"
        assert main(["fig4", *SMALL, "--out", str(plain)]) == 0
        assert main(["fig4", *SMALL, "--out", str(traced), "--trace"]) == 0
        capsys.readouterr()
        assert _sha(plain) == _sha(traced)

    def test_trace_auto_path_derives_from_out(self, capsys, tmp_path):
        out = tmp_path / "fig4.txt"
        assert main(["fig4", *SMALL, "--out", str(out), "--trace"]) == 0
        capsys.readouterr()
        trace = tmp_path / "fig4.txt.trace.jsonl"
        assert trace.exists()
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        names = {record["name"] for record in records}
        assert "fig4.compute" in names
        assert "artifact.dataset" in names

    def test_explicit_trace_path_honoured(self, capsys, tmp_path):
        trace = tmp_path / "custom.jsonl"
        assert main(["fig4", *SMALL, "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert trace.exists()
        # No --out: the manifest anchors on the trace file instead.
        assert (tmp_path / "custom.jsonl.manifest.json").exists()

    def test_registries_restored_after_traced_run(self, capsys, tmp_path):
        assert main(["fig4", *SMALL, "--trace",
                     str(tmp_path / "t.jsonl")]) == 0
        capsys.readouterr()
        assert not TRACER.enabled
        assert not METRICS.enabled


class TestRunManifest:
    def test_out_run_emits_valid_manifest(self, capsys, tmp_path):
        out = tmp_path / "fig4.txt"
        assert main(["fig4", *SMALL, "--out", str(out)]) == 0
        capsys.readouterr()
        payload = _load(tmp_path / "fig4.txt.manifest.json")
        assert validate_manifest(payload) == []
        assert payload["artifact"] == "fig4"
        assert payload["invocation"]["seed"] == 5
        assert payload["spans"]["fig4.compute"] == 1
        assert payload["spans"]["fig4.render"] == 1
        assert payload["outputs"][0]["sha256"] == _sha(out)
        assert payload["artifact_metrics"] == {"currencies": 30}

    def test_rendered_sha_matches_stdout(self, capsys, tmp_path):
        out = tmp_path / "fig6.txt"
        assert main(["fig6", *SMALL, "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        payload = _load(tmp_path / "fig6.txt.manifest.json")
        rendered = hashlib.sha256(
            stdout.rstrip("\n").encode("utf-8")
        ).hexdigest()
        assert payload["rendered_sha256"] == rendered

    def test_serial_and_jobs4_agree_on_deterministic_view(
        self, capsys, tmp_path
    ):
        serial_out = tmp_path / "serial.txt"
        sharded_out = tmp_path / "sharded.txt"
        assert main(["fig3", *SMALL, "--out", str(serial_out),
                     "--trace"]) == 0
        assert main(["fig3", *SMALL, "--jobs", "4", "--out",
                     str(sharded_out), "--trace"]) == 0
        capsys.readouterr()
        serial = _load(tmp_path / "serial.txt.manifest.json")
        sharded = _load(tmp_path / "sharded.txt.manifest.json")
        assert serial_out.read_bytes() == sharded_out.read_bytes()
        assert serial["spans"] == sharded["spans"]
        assert serial["plan"] is None
        assert sharded["plan"] is not None and sharded["plan"]["shards"] > 1
        assert deterministic_view(serial) == deterministic_view(sharded)


class TestArtifactSubcommand:
    def test_generic_dispatch_matches_named_subcommand(self, capsys):
        assert main(["fig4", *SMALL]) == 0
        named = capsys.readouterr().out
        assert main(["artifact", "fig4", *SMALL]) == 0
        generic = capsys.readouterr().out
        assert named == generic

    def test_unknown_name_fails_politely(self, capsys):
        assert main(["artifact", "fig99", *SMALL]) == 2
        assert "unknown artifact" in capsys.readouterr().err


class TestMetricsSubcommand:
    # Each test uses a fresh seed: generate_history is lru_cached, and a
    # cache hit would skip the generation-side counters being asserted.
    def test_prom_exposition_after_artifact(self, capsys):
        assert main(["metrics", "--artifact", "fig4",
                     "--payments", "1200", "--seed", "771"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_payments_total counter" in out
        assert "repro_engine_payments_total 1200" in out

    def test_json_exposition(self, capsys):
        assert main(["metrics", "--artifact", "fig4",
                     "--payments", "1200", "--seed", "772",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["engine.payments"] == 1200

    def test_empty_registry_exposes_nothing(self, capsys):
        assert main(["metrics"]) == 0
        assert capsys.readouterr().out == ""


class TestManifestSubcommand:
    def test_valid_manifest_passes(self, capsys, tmp_path):
        out = tmp_path / "fig4.txt"
        assert main(["fig4", *SMALL, "--out", str(out)]) == 0
        capsys.readouterr()
        path = str(tmp_path / "fig4.txt.manifest.json")
        assert main(["manifest", path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_deterministic_flag_prints_view(self, capsys, tmp_path):
        out = tmp_path / "fig4.txt"
        assert main(["fig4", *SMALL, "--out", str(out)]) == 0
        capsys.readouterr()
        path = str(tmp_path / "fig4.txt.manifest.json")
        assert main(["manifest", path, "--deterministic"]) == 0
        view = json.loads(capsys.readouterr().out)
        assert view["artifact"] == "fig4"
        assert "timing" not in view

    def test_invalid_manifest_fails(self, capsys, tmp_path):
        path = tmp_path / "bad.manifest.json"
        path.write_text(json.dumps({"manifest_version": "nope"}))
        assert main(["manifest", str(path)]) == 1
        assert "manifest:" in capsys.readouterr().err

    def test_missing_file_fails(self, capsys, tmp_path):
        assert main(["manifest", str(tmp_path / "absent.json")]) == 2
        assert "manifest:" in capsys.readouterr().err
