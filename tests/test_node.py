"""Tests for the transaction applier and the full rippled-node facade."""

import pytest

from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.apply import ApplyCode, TransactionApplier
from repro.ledger.crypto import KeyPair
from repro.ledger.currency import EUR, USD
from repro.ledger.state import LedgerState
from repro.ledger.transactions import (
    AccountSet,
    OfferCancel,
    OfferCreate,
    Payment,
    TrustSet,
)
from repro.node import RippledNode, default_validators


@pytest.fixture()
def world():
    """State with alice/bob/gateway wired for USD, and alice's keypair."""
    state = LedgerState()
    actors = {}
    for name in ("alice", "bob", "gateway"):
        account = account_from_name(name, namespace="node")
        state.create_account(account, 10 ** 9)
        actors[name] = account
    state.set_trust(actors["alice"], actors["gateway"], Amount.from_value(USD, 1000))
    state.set_trust(actors["bob"], actors["gateway"], Amount.from_value(USD, 1000))
    state.apply_hop(actors["gateway"], actors["alice"], Amount.from_value(USD, 500))
    keys = {name: KeyPair.from_seed(f"node-{name}".encode()) for name in actors}
    return state, actors, keys


def signed_payment(actors, keys, sequence=1, amount=50, sender="alice", dest="bob"):
    tx = Payment(
        account=actors[sender],
        sequence=sequence,
        destination=actors[dest],
        amount=Amount.from_value(USD, amount),
    )
    tx.sign(keys[sender])
    return tx


class TestApplier:
    def test_successful_payment(self, world):
        state, actors, keys = world
        applier = TransactionApplier(state)
        outcome = applier.apply(signed_payment(actors, keys))
        assert outcome.code is ApplyCode.SUCCESS
        assert outcome.fee_claimed == 10
        assert state.iou_balance(actors["bob"], USD).to_float() == pytest.approx(50)

    def test_unsigned_rejected(self, world):
        state, actors, _ = world
        applier = TransactionApplier(state)
        tx = Payment(
            account=actors["alice"], sequence=1,
            destination=actors["bob"], amount=Amount.from_value(USD, 5),
        )
        assert applier.apply(tx).code is ApplyCode.BAD_SIGNATURE

    def test_signature_optional_mode(self, world):
        state, actors, _ = world
        applier = TransactionApplier(state, require_signatures=False)
        tx = Payment(
            account=actors["alice"], sequence=1,
            destination=actors["bob"], amount=Amount.from_value(USD, 5),
        )
        assert applier.apply(tx).code is ApplyCode.SUCCESS

    def test_sequence_enforcement(self, world):
        state, actors, keys = world
        applier = TransactionApplier(state)
        assert applier.apply(signed_payment(actors, keys, sequence=1)).succeeded
        # Replays fail; the future is retryable.
        assert applier.apply(signed_payment(actors, keys, sequence=1)).code is (
            ApplyCode.PAST_SEQUENCE
        )
        assert applier.apply(signed_payment(actors, keys, sequence=5)).code is (
            ApplyCode.FUTURE_SEQUENCE
        )
        assert applier.apply(signed_payment(actors, keys, sequence=2)).succeeded

    def test_tec_claims_fee_and_sequence(self, world):
        state, actors, keys = world
        applier = TransactionApplier(state)
        # 5000 USD exceeds alice's deposit: dry path, but fee is claimed.
        outcome = applier.apply(signed_payment(actors, keys, amount=5000))
        assert outcome.code is ApplyCode.PATH_FAILURE
        assert outcome.code.applied_to_ledger
        assert state.burned_fee_drops == 10
        assert state.account(actors["alice"]).sequence == 2

    def test_unknown_account(self, world):
        state, actors, keys = world
        applier = TransactionApplier(state)
        ghost = account_from_name("ghost", namespace="node")
        tx = Payment(
            account=ghost, sequence=1,
            destination=actors["bob"], amount=Amount.from_value(USD, 5),
        )
        tx.sign(KeyPair.from_seed(b"ghost"))
        assert applier.apply(tx).code is ApplyCode.UNKNOWN_ACCOUNT

    def test_malformed_rejected_without_fee(self, world):
        state, actors, keys = world
        applier = TransactionApplier(state)
        tx = Payment(
            account=actors["alice"], sequence=1,
            destination=actors["alice"],  # to self: malformed
            amount=Amount.from_value(USD, 5),
        )
        tx.sign(keys["alice"])
        assert applier.apply(tx).code is ApplyCode.MALFORMED
        assert state.burned_fee_drops == 0

    def test_trust_set_applies(self, world):
        state, actors, keys = world
        applier = TransactionApplier(state)
        tx = TrustSet(
            account=actors["bob"], sequence=1,
            trustee=actors["gateway"], limit=Amount.from_value(EUR, 700),
        )
        tx.sign(keys["bob"])
        assert applier.apply(tx).succeeded
        assert state.trust_line(actors["bob"], actors["gateway"], EUR) is not None

    def test_offer_lifecycle(self, world):
        state, actors, keys = world
        applier = TransactionApplier(state)
        create = OfferCreate(
            account=actors["gateway"], sequence=1,
            taker_pays=Amount.from_value(USD, 110),
            taker_gets=Amount.from_value(EUR, 100),
        )
        create.sign(keys["gateway"])
        assert applier.apply(create).succeeded
        assert state.book_offers(USD, EUR)
        cancel = OfferCancel(
            account=actors["gateway"], sequence=2, offer_sequence=1
        )
        cancel.sign(keys["gateway"])
        assert applier.apply(cancel).succeeded
        assert not state.book_offers(USD, EUR)

    def test_cancel_missing_offer_is_tec(self, world):
        state, actors, keys = world
        applier = TransactionApplier(state)
        cancel = OfferCancel(account=actors["alice"], sequence=1, offer_sequence=9)
        cancel.sign(keys["alice"])
        assert applier.apply(cancel).code is ApplyCode.NO_EFFECT

    def test_account_set_noop(self, world):
        state, actors, keys = world
        applier = TransactionApplier(state)
        tx = AccountSet(account=actors["alice"], sequence=1, flags=("default-ripple",))
        tx.sign(keys["alice"])
        assert applier.apply(tx).succeeded


class TestRippledNode:
    def build_node(self, world):
        state, actors, keys = world
        return RippledNode(state=state, seed=9), actors, keys

    def test_submit_and_close(self, world):
        node, actors, keys = self.build_node(world)
        tx = signed_payment(actors, keys)
        assert node.submit(tx) is ApplyCode.SUCCESS
        assert node.pool_size == 1
        ledger = node.close_ledger()
        assert ledger is not None and ledger.success_count == 1
        assert node.pool_size == 0
        assert len(node.chain) == 2
        assert node.state.iou_balance(actors["bob"], USD).to_float() == pytest.approx(50)

    def test_close_time_is_the_payment_timestamp(self, world):
        # Signed transactions are immutable; the authoritative timestamp is
        # the sealing page's close time, read back from the chain.
        node, actors, keys = self.build_node(world)
        tx = signed_payment(actors, keys)
        node.submit(tx)
        ledger = node.close_ledger()
        pairs = [
            (page, recorded)
            for page, recorded in node.chain.iter_transactions()
            if recorded.tx_hash == tx.tx_hash
        ]
        assert len(pairs) == 1
        page, recorded = pairs[0]
        assert page.close_time == ledger.page.close_time
        assert recorded.verify_signature()

    def test_bad_submissions_rejected_at_the_door(self, world):
        node, actors, keys = self.build_node(world)
        unsigned = Payment(
            account=actors["alice"], sequence=1,
            destination=actors["bob"], amount=Amount.from_value(USD, 5),
        )
        assert node.submit(unsigned) is ApplyCode.BAD_SIGNATURE
        assert node.pool_size == 0
        assert node.rejected

    def test_canonical_order_is_deterministic(self, world):
        node, actors, keys = self.build_node(world)
        txs = [signed_payment(actors, keys, sequence=i, amount=1 + i) for i in (1, 2, 3)]
        for tx in reversed(txs):  # submit out of order
            node.submit(tx)
        ledger = node.close_ledger()
        hashes = [item.transaction.tx_hash for item in ledger.applied]
        assert hashes == sorted(hashes)

    def test_out_of_order_sequences_eventually_apply(self, world):
        node, actors, keys = self.build_node(world)
        # Canonical (hash) order may try seq 2 before seq 1; the retryable
        # transaction stays pooled and applies at the next close.
        first = signed_payment(actors, keys, sequence=1, amount=10)
        second = signed_payment(actors, keys, sequence=2, amount=20)
        node.submit(second)
        node.submit(first)
        node.run(3)
        assert node.state.iou_balance(actors["bob"], USD).to_float() == pytest.approx(30)

    def test_tec_transactions_occupy_ledger_slots(self, world):
        node, actors, keys = self.build_node(world)
        node.submit(signed_payment(actors, keys, sequence=1, amount=5000))  # dry
        ledger = node.close_ledger()
        assert ledger.success_count == 0
        assert len(ledger.page) == 1  # recorded despite failing
        assert node.state.burned_fee_drops > 0

    def test_transaction_history_accumulates(self, world):
        node, actors, keys = self.build_node(world)
        node.submit(signed_payment(actors, keys, sequence=1))
        node.close_ledger()
        node.submit(signed_payment(actors, keys, sequence=2))
        node.close_ledger()
        assert len(node.transaction_history()) == 2

    def test_apply_outcome_lookup(self, world):
        node, actors, keys = self.build_node(world)
        tx = signed_payment(actors, keys)
        node.submit(tx)
        node.close_ledger()
        outcome = node.apply_outcome_of(tx.tx_hash)
        assert outcome is not None and outcome.succeeded
        assert node.apply_outcome_of(b"\x00" * 32) is None

    def test_default_validators_healthy(self):
        validators = default_validators(7)
        assert len(validators) == 7
        assert all(v.unl == validators[0].unl for v in validators)

    def test_empty_pool_closes_empty_ledger(self, world):
        node, _, _ = self.build_node(world)
        ledger = node.close_ledger()
        assert ledger is not None
        assert len(ledger.page) == 0
