"""Tests for the command-line interface."""

import glob
import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {
            action.dest: action
            for action in parser._subparsers._group_actions  # noqa: SLF001
        }
        choices = actions["command"].choices
        for command in (
            "figures", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "table2", "generate", "attack",
        ):
            assert command in choices

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


SMALL = ["--payments", "1200", "--seed", "5"]


class TestCommands:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table2" in out

    def test_fig3(self, capsys):
        assert main(["fig3", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "<Am; Tsc; C; D>" in out

    def test_fig4(self, capsys):
        assert main(["fig4", *SMALL, "--top", "5"]) == 0
        assert "XRP" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6", *SMALL]) == 0
        assert "hops" in capsys.readouterr().out

    def test_fig2_single_period(self, capsys):
        assert main(["fig2", "--period", "dec2015", "--scale", "4000"]) == 0
        out = capsys.readouterr().out
        assert "December 2015" in out and "R1" in out

    def test_table2(self, capsys):
        assert main(["table2", *SMALL]) == 0
        assert "Cross-currency" in capsys.readouterr().out

    def test_generate_and_reload(self, capsys, tmp_path):
        out_path = str(tmp_path / "dump.jsonl.gz")
        assert main(["generate", *SMALL, "--out", out_path]) == 0
        assert "wrote 1200 payments" in capsys.readouterr().out
        # fig3 can consume the archive instead of regenerating.
        assert main(["fig3", "--archive", out_path]) == 0
        assert "information gain" in capsys.readouterr().out

    def test_attack(self, capsys):
        code = main(["attack", *SMALL])
        out = capsys.readouterr().out
        assert "observed:" in out
        assert code in (0, 1)  # identified, or honestly ambiguous


class TestDurabilityFlags:
    def test_out_writes_manifest_sidecar(self, capsys, tmp_path):
        out_path = str(tmp_path / "fig6.txt")
        assert main(["fig6", *SMALL, "--out", out_path]) == 0
        capsys.readouterr()
        manifest = json.load(open(out_path + ".sha256"))
        assert manifest["format"] == "repro-artifact/1"
        assert manifest["bytes"] == os.path.getsize(out_path)

    def test_resume_journals_and_reloads(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESUME_DIR", str(tmp_path / "resume"))
        cold = main(["fig3", *SMALL, "--jobs", "1"])
        cold_out = capsys.readouterr().out
        assert cold == 0

        assert main(["fig3", *SMALL, "--jobs", "2", "--resume"]) == 0
        first_out = capsys.readouterr().out
        checkpoints = glob.glob(
            str(tmp_path / "resume" / "*" / "shard-*.pkl")
        )
        assert len(checkpoints) == 2  # one per shard, sealed on disk

        assert main(["fig3", *SMALL, "--jobs", "2", "--resume"]) == 0
        second_out = capsys.readouterr().out
        # Resumed output is bit-for-bit the cold serial output.
        assert first_out == cold_out
        assert second_out == cold_out

    def test_quarantine_flag_survives_bad_lines(self, capsys, tmp_path):
        archive = str(tmp_path / "dump.jsonl")
        assert main(["generate", *SMALL, "--out", archive]) == 0
        capsys.readouterr()
        lines = open(archive).readlines()
        lines[40] = "garbage line\n"
        with open(archive, "w") as handle:
            handle.writelines(lines)
        os.remove(archive + ".sha256")
        # Strict (default): typed failure, exit code 2.
        assert main(["fig4", "--archive", archive]) == 2
        err = capsys.readouterr().err
        assert "line 41" in err
        # Lenient: quarantined, analysis proceeds.
        assert main(["fig4", "--archive", archive, "--quarantine"]) == 0
        captured = capsys.readouterr()
        assert "quarantined 1" in captured.err
        assert os.path.exists(archive + ".quarantine.jsonl")

    def test_strict_and_quarantine_conflict(self, capsys, tmp_path):
        archive = str(tmp_path / "dump.jsonl")
        assert main(["generate", *SMALL, "--out", archive]) == 0
        capsys.readouterr()
        assert main(["fig4", "--archive", archive, "--quarantine",
                     "--strict-ingest"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestExtensionCommands:
    def test_defenses(self, capsys):
        assert main(["defenses", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "per-payment-wallets" in out

    def test_rewards(self, capsys):
        assert main(["rewards", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "equilibrium validators" in out


class TestRemainingCommands:
    def test_fig5(self, capsys):
        assert main(["fig5", *SMALL]) == 0
        assert "survival" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7", *SMALL, "--top", "10"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "offer concentration" in out

    def test_fig2_all_periods(self, capsys):
        assert main(["fig2", "--scale", "8000"]) == 0
        out = capsys.readouterr().out
        assert "December 2015" in out and "November 2016" in out
