"""Stream resilience: window contract, reconnect replay, deduplication."""

from repro.consensus.proposals import Validation
from repro.stream.collector import StreamCollector
from repro.stream.events import StreamEvent
from repro.stream.server import StreamServer


def event(received_at: int, validator: str = "v", sequence: int = 1,
          page: bytes = b"\x01" * 32, sign_time: int = 0) -> StreamEvent:
    return StreamEvent(
        validation=Validation(
            validator=validator,
            sequence=sequence,
            page_hash=page,
            sign_time=sign_time,
        ),
        received_at=received_at,
    )


class TestWindowContract:
    """Regression: the collection window is closed on BOTH ends."""

    def test_bounds_are_inclusive(self):
        collector = StreamCollector(window_start=10, window_end=20)
        for t in (9, 10, 11, 19, 20, 21):
            collector.record(event(t))
        assert [e.received_at for e in collector.events] == [10, 11, 19, 20]

    def test_single_instant_window_is_not_empty(self):
        # start == end == T accepts events received exactly at T; a
        # half-open reading would make this window silently empty.
        collector = StreamCollector(window_start=15, window_end=15)
        collector.record(event(14))
        collector.record(event(15))
        collector.record(event(16))
        assert [e.received_at for e in collector.events] == [15]

    def test_unbounded_sides(self):
        collector = StreamCollector(window_start=None, window_end=10)
        collector.record(event(-1000))
        collector.record(event(10))
        collector.record(event(11))
        assert len(collector) == 2


class TestDedupe:
    def test_exact_replays_dropped_when_enabled(self):
        collector = StreamCollector(dedupe=True)
        collector.record(event(5))
        collector.record(event(6))  # same validation, later receive time
        assert len(collector) == 1
        assert collector.duplicates_dropped == 1

    def test_distinct_sign_times_are_kept(self):
        # A validator legitimately re-signing later is NOT a duplicate.
        collector = StreamCollector(dedupe=True)
        collector.record(event(5, sign_time=0))
        collector.record(event(6, sign_time=3))
        assert len(collector) == 2

    def test_multiplicity_preserved_by_default(self):
        collector = StreamCollector()
        collector.record(event(5))
        collector.record(event(6))
        assert collector.total_counts() == {"v": 2}


class FakeChaos:
    """Minimal chaos stub: connection down for sign_time in [down, up)."""

    def __init__(self, down: int, up: int):
        self.down, self.up = down, up
        self.buffered = self.replayed = self.duplicates = 0

    def stream_disconnected(self, t: int) -> bool:
        return self.down <= t < self.up

    def note_stream_buffered(self, count: int = 1) -> None:
        self.buffered += count

    def note_stream_replayed(self, count: int) -> None:
        self.replayed += count

    def note_duplicate_dropped(self, count: int = 1) -> None:
        self.duplicates += count


class TestReconnectReplay:
    def make_validation(self, i: int) -> Validation:
        return Validation(
            validator="v", sequence=i, page_hash=bytes([i]) * 32, sign_time=i
        )

    def test_buffer_and_replay_with_overlap(self):
        chaos = FakeChaos(down=3, up=6)
        server = StreamServer(mean_delay=0.0, loss_rate=0.0, seed=0,
                              chaos=chaos, replay_overlap=2)
        collector = StreamCollector(dedupe=True, chaos=chaos)
        server.subscribe(collector)

        for i in range(10):
            server.on_validation(self.make_validation(i))

        # Three validations were held while the connection was down, then
        # replayed together with the 2-event pre-disconnect overlap.
        assert chaos.buffered == 3
        assert server.reconnects == 1
        assert server.replayed == 5  # 2 overlap + 3 buffered
        # At-least-once upstream, exactly-once downstream: the dedup
        # collector ends with each validation exactly once.
        assert len(collector) == 10
        assert collector.duplicates_dropped == 2

    def test_flush_drains_events_still_buffered_at_end(self):
        chaos = FakeChaos(down=7, up=100)
        server = StreamServer(mean_delay=0.0, loss_rate=0.0, seed=0,
                              chaos=chaos)
        collector = StreamCollector(dedupe=True, chaos=chaos)
        server.subscribe(collector)
        for i in range(10):
            server.on_validation(self.make_validation(i))
        assert len(collector) == 7  # events 7..9 still buffered
        server.flush()
        assert len(collector) == 10
