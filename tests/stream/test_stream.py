"""Tests for the validation stream: server, collector, periods."""

import pytest

from repro.consensus.engine import ConsensusEngine
from repro.consensus.faults import active
from repro.consensus.proposals import Validation
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator
from repro.errors import StreamError
from repro.stream.collector import StreamCollector
from repro.stream.events import StreamEvent
from repro.stream.periods import (
    DEFAULT_SCALE,
    PERIODS,
    PERSISTENT_ACTIVE,
    RIPPLE_LABS,
    ROUNDS_PER_TWO_WEEKS,
    period,
    rounds_for_scale,
)
from repro.stream.server import StreamServer


def validation(name="v", sequence=1, time=100, network_id=0):
    return Validation(
        validator=name,
        sequence=sequence,
        page_hash=bytes([sequence % 256]) * 32,
        sign_time=time,
        network_id=network_id,
    )


class TestServer:
    def test_relays_with_delay(self):
        server = StreamServer(mean_delay=2.0, loss_rate=0.0, seed=1)
        events = []
        server.subscribe(events.append)
        server.on_validation(validation(time=100))
        assert len(events) == 1
        assert events[0].received_at >= 100

    def test_loss(self):
        server = StreamServer(loss_rate=1.0, seed=1)
        events = []
        server.subscribe(events.append)
        for _ in range(10):
            server.on_validation(validation())
        assert events == []
        assert server.dropped == 10

    def test_attach_to_engine(self):
        names = [f"v{i}" for i in range(5)]
        unl = UNL.of(names)
        validators = [Validator(n, unl, active(availability=1.0)) for n in names]
        engine = ConsensusEngine(validators, master_unl=unl, seed=0)
        server = StreamServer(loss_rate=0.0, seed=0)
        collector = StreamCollector()
        server.subscribe(collector)
        server.attach(engine)
        report = engine.run(20)
        assert len(collector) == sum(s.total_pages for s in report.stats.values())

    def test_requires_subscribers(self):
        with pytest.raises(StreamError):
            StreamServer().require_subscribers()


class TestCollector:
    def fill(self, collector, count=5, name="v"):
        for i in range(count):
            collector.record(StreamEvent(validation(name, sequence=i), received_at=i * 10))

    def test_total_counts(self):
        collector = StreamCollector()
        self.fill(collector, 5, "a")
        self.fill(collector, 3, "b")
        assert collector.total_counts() == {"a": 5, "b": 3}
        assert collector.validators_seen() == ["a", "b"]

    def test_window_filtering(self):
        collector = StreamCollector(window_start=15, window_end=35)
        self.fill(collector, 6)
        # received_at values 0,10,20,30,40,50 -> only 20 and 30 inside.
        assert len(collector) == 2

    def test_valid_counts_against_chain(self):
        collector = StreamCollector()
        self.fill(collector, 5, "a")
        main_chain = [bytes([1]) * 32, bytes([3]) * 32]
        assert collector.valid_counts(main_chain) == {"a": 2}

    def test_pages_by_validator_multiplicity(self):
        collector = StreamCollector()
        collector.record(StreamEvent(validation("a", 1), 0))
        collector.record(StreamEvent(validation("a", 1), 1))
        assert len(collector.pages_by_validator()["a"]) == 2

    def test_require_data(self):
        with pytest.raises(StreamError):
            StreamCollector().require_data()

    def test_event_record_form(self):
        event = StreamEvent(validation("v", 2, 100), received_at=103)
        record = event.to_record()
        assert record["validator"] == "v"
        assert record["received_at"] == 103
        assert record["signed"] is False


class TestPeriods:
    def test_three_periods_defined(self):
        assert [spec.key for spec in PERIODS] == ["dec2015", "jul2016", "nov2016"]

    def test_lookup(self):
        assert period("jul2016").key == "jul2016"
        with pytest.raises(KeyError):
            period("feb2020")

    def test_observed_counts_match_paper(self):
        # Paper: 29 others in Dec'15, 28 in Jul'16, 34 in Nov'16.
        assert period("dec2015").observed_count() == 29
        assert period("jul2016").observed_count() == 28
        assert period("nov2016").observed_count() == 34

    def test_persistent_actives_in_every_roster(self):
        for spec in PERIODS:
            for name in PERSISTENT_ACTIVE:
                assert name in spec.roster, (spec.key, name)

    def test_total_validators_seen_about_70(self):
        names = set()
        for spec in PERIODS:
            names.update(spec.validator_names())
        assert 60 <= len(names) <= 85  # paper: 70

    def test_rosters_build(self):
        for spec in PERIODS:
            validators = spec.build_validators(rounds=1000)
            assert len(validators) == len(RIPPLE_LABS) + spec.observed_count()
            labs = [v for v in validators if v.is_ripple_labs]
            assert len(labs) == 5

    def test_testnet_validators_share_fork_unl(self):
        validators = period("jul2016").build_validators(rounds=1000)
        testnet = [v for v in validators if v.name.startswith("testnet")]
        assert len(testnet) == 5
        assert all(v.network_id == 1 for v in testnet)
        assert all(set(v.unl.members) == {t.name for t in testnet} for v in testnet)

    def test_rounds_for_scale(self):
        assert rounds_for_scale(1.0) == ROUNDS_PER_TWO_WEEKS
        assert rounds_for_scale(DEFAULT_SCALE) == ROUNDS_PER_TWO_WEEKS // 48
