"""Bounded dedupe memory: horizon eviction and window-close teardown.

A season-long collection must not hold every signature it ever saw just
to drop reconnect replays — replays only redeliver *recent* events, so
the dedupe table may forget anything a full horizon behind stream time.
"""

import pytest

from repro.consensus.proposals import Validation
from repro.obs.metrics import METRICS
from repro.stream.collector import StreamCollector
from repro.stream.events import StreamEvent


@pytest.fixture(autouse=True)
def clean_metrics():
    METRICS.reset()
    METRICS.enable()
    yield
    METRICS.disable()
    METRICS.reset()


def event(name="v", sequence=1, received_at=0):
    return StreamEvent(
        validation=Validation(
            validator=name,
            sequence=sequence,
            page_hash=bytes([sequence % 256]) * 32,
            sign_time=received_at,
        ),
        received_at=received_at,
    )


class TestHorizonEviction:
    def test_old_keys_are_evicted(self):
        collector = StreamCollector(dedupe=True, dedupe_horizon=10)
        for i in range(50):
            collector.record(event(sequence=i, received_at=i))
        # The sweep is amortized: the table holds at most ~2 horizons.
        assert len(collector._seen) <= 21
        assert collector.dedupe_evicted >= 29
        assert len(collector.events) == 50
        assert METRICS.counters["stream.dedupe.evicted"] == (
            collector.dedupe_evicted
        )

    def test_recent_replays_still_dropped(self):
        collector = StreamCollector(dedupe=True, dedupe_horizon=10)
        for i in range(30):
            collector.record(event(sequence=i, received_at=i))
        # A reconnect replays the recent buffer — the same validations
        # (same sign_time), just redelivered later.
        for i in range(25, 30):
            collector.record(StreamEvent(
                validation=Validation(
                    validator="v", sequence=i,
                    page_hash=bytes([i % 256]) * 32, sign_time=i,
                ),
                received_at=30,
            ))
        assert collector.duplicates_dropped == 5
        assert len(collector.events) == 30

    def test_evicted_key_readmits_the_event(self):
        # Forgetting an ancient key means an (implausible) ancient replay
        # would be re-recorded — the documented trade for bounded memory.
        collector = StreamCollector(dedupe=True, dedupe_horizon=5)
        collector.record(event(sequence=1, received_at=0))
        for i in range(2, 30):
            collector.record(event(sequence=i, received_at=i))
        assert len(collector._seen) < 29
        collector.record(event(sequence=1, received_at=0))
        assert collector.duplicates_dropped == 0
        assert len(collector.events) == 30

    def test_duplicate_sighting_refreshes_the_clock(self):
        collector = StreamCollector(dedupe=True, dedupe_horizon=10)
        collector.record(event(sequence=1, received_at=0))
        # Keep re-seeing the same key as time advances; it must survive
        # sweeps because its last sighting is always recent.
        for now in range(1, 40):
            replay = StreamEvent(
                validation=Validation(
                    validator="v", sequence=1,
                    page_hash=bytes([1]) * 32, sign_time=0,
                ),
                received_at=now,
            )
            collector.record(replay)
            collector.record(event(sequence=now + 1, received_at=now))
        assert collector.duplicates_dropped == 39

    def test_no_horizon_means_no_eviction(self):
        collector = StreamCollector(dedupe=True)
        for i in range(100):
            collector.record(event(sequence=i, received_at=i))
        assert len(collector._seen) == 100
        assert collector.dedupe_evicted == 0


class TestWindowCloseTeardown:
    def test_table_dropped_past_window_end(self):
        collector = StreamCollector(
            window_end=20, dedupe=True, dedupe_horizon=100
        )
        for i in range(15):
            collector.record(event(sequence=i, received_at=i))
        assert len(collector._seen) == 15
        collector.record(event(sequence=99, received_at=21))  # past the end
        assert len(collector._seen) == 0
        assert collector.dedupe_evicted == 15
        assert len(collector.events) == 15
        assert METRICS.counters["stream.dedupe.evicted"] == 15

    def test_dedupe_off_records_nothing_in_seen(self):
        collector = StreamCollector()
        for i in range(10):
            collector.record(event(sequence=i, received_at=i))
        assert len(collector._seen) == 0
