"""Cross-module integration tests: the paper's pipelines end to end."""

import numpy as np
import pytest

from repro.analysis import (
    TransactionDataset,
    currency_ranking,
    figure5_curves,
    path_structure,
    table2,
    top_intermediaries,
)
from repro.consensus.engine import ConsensusEngine
from repro.consensus.faults import active, forked, lagging
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator
from repro.core import Deanonymizer, Observation, SideChannelAttack
from repro.core.resolution import FeatureList
from repro.core.robustness import run_period
from repro.stream.collector import StreamCollector
from repro.stream.periods import period
from repro.stream.server import StreamServer


class TestMeasurementPipeline:
    """Engine -> stream server -> collector -> ledger cross-reference,
    exactly the paper's Section IV apparatus, on a tiny roster."""

    def test_stream_counts_match_engine_counts(self):
        names = [f"v{i}" for i in range(6)]
        unl = UNL.of(names)
        validators = [Validator(n, unl, active(availability=1.0)) for n in names]
        validators.append(Validator("fork", UNL.of(["fork"]), forked(network_id=1)))
        validators.append(Validator("lag", unl, lagging()))
        engine = ConsensusEngine(validators, master_unl=unl, seed=1)
        server = StreamServer(loss_rate=0.0, seed=2)
        collector = StreamCollector()
        server.subscribe(collector)
        server.attach(engine)
        report = engine.run(60)

        totals = collector.total_counts()
        valids = collector.valid_counts(report.main_chain_hashes)
        for name in names:
            assert totals[name] == report.stats[name].total_pages
            assert valids.get(name, 0) == report.stats[name].valid_pages
        assert valids.get("fork", 0) == 0

    def test_lossy_stream_undercounts(self):
        names = [f"v{i}" for i in range(5)]
        unl = UNL.of(names)
        validators = [Validator(n, unl, active(availability=1.0)) for n in names]
        engine = ConsensusEngine(validators, master_unl=unl, seed=1)
        server = StreamServer(loss_rate=0.3, seed=2)
        collector = StreamCollector()
        server.subscribe(collector)
        server.attach(engine)
        report = engine.run(40)
        assert len(collector) < sum(s.total_pages for s in report.stats.values())


class TestDeanonPipeline:
    """Synthetic history -> dataset -> IG -> attack -> dossier."""

    def test_end_to_end_attack_on_generated_history(self, history, dataset):
        attack = SideChannelAttack(dataset, history.state)
        rows = np.flatnonzero(dataset.kinds == "cck")
        row = int(rows[5])
        observation = Observation(
            destination=dataset.accounts[int(dataset.destination_ids[row])],
            currency="CCK",
            amount=float(dataset.amounts[row]),
            timestamp=int(dataset.timestamps[row]),
        )
        result = attack.run(observation)
        truth = dataset.accounts[int(dataset.sender_ids[row])]
        assert result.succeeded and result.sender == truth
        # The dossier exposes the victim's whole financial life.
        assert result.profile.payments_sent >= 1
        assert result.profile.balances

    def test_ig_depends_on_history_size(self, history):
        """More history -> more collisions -> lower low-resolution IG."""
        from repro.core.resolution import (
            AmountResolution,
            FeatureList,
            TimeResolution,
        )

        low = FeatureList(AmountResolution.LOW, TimeResolution.DAYS, False, False)
        full = TransactionDataset.from_records(history.records)
        half = TransactionDataset.from_records(
            history.records[: len(history.records) // 4]
        )
        ig_full = Deanonymizer(full).information_gain(low)
        ig_half = Deanonymizer(half).information_gain(low)
        assert ig_full.fraction <= ig_half.fraction + 0.02


class TestAppendixPipelines:
    def test_all_analyses_run_on_one_history(self, history, dataset):
        assert currency_ranking(dataset)[0].code == "XRP"
        assert path_structure(dataset).multi_hop_payments > 0
        assert figure5_curves(dataset)["Global"].samples == len(dataset)
        assert len(top_intermediaries(history, 10)) == 10
        result = table2(history)
        assert result.total.submitted > 0

    def test_fig2_period_pipeline(self):
        report = run_period(period("dec2015"), scale=1 / 2400, seed=3)
        assert report.observations
        assert report.availability > 0.5
        labs_valid = sum(
            obs.valid_pages for obs in report.observations if obs.is_ripple_labs
        )
        assert labs_valid > 0


class TestLedgerConsensusIntegration:
    """Transactions flow through consensus into a real page chain."""

    def test_agreed_transactions_seal_into_chain(self):
        from repro.ledger.accounts import account_from_name
        from repro.ledger.amounts import Amount
        from repro.ledger.pages import LedgerChain
        from repro.ledger.transactions import Payment
        from repro.ledger.currency import USD

        sender = account_from_name("int-sender")
        receiver = account_from_name("int-receiver")
        transactions = {}

        def tx_supplier(round_index, rng):
            batch = [
                Payment(
                    account=sender,
                    sequence=round_index * 10 + i,
                    destination=receiver,
                    amount=Amount.from_value(USD, 1 + i),
                )
                for i in range(3)
            ]
            for tx in batch:
                transactions[tx.tx_hash] = tx
            return frozenset(tx.tx_hash for tx in batch)

        names = [f"v{i}" for i in range(5)]
        unl = UNL.of(names)
        validators = [Validator(n, unl, active(availability=1.0)) for n in names]
        engine = ConsensusEngine(validators, master_unl=unl, seed=7, keep_outcomes=True)
        report = engine.run(10, tx_supplier=tx_supplier)

        chain = LedgerChain.with_genesis()
        close_time = 0
        for outcome in report.outcomes:
            if not outcome.validated:
                continue
            close_time += 5
            agreed = [transactions[h] for h in sorted(outcome.validated_tx_set)]
            page = chain.seal(agreed, close_time=close_time)
            assert page.tx_set_id is not None
        assert chain.transaction_count() >= 3 * report.rounds_validated * 0.8
