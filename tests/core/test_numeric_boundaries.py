"""Boundary-value regression pins for the PR 3 numeric-correctness fixes.

Amount coarsening used ``np.round`` (half-to-even), so amounts exactly on
a bucket edge split inconsistently between buckets: 0.5 and 1.5 both
rounded to even neighbours (0 and 2) while 2.5 joined 2.  These tests pin
the explicit half-up rule on every path that buckets an amount — the
scalar API, the vectorized fingerprint path, the currency-blind rescale,
and the attacker-query observation — and the explicit rejection of
pre-epoch timestamps.  They fail on the pre-fix code.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.dataset import TransactionDataset
from repro.core.deanonymizer import Deanonymizer
from repro.core.resolution import (
    AmountResolution,
    FeatureList,
    TimeResolution,
    coarsen_timestamps,
    granularity_exponent,
    half_up,
    round_amount,
    round_amounts_vector,
)
from repro.errors import AnalysisError
from repro.ledger.currency import BTC, EUR, USD, XRP
from repro.synthetic.config import EconomyConfig
from repro.synthetic.generator import generate_history


class TestHalfUpRounding:
    def test_half_up_scalar_rule(self):
        assert half_up(0.5) == 1.0
        assert half_up(1.5) == 2.0
        assert half_up(2.5) == 3.0
        assert half_up(2.4999) == 2.0

    def test_boundary_amounts_bucket_consistently(self):
        # EUR max granularity is 10^1: 5, 15, 25 all sit on bucket edges.
        # Banker's rounding sent 5 -> 0 and 25 -> 20 but 15 -> 20; half-up
        # sends every edge amount to the upper bucket.
        exponent = granularity_exponent(EUR, AmountResolution.MAX)
        assert exponent == 1
        assert round_amount(5.0, EUR, AmountResolution.MAX) == 10.0
        assert round_amount(15.0, EUR, AmountResolution.MAX) == 20.0
        assert round_amount(25.0, EUR, AmountResolution.MAX) == 30.0

    def test_vector_path_matches_scalar_on_boundaries(self):
        amounts = np.array([5.0, 15.0, 25.0, 35.0, 14.9])
        exponents = np.full(5, granularity_exponent(EUR, AmountResolution.MAX))
        buckets = round_amounts_vector(amounts, exponents, AmountResolution.MAX)
        assert buckets.tolist() == [1, 2, 3, 4, 1]
        for value, bucket in zip(amounts, buckets):
            assert round_amount(value, EUR, AmountResolution.MAX) == pytest.approx(
                bucket * 10.0
            )

    def test_sub_unit_granularity_boundaries(self):
        # BTC max granularity is 10^-3; 0.0005 sits on the 0.000/0.001 edge.
        assert round_amount(0.0005, BTC, AmountResolution.MAX) == pytest.approx(0.001)
        assert round_amount(0.0015, BTC, AmountResolution.MAX) == pytest.approx(0.002)

    def test_weak_currency_boundaries(self):
        # XRP max granularity is 10^5: 50_000 is on the edge, 150_000 too.
        assert round_amount(50_000.0, XRP, AmountResolution.MAX) == 100_000.0
        assert round_amount(150_000.0, XRP, AmountResolution.MAX) == 200_000.0


class TestTimestampContract:
    def test_negative_timestamps_rejected(self):
        with pytest.raises(ValueError, match="pre-epoch"):
            coarsen_timestamps(np.array([60, -1, 120]), TimeResolution.MINUTES)

    def test_non_negative_floor_bucketing_unchanged(self):
        stamps = np.array([0, 59, 60, 61, 3599, 3600])
        assert coarsen_timestamps(stamps, TimeResolution.MINUTES).tolist() == [
            0, 0, 60, 60, 3540, 3600,
        ]

    def test_empty_input_passes_through(self):
        out = coarsen_timestamps(np.empty(0, dtype=np.int64), TimeResolution.HOURS)
        assert out.size == 0


@pytest.fixture(scope="module")
def small_dataset():
    history = generate_history(
        EconomyConfig(seed=11, n_payments=600, n_users=40, n_offers=2400)
    )
    return TransactionDataset.from_records(history.records)


class TestQueryPathConsistency:
    def test_negative_observation_rejected(self, small_dataset):
        deanon = Deanonymizer(small_dataset)
        feature_list = FeatureList(
            AmountResolution.NONE, TimeResolution.MINUTES, True, True
        )
        with pytest.raises(AnalysisError, match="pre-epoch"):
            deanon.candidate_rows(
                feature_list,
                currency=small_dataset.currencies[0],
                timestamp=-5,
                destination=small_dataset.accounts[
                    int(small_dataset.destination_ids[0])
                ],
            )

    def test_boundary_observation_matches_its_own_payment(self, small_dataset):
        # Every payment, observed at its exact recorded features, must fall
        # in the same bucket the dataset side put it in — including rows
        # whose amount sits exactly on a bucket edge.
        deanon = Deanonymizer(small_dataset)
        feature_list = FeatureList(
            AmountResolution.LOW, TimeResolution.DAYS, True, True
        )
        for row in range(0, len(small_dataset), 97):
            rows = deanon.candidate_rows(
                feature_list,
                amount=float(small_dataset.amounts[row]),
                currency=small_dataset.currency_code(
                    int(small_dataset.currency_ids[row])
                ),
                timestamp=int(small_dataset.timestamps[row]),
                destination=small_dataset.accounts[
                    int(small_dataset.destination_ids[row])
                ],
            )
            assert row in rows
