"""Tests for the consensus-robustness study (Fig. 2 pipeline)."""

import pytest

from repro.analysis.validators import classify, figure2_rows, summarize
from repro.core.robustness import RobustnessStudy, run_period
from repro.stream.periods import PERIODS, period

#: Small scale so the three periods run in a few seconds.
SCALE = 1.0 / 1200.0


@pytest.fixture(scope="module")
def study():
    return RobustnessStudy.run(PERIODS, scale=SCALE, seed=11)


@pytest.fixture(scope="module")
def dec_report(study):
    return study.reports[0]


class TestPeriodRun:
    def test_all_validators_observed(self, dec_report):
        spec = period("dec2015")
        assert len(dec_report.observations) == 5 + spec.observed_count()

    def test_ripple_labs_dominant(self, dec_report):
        labs = [obs for obs in dec_report.observations if obs.is_ripple_labs]
        others = [obs for obs in dec_report.observations if not obs.is_ripple_labs]
        assert len(labs) == 5
        best_other = max(obs.valid_pages for obs in others)
        assert min(obs.valid_pages for obs in labs) >= best_other * 0.5

    def test_availability_high(self, dec_report):
        assert dec_report.availability > 0.7

    def test_dec2015_three_active_non_ripple(self, dec_report):
        active = [
            name
            for name in dec_report.active_validators()
            if not dec_report.observation(name).is_ripple_labs
        ]
        assert len(active) == 3

    def test_dec2015_21_zero_valid(self, dec_report):
        assert len(dec_report.zero_valid_validators()) == pytest.approx(21, abs=2)

    def test_scaling_helper(self, dec_report):
        assert dec_report.scaled(10) == round(10 / SCALE)


class TestAcrossPeriods:
    def test_jul2016_more_active_than_dec2015(self, study):
        counts = dict(
            (key, active) for key, active, _ in study.active_counts()
        )
        assert counts["jul2016"] > counts["dec2015"]
        assert counts["jul2016"] >= counts["nov2016"]

    def test_active_counts_match_paper_shape(self, study):
        counts = dict((key, active) for key, active, _ in study.active_counts())
        # Paper: 3, 10, 8.
        assert counts["dec2015"] == pytest.approx(3, abs=1)
        assert counts["jul2016"] == pytest.approx(10, abs=2)
        assert counts["nov2016"] == pytest.approx(8, abs=2)

    def test_testnet_zero_valid_in_2016(self, study):
        for report in study.reports[1:]:
            testnet = [
                obs
                for obs in report.observations
                if obs.name.startswith("testnet")
            ]
            assert len(testnet) == 5
            assert all(obs.valid_pages == 0 for obs in testnet)
            assert all(obs.total_pages > 0 for obs in testnet)

    def test_freewallet_collapse(self, study):
        jul = study.reports[1]
        nov = study.reports[2]
        jul_count = jul.observation("freewallet1.net").total_pages
        nov_count = nov.observation("freewallet1.net").total_pages
        assert nov_count < jul_count * 0.35

    def test_persistent_actives(self, study):
        persistent = study.persistent_active()
        assert set(persistent) >= {"R1", "R2", "R3", "R4", "R5"}
        assert 8 <= len(persistent) <= 10  # paper: 9

    def test_validators_seen_total(self, study):
        assert 60 <= study.validators_seen_total() <= 85  # paper: 70

    def test_takeover_exposure_concentrated(self, study):
        exposure = study.takeover_exposure("dec2015")
        # A handful of validators carries the protocol.
        assert exposure["top5"] > 0.5
        assert exposure["top9"] > 0.85


class TestClassification:
    def test_classes_partition(self, dec_report):
        classes = classify(dec_report)
        names = sum((members for members in classes.values()), [])
        assert sorted(names) == sorted(obs.name for obs in dec_report.observations)

    def test_summary(self, dec_report):
        summary = summarize(dec_report)
        assert summary.key == "dec2015"
        assert summary.observed_non_ripple == 29
        assert summary.active_non_ripple == 3

    def test_figure2_rows_order(self, dec_report):
        rows = figure2_rows(dec_report)
        assert [name for name, _, _ in rows[:5]] == ["R1", "R2", "R3", "R4", "R5"]
        assert len(rows) == len(dec_report.observations)
