"""Tests for wallet-linking heuristics and de-anonymization defenses."""

import numpy as np
import pytest

from repro.core.clustering import (
    activation_clusters,
    activation_edges,
    behavioural_clusters,
    behavioural_profiles,
    expand_dossier,
)
from repro.core.defenses import (
    amount_padding,
    evaluate_defense,
    per_payment_wallets,
    settlement_batching,
    standard_defense_suite,
)
from repro.core.deanonymizer import Deanonymizer
from repro.core.resolution import FeatureList
from repro.errors import AnalysisError


class TestActivationClustering:
    def test_edges_are_first_xrp_payment(self, history):
        edges = activation_edges(history.records)
        seen = set()
        for edge in edges:
            assert edge.account not in seen
            seen.add(edge.account)

    def test_clusters_group_by_funder(self, history):
        clusters = activation_clusters(history.records, min_size=2)
        assert clusters  # heavy XRP senders activate many receivers
        for funder, accounts in clusters:
            assert len(accounts) >= 2
            assert funder not in accounts

    def test_clusters_sorted_descending(self, history):
        clusters = activation_clusters(history.records, min_size=2)
        sizes = [len(accounts) for _, accounts in clusters]
        assert sizes == sorted(sizes, reverse=True)


class TestBehaviouralLinking:
    def test_profiles_need_minimum_history(self, dataset):
        profiles = behavioural_profiles(dataset, min_payments=5)
        counts = np.bincount(dataset.sender_ids)
        eligible = int((counts >= 5).sum())
        assert len(profiles) == eligible

    def test_self_similarity_is_one(self, dataset):
        profiles = behavioural_profiles(dataset, min_payments=5)
        assert profiles[0].similarity(profiles[0]) == pytest.approx(1.0)

    def test_similarity_symmetric(self, dataset):
        profiles = behavioural_profiles(dataset, min_payments=5)
        a, b = profiles[0], profiles[1]
        assert a.similarity(b) == pytest.approx(b.similarity(a))

    def test_high_threshold_fewer_clusters(self, dataset):
        loose = behavioural_clusters(dataset, threshold=0.2, min_payments=8)
        strict = behavioural_clusters(dataset, threshold=0.9, min_payments=8)
        loose_members = sum(len(c) for c in loose)
        strict_members = sum(len(c) for c in strict)
        assert strict_members <= loose_members

    def test_expand_dossier_includes_identity(self, dataset, history):
        account = dataset.accounts[int(dataset.sender_ids[0])]
        linked = expand_dossier(dataset, account, history.records, threshold=0.8)
        assert account in linked


class TestDefenses:
    def test_amount_padding_rounds_up(self, dataset):
        padded = amount_padding(dataset)
        assert (padded.amounts >= dataset.amounts - 1e-9).all()
        # Few distinct values remain per decade.
        assert len(np.unique(np.round(np.log10(padded.amounts), 6))) < len(
            np.unique(np.round(np.log10(np.maximum(dataset.amounts, 1e-9)), 6))
        )

    def test_padding_grid_must_be_positive(self, dataset):
        with pytest.raises(AnalysisError):
            amount_padding(dataset, decades=0)

    def test_batching_delays_never_advance(self, dataset):
        batched = settlement_batching(dataset, window_seconds=600)
        assert (batched.timestamps >= dataset.timestamps).all()
        assert (batched.timestamps % 600 == 0).all()

    def test_batching_reduces_timestamp_ig(self, dataset):
        before = Deanonymizer(dataset).information_gain(FeatureList())
        batched = settlement_batching(dataset, window_seconds=3600)
        after = Deanonymizer(batched).information_gain(FeatureList())
        assert after.identified <= before.identified

    def test_fresh_wallets_have_single_payment_each(self, dataset):
        fresh = per_payment_wallets(dataset)
        counts = np.bincount(fresh.sender_ids, minlength=len(fresh.accounts))
        assert counts[fresh.sender_ids].max() == 1

    def test_fresh_wallets_destroy_history_linkage(self, dataset):
        report = evaluate_defense(
            dataset, "per-payment-wallets", per_payment_wallets
        )
        # The payment is still matched (IG unchanged or higher)...
        label = FeatureList().label()
        assert report.ig_after[label] >= report.ig_before[label] - 1.0
        # ...but an identified wallet exposes no other payments.
        assert report.costs["history_exposure_after"] == 0.0
        assert report.costs["history_exposure_before"] > 0.0
        # And the bootstrapping cost is what the paper predicts: enormous.
        assert report.costs["fresh_wallets_needed"] == len(dataset)
        assert report.costs["trust_lines_to_bootstrap"] > 0

    def test_padding_has_overpayment_cost(self, dataset):
        report = evaluate_defense(dataset, "amount-padding", amount_padding)
        assert report.costs["mean_overpayment_fraction"] > 0

    def test_batching_has_latency_cost(self, dataset):
        report = evaluate_defense(
            dataset, "settlement-batching", settlement_batching
        )
        assert report.costs["mean_settlement_delay_seconds"] > 0
        # Batching to 15 minutes costs minutes of latency, versus the
        # paper's 5-10 second settlement promise.
        assert report.costs["mean_settlement_delay_seconds"] < 900

    def test_standard_suite_runs(self, dataset):
        reports = standard_defense_suite(dataset)
        assert [r.name for r in reports] == [
            "amount-padding",
            "settlement-batching",
            "per-payment-wallets",
        ]
        for report in reports:
            assert report.ig_before and report.ig_after
