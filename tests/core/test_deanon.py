"""Tests for the de-anonymization core: resolutions, fingerprints, IG,
the side-channel attack, and financial profiling."""

import numpy as np
import pytest

from repro.analysis.dataset import TransactionDataset
from repro.core.attack import Observation, SideChannelAttack
from repro.core.deanonymizer import Deanonymizer
from repro.core.fingerprint import (
    build_fingerprints,
    unique_fingerprint_mask,
    unique_sender_mask,
)
from repro.core.history import net_worth_eur, profile_account
from repro.core.resolution import (
    FIGURE3_FEATURE_LISTS,
    AmountResolution,
    FeatureList,
    TimeResolution,
    coarsen_timestamps,
    granularity_exponent,
    round_amount,
)
from repro.errors import AnalysisError
from repro.ledger.currency import BTC, EUR, USD, XRP


class TestResolutions:
    def test_table1_exponents(self):
        assert granularity_exponent(BTC, AmountResolution.MAX) == -3
        assert granularity_exponent(BTC, AmountResolution.AVERAGE) == -2
        assert granularity_exponent(BTC, AmountResolution.LOW) == -1
        assert granularity_exponent(EUR, AmountResolution.MAX) == 1
        assert granularity_exponent(EUR, AmountResolution.AVERAGE) == 2
        assert granularity_exponent(EUR, AmountResolution.LOW) == 3
        assert granularity_exponent(XRP, AmountResolution.MAX) == 5
        assert granularity_exponent(XRP, AmountResolution.LOW) == 7

    def test_high_aliases_max(self):
        assert granularity_exponent(EUR, AmountResolution.HIGH) == 1

    def test_none_drops_feature(self):
        assert granularity_exponent(EUR, AmountResolution.NONE) is None
        assert TimeResolution.NONE.bucket_seconds() is None

    def test_round_amount_examples(self):
        # The paper's EUR example: max rounds to tens.
        assert round_amount(163.0, EUR, AmountResolution.MAX) == 160.0
        assert round_amount(163.0, EUR, AmountResolution.AVERAGE) == 200.0
        assert round_amount(163.0, EUR, AmountResolution.LOW) == 0.0
        assert round_amount(0.00123, BTC, AmountResolution.MAX) == pytest.approx(0.001)

    def test_timestamp_coarsening_example(self):
        # Paper: 2015-08-24 15:41:03 -> 2015-08-24 00:00:00 at day level.
        from repro.ledger.transactions import from_ripple_time, to_ripple_time
        import datetime as dt

        t = to_ripple_time(dt.datetime(2015, 8, 24, 15, 41, 3, tzinfo=dt.timezone.utc))
        day = coarsen_timestamps(np.array([t]), TimeResolution.DAYS)[0]
        restored = from_ripple_time(int(day))
        assert (restored.hour, restored.minute, restored.second) == (0, 0, 0)
        assert restored.date() == dt.date(2015, 8, 24)

    def test_minute_and_hour_buckets(self):
        ts = np.array([3661])
        assert coarsen_timestamps(ts, TimeResolution.MINUTES)[0] == 3660
        assert coarsen_timestamps(ts, TimeResolution.HOURS)[0] == 3600
        assert coarsen_timestamps(ts, TimeResolution.SECONDS)[0] == 3661

    def test_labels(self):
        assert FeatureList().label() == "<Am; Tsc; C; D>"
        assert FIGURE3_FEATURE_LISTS[-1].label() == "<Al; Tdy; -; ->"

    def test_figure3_has_ten_rows(self):
        assert len(FIGURE3_FEATURE_LISTS) == 10


class TestFingerprints:
    def test_empty_feature_list_rejected(self, dataset):
        empty = FeatureList(
            AmountResolution.NONE, TimeResolution.NONE, False, False
        )
        with pytest.raises(AnalysisError):
            build_fingerprints(dataset, empty)

    def test_column_counts(self, dataset):
        full = build_fingerprints(dataset, FeatureList())
        assert full.columns.shape == (len(dataset), 4)
        partial = build_fingerprints(
            dataset, FeatureList(AmountResolution.NONE, TimeResolution.SECONDS, True, False)
        )
        assert partial.columns.shape == (len(dataset), 2)

    def test_unique_mask_consistency(self, dataset):
        fingerprints = build_fingerprints(dataset, FeatureList())
        strict = unique_fingerprint_mask(fingerprints)
        sender = unique_sender_mask(fingerprints, dataset.sender_ids)
        # Strict uniqueness implies sender identification.
        assert (strict <= sender).all()

    def test_identical_rows_share_group(self, dataset):
        fingerprints = build_fingerprints(dataset, FeatureList())
        groups = fingerprints.group_inverse()
        assert len(groups) == len(dataset)


class TestInformationGain:
    @pytest.fixture(scope="class")
    def deanonymizer(self, dataset):
        return Deanonymizer(dataset)

    def test_full_resolution_nearly_total(self, deanonymizer):
        ig = deanonymizer.information_gain(FeatureList())
        assert ig.percent > 97.0  # paper: 99.83 %

    def test_dropping_currency_harmless(self, deanonymizer):
        no_currency = deanonymizer.information_gain(
            FeatureList(AmountResolution.MAX, TimeResolution.SECONDS, False, True)
        )
        full = deanonymizer.information_gain(FeatureList())
        assert abs(no_currency.percent - full.percent) < 2.0

    def test_dropping_destination_mild(self, deanonymizer):
        no_dest = deanonymizer.information_gain(
            FeatureList(AmountResolution.MAX, TimeResolution.SECONDS, True, False)
        )
        full = deanonymizer.information_gain(FeatureList())
        assert no_dest.percent <= full.percent
        assert no_dest.percent > 80.0  # paper: 93.78 %

    def test_timestamp_most_informative(self, deanonymizer):
        # Paper: removing T hurts far more than removing A.
        no_amount = deanonymizer.information_gain(
            FeatureList(AmountResolution.NONE, TimeResolution.SECONDS, True, True)
        )
        no_time = deanonymizer.information_gain(
            FeatureList(AmountResolution.MAX, TimeResolution.NONE, True, True)
        )
        assert no_time.percent < no_amount.percent
        assert no_time.percent < 60.0  # paper: 48.84 %

    def test_coarsening_monotone(self, deanonymizer):
        lists = [
            FeatureList(AmountResolution.MAX, TimeResolution.SECONDS, True, True),
            FeatureList(AmountResolution.HIGH, TimeResolution.MINUTES, True, True),
            FeatureList(AmountResolution.AVERAGE, TimeResolution.HOURS, True, True),
            FeatureList(AmountResolution.LOW, TimeResolution.DAYS, True, True),
        ]
        gains = [deanonymizer.information_gain(fl).percent for fl in lists]
        assert all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))

    def test_lowest_resolution_among_smallest(self, deanonymizer):
        # The paper's smallest IG is <Al; Tdy; -; -> (1.28 %); at our scale
        # it competes with <Am; -; -; -> for last place, so assert it is
        # one of the two weakest lists and far below full resolution.
        gains = sorted(g.percent for g in deanonymizer.figure3())
        lowest = deanonymizer.information_gain(FIGURE3_FEATURE_LISTS[-1])
        assert lowest.percent <= gains[1] + 1e-9
        assert lowest.percent < 35.0

    def test_strict_vs_sender_mode(self, deanonymizer):
        fl = FIGURE3_FEATURE_LISTS[-1]
        strict = deanonymizer.information_gain(fl, strict=True)
        sender = deanonymizer.information_gain(fl, strict=False)
        assert sender.identified >= strict.identified

    def test_figure3_order(self, deanonymizer):
        results = deanonymizer.figure3()
        assert len(results) == 10
        assert results[0].feature_list == FIGURE3_FEATURE_LISTS[0]


class TestAttack:
    @pytest.fixture(scope="class")
    def attack(self, dataset, history):
        return SideChannelAttack(dataset, history.state)

    def observation_for(self, dataset, row):
        return Observation(
            destination=dataset.accounts[int(dataset.destination_ids[row])],
            currency=dataset.currency_code(int(dataset.currency_ids[row])),
            amount=float(dataset.amounts[row]),
            timestamp=int(dataset.timestamps[row]),
        )

    def test_latte_attack_identifies_sender(self, attack, dataset):
        rows = np.flatnonzero(dataset.kinds == "fiat")
        hits = 0
        for row in rows[:40]:
            result = attack.run(self.observation_for(dataset, int(row)))
            truth = dataset.accounts[int(dataset.sender_ids[int(row)])]
            if result.succeeded and result.sender == truth:
                hits += 1
        assert hits >= 36  # ~the 99.8 % of the paper

    def test_attack_builds_dossier(self, attack, dataset):
        rows = np.flatnonzero(dataset.kinds == "fiat")
        result = attack.run(self.observation_for(dataset, int(rows[0])))
        assert result.succeeded
        profile = result.profile
        assert profile is not None
        assert profile.payments_sent >= 1
        assert profile.balances  # live balances from the public state

    def test_missing_required_field_raises(self, attack):
        with pytest.raises(AnalysisError):
            attack.run(Observation(amount=5.0))  # needs currency + more

    def test_unknown_destination_yields_no_candidates(self, attack):
        from repro.ledger.accounts import account_from_name

        observation = Observation(
            destination=account_from_name("never-seen"),
            currency="USD",
            amount=10.0,
            timestamp=0,
        )
        result = attack.run(observation)
        assert not result.succeeded and result.candidates == []

    def test_success_rate_close_to_ig(self, attack, dataset):
        fl = FeatureList()
        rows = list(np.random.default_rng(0).choice(len(dataset), 60, replace=False))
        rate = attack.success_rate(fl, sample_rows=[int(r) for r in rows])
        ig = Deanonymizer(dataset).information_gain(fl, strict=False)
        assert rate == pytest.approx(ig.fraction, abs=0.12)


class TestFinancialProfile:
    def test_profile_totals(self, dataset, history):
        sender = dataset.accounts[int(dataset.sender_ids[0])]
        profile = profile_account(sender, dataset, history.state)
        sent_rows = dataset.payments_by_sender(sender)
        assert profile.payments_sent == int(sent_rows.sum())
        assert profile.total_spent_eur >= 0

    def test_monthly_income_buckets(self, dataset, history):
        # Pick a popular destination to guarantee income.
        dest_id = int(np.bincount(dataset.destination_ids).argmax())
        dest = dataset.accounts[dest_id]
        profile = profile_account(dest, dataset, history.state)
        assert profile.payments_received > 0
        assert profile.monthly_income_eur
        assert profile.average_monthly_income_eur > 0

    def test_top_merchants_sorted(self, dataset):
        sender_id = int(np.bincount(dataset.sender_ids).argmax())
        sender = dataset.accounts[sender_id]
        profile = profile_account(sender, dataset)
        counts = [count for _, count in profile.top_merchants]
        assert counts == sorted(counts, reverse=True)

    def test_trusted_parties_from_state(self, dataset, history):
        user = history.cast.users[0].account
        profile = profile_account(user, dataset, history.state)
        assert profile.trusted_parties  # everyone trusts at least a hub

    def test_net_worth(self, dataset, history):
        user = history.cast.users[0].account
        profile = profile_account(user, dataset, history.state)
        assert isinstance(net_worth_eur(profile), float)

    def test_unknown_account_without_state_raises(self, dataset):
        from repro.ledger.accounts import account_from_name

        with pytest.raises(AnalysisError):
            profile_account(account_from_name("ghost-profile"), dataset)
