"""Engine tests: shard plans, the worker pool, retries, and fallbacks.

The crash/retry tests tell workers apart from the parent by pid: a shard
carries the parent's pid, and the shard function misbehaves only when it
finds itself in a different process.  That way the engine's last-resort
"compute it in the parent" path runs the very same function safely.
"""

from __future__ import annotations

import argparse
import os

import pytest

from repro.node import RetryPolicy
from repro.parallel.engine import (
    DISABLE_ENV,
    effective_jobs,
    map_shards,
    run_compute,
)
from repro.parallel.sharding import shard_ranges

#: Fast policy for the failure tests — real sleeps stay ~1 ms.
FAST_POLICY = RetryPolicy(
    max_retries=2, base_backoff=1.0, multiplier=1.0, max_backoff=1.0, jitter=0.0
)


class TestShardRanges:
    @pytest.mark.parametrize("n,n_shards", [
        (1, 1), (7, 1), (7, 3), (8, 4), (100, 7), (3, 8), (4096, 16),
    ])
    def test_partition_covers_range_exactly(self, n, n_shards):
        ranges = shard_ranges(n, n_shards)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start  # contiguous, no gap, no overlap

    @pytest.mark.parametrize("n,n_shards", [(7, 3), (100, 7), (4096, 16)])
    def test_sizes_differ_by_at_most_one(self, n, n_shards):
        sizes = [stop - start for start, stop in shard_ranges(n, n_shards)]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)  # larger shards first

    def test_never_more_shards_than_records(self):
        assert len(shard_ranges(3, 8)) == 3
        assert all(stop - start == 1 for start, stop in shard_ranges(3, 8))

    def test_degenerate_inputs_yield_no_shards(self):
        assert shard_ranges(0, 4) == []
        assert shard_ranges(10, 0) == []
        assert shard_ranges(-1, 4) == []

    def test_plan_is_deterministic(self):
        assert shard_ranges(1234, 7) == shard_ranges(1234, 7)


class TestEffectiveJobs:
    def test_defaults_to_serial(self):
        assert effective_jobs() == 1
        assert effective_jobs(argparse.Namespace()) == 1
        assert effective_jobs(argparse.Namespace(jobs=None)) == 1

    def test_reads_args_or_explicit_jobs(self):
        assert effective_jobs(argparse.Namespace(jobs=4)) == 4
        assert effective_jobs(jobs=3) == 3
        assert effective_jobs(jobs=0) == 1
        assert effective_jobs(jobs=-2) == 1

    def test_kill_switch_forces_serial(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        assert effective_jobs(jobs=8) == 1
        monkeypatch.setenv(DISABLE_ENV, "0")
        assert effective_jobs(jobs=8) == 8


# Shard functions must live at module level so workers unpickle them by
# reference.


def _square(value):
    return value * value


def _fail_until_marked(shard):
    """Raise on the first attempt; a marker file makes retries succeed."""
    value, marker = shard
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("tried\n")
        raise ValueError("first attempt always fails")
    return value * value


def _fail_in_workers(shard):
    """Raise in any worker process; compute only in the parent."""
    value, parent_pid = shard
    if os.getpid() != parent_pid:
        raise ValueError("worker refuses")
    return value * value


def _crash_in_workers(shard):
    """Kill any worker process outright; compute only in the parent."""
    value, parent_pid = shard
    if os.getpid() != parent_pid:
        os._exit(13)
    return value * value


def _hang_in_workers(shard):
    """Hang (for test purposes, 60 s) in workers; instant in the parent."""
    import time

    value, parent_pid = shard
    if os.getpid() != parent_pid:
        time.sleep(60.0)
    return value * value


def _hang_once(shard):
    """Hang in a worker until a marker exists; drop the marker first."""
    import time

    value, marker, parent_pid = shard
    if os.getpid() != parent_pid and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("hung\n")
        time.sleep(60.0)
    return value * value


class TestMapShards:
    def test_results_come_back_in_shard_order(self):
        values = list(range(11))
        assert map_shards("t", _square, values, 4) == [v * v for v in values]

    def test_empty_shard_list(self):
        assert map_shards("t", _square, [], 4) == []

    def test_failed_shard_is_resubmitted(self, tmp_path):
        shards = [(v, str(tmp_path / f"marker-{v}")) for v in range(3)]
        results = map_shards("t", _fail_until_marked, shards, 2, FAST_POLICY)
        assert results == [0, 1, 4]

    def test_persistent_failure_falls_back_to_parent(self):
        shards = [(v, os.getpid()) for v in range(3)]
        results = map_shards("t", _fail_in_workers, shards, 2, FAST_POLICY)
        assert results == [0, 1, 4]

    def test_worker_crash_falls_back_to_parent(self):
        # os._exit kills the worker mid-task: the pool breaks, is rebuilt
        # for the retries, and the shards ultimately compute in the parent.
        shards = [(v, os.getpid()) for v in range(2)]
        results = map_shards("t", _crash_in_workers, shards, 2, FAST_POLICY)
        assert results == [0, 1]

    def test_genuine_bug_propagates(self):
        # A function that fails everywhere (marker path is unwritable) must
        # surface its exception from the parent fallback, not vanish.
        shards = [(1, "/nonexistent-dir/marker")]
        with pytest.raises((ValueError, OSError)):
            map_shards("t", _fail_until_marked, shards, 2, FAST_POLICY)


class TestShardWatchdog:
    def test_env_parsing(self, monkeypatch):
        from repro.parallel.engine import SHARD_TIMEOUT_ENV, shard_timeout

        monkeypatch.delenv(SHARD_TIMEOUT_ENV, raising=False)
        assert shard_timeout() is None
        monkeypatch.setenv(SHARD_TIMEOUT_ENV, "2.5")
        assert shard_timeout() == 2.5
        monkeypatch.setenv(SHARD_TIMEOUT_ENV, "0")
        assert shard_timeout() is None
        monkeypatch.setenv(SHARD_TIMEOUT_ENV, "banana")
        assert shard_timeout() is None

    def test_hung_worker_falls_back_to_parent(self):
        # Workers hang 60 s; a 0.5 s watchdog must cancel them, exhaust the
        # retry ladder, and compute in the parent — total well under 60 s.
        shards = [(v, os.getpid()) for v in range(2)]
        policy = RetryPolicy(max_retries=0, base_backoff=1.0, multiplier=1.0,
                             max_backoff=1.0, jitter=0.0)
        results = map_shards("t", _hang_in_workers, shards, 2, policy,
                             timeout=0.5)
        assert results == [0, 1]

    def test_hung_worker_recovers_on_retry(self, tmp_path):
        # The shard hangs on its first worker attempt only: the watchdog
        # fires once, the resubmit succeeds in a fresh worker.
        shards = [(v, str(tmp_path / f"hang-{v}"), os.getpid())
                  for v in range(2)]
        results = map_shards("t", _hang_once, shards, 2, FAST_POLICY,
                             timeout=1.0)
        assert results == [0, 1]

    def test_env_var_drives_map_shards(self, monkeypatch):
        from repro.parallel.engine import SHARD_TIMEOUT_ENV

        monkeypatch.setenv(SHARD_TIMEOUT_ENV, "0.5")
        policy = RetryPolicy(max_retries=0, base_backoff=1.0, multiplier=1.0,
                             max_backoff=1.0, jitter=0.0)
        shards = [(v, os.getpid()) for v in range(2)]
        results = map_shards("t", _hang_in_workers, shards, 2, policy)
        assert results == [0, 1]

    def test_no_timeout_means_no_watchdog_overhead(self):
        values = list(range(8))
        assert map_shards("t", _square, values, 4, FAST_POLICY,
                          timeout=None) == [v * v for v in values]


class _FakeArtifact:
    """Minimal duck-typed artifact for run_compute routing tests."""

    name = "fake"

    def __init__(self, sharded):
        self.sharded = sharded
        self.compute_calls = 0

    def compute(self, _args):
        self.compute_calls += 1
        return "serial"


class _Contract:
    def __init__(self):
        self.prepare = lambda args: list(range(10))
        self.shards = lambda items, jobs: [
            items[start:stop]
            for start, stop in shard_ranges(len(items), jobs)
        ]
        self.compute_shard = sum
        self.merge = lambda partials, items: sum(partials)


class TestRunCompute:
    def test_serial_when_no_contract(self):
        fake = _FakeArtifact(sharded=None)
        args = argparse.Namespace(jobs=4)
        assert run_compute(fake, args) == "serial"
        assert fake.compute_calls == 1

    def test_serial_when_one_job(self):
        fake = _FakeArtifact(sharded=_Contract())
        assert run_compute(fake, argparse.Namespace(jobs=1)) == "serial"
        assert run_compute(fake, argparse.Namespace(jobs=None)) == "serial"
        assert fake.compute_calls == 2

    def test_kill_switch_forces_serial(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        fake = _FakeArtifact(sharded=_Contract())
        assert run_compute(fake, argparse.Namespace(jobs=4)) == "serial"
        assert fake.compute_calls == 1

    def test_sharded_path_merges_partials(self):
        fake = _FakeArtifact(sharded=_Contract())
        assert run_compute(fake, argparse.Namespace(jobs=3)) == sum(range(10))
        assert fake.compute_calls == 0

    def test_single_shard_skips_the_pool(self):
        fake = _FakeArtifact(sharded=_Contract())
        fake.sharded.shards = lambda items, jobs: [items]
        assert run_compute(fake, argparse.Namespace(jobs=4)) == sum(range(10))
