"""Shared-memory shard protocol: round-trip fidelity and lifecycle.

Three promises under test:

* a :class:`ShardDescriptor` materialized in any process reconstructs
  exactly the rows ``slice_rows`` would have produced — for *every*
  contiguous ``[start, stop)`` range (Hypothesis draws the cuts);
* segments are never leaked: the owner unlinks on release, and a
  ``kill -9`` orphan is reclaimed by the next run's stale sweep;
* the warm worker pool actually persists — the second ``acquire`` with
  the same shape returns the same executor, no respawn.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.dataset import NUMERIC_COLUMNS
from repro.parallel import pool
from repro.parallel.shm import (
    SHM_DIR,
    ShardDescriptor,
    publish,
    release_shards,
    shared_shards,
    sweep_stale_segments,
)

needs_shm = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR), reason="no POSIX shared memory filesystem"
)


@pytest.fixture(scope="module")
def published(dataset):
    """The session dataset, published once into shared memory."""
    segment = publish(dataset)
    yield dataset, segment
    segment.close()


#: Settings for properties whose examples each rebuild numpy views over
#: the published segment: cheap per example, fixture reuse is intended.
shm_property = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@needs_shm
@shm_property
@given(cut_a=st.integers(0, 4_000), cut_b=st.integers(0, 4_000))
def test_descriptor_roundtrips_any_slice(published, cut_a, cut_b):
    dataset, segment = published
    start, stop = sorted((min(cut_a, len(dataset)), min(cut_b, len(dataset))))
    expected = dataset.slice_rows(start, stop)
    shard = segment.descriptor(start, stop).materialize()

    assert len(shard) == stop - start == len(expected)
    for name, _dtype in NUMERIC_COLUMNS:
        ours, theirs = getattr(shard, name), getattr(expected, name)
        assert ours.dtype == theirs.dtype
        assert np.array_equal(ours, theirs), name
        assert not ours.flags.writeable  # read-only views, by contract
    # The decoded string kinds agree too (codes + vocab round-trip).
    assert list(shard.kinds) == list(expected.kinds)
    assert shard.currencies == expected.currencies
    # The account table is global: same length, same IDs where sampled.
    assert len(shard.accounts) == len(dataset.accounts)
    for index in {0, len(dataset.accounts) // 2, len(dataset.accounts) - 1}:
        assert shard.accounts[index] == dataset.accounts[index]


@needs_shm
def test_descriptor_pickles_small_regardless_of_rows(published):
    # The whole point: a shard travels as an address, not a payload.  The
    # pickled slice of the same rows costs tens of kilobytes and grows
    # with the dataset; the descriptor stays a few hundred bytes.
    dataset, segment = published
    descriptor = segment.descriptor(0, len(dataset))
    assert len(pickle.dumps(descriptor)) < 2_000


@needs_shm
def test_shared_shards_ladder_and_release(dataset):
    # Single-shard plans never publish: the parent computes in process.
    [only] = shared_shards(dataset, 1)
    assert not isinstance(only, ShardDescriptor)
    assert len(only) == len(dataset)

    shards = shared_shards(dataset, 4)
    assert all(isinstance(shard, ShardDescriptor) for shard in shards)
    assert sum(len(shard) for shard in shards) == len(dataset)
    path = os.path.join(SHM_DIR, shards[0].segment)
    assert os.path.exists(path)
    release_shards(shards)
    assert not os.path.exists(path)
    release_shards(shards)  # idempotent


@needs_shm
def test_kill9_orphan_is_swept():
    # A child publishes a segment, detaches it from its resource tracker
    # (as a kill -9 of the whole tree would), then dies by SIGKILL — no
    # cleanup handler runs.  The next sweep must reclaim the orphan.
    code = textwrap.dedent(
        """
        import os, sys, time
        from multiprocessing import resource_tracker, shared_memory

        name = f"repro-shm-{os.getpid()}-orphan"
        shm = shared_memory.SharedMemory(name=name, create=True, size=64)
        resource_tracker.unregister(shm._name, "shared_memory")
        print(name, flush=True)
        time.sleep(60)
        """
    )
    child = subprocess.Popen(
        [sys.executable, "-c", code], stdout=subprocess.PIPE, text=True
    )
    try:
        name = child.stdout.readline().strip()
        path = os.path.join(SHM_DIR, name)
        assert os.path.exists(path)
        # While the owner lives, the sweep must leave the segment alone.
        assert name not in sweep_stale_segments()
        assert os.path.exists(path)
    finally:
        child.kill()
        child.wait()
    assert name in sweep_stale_segments()
    assert not os.path.exists(path)


def test_warm_pool_persists_and_reshapes():
    context = multiprocessing.get_context("fork")
    pool.shutdown()
    assert not pool.warm_pool_alive()

    first = pool.acquire(2, context)
    pool.release(first, 2, context)
    assert pool.warm_pool_alive()

    # Same shape: the exact executor comes back, workers and all.
    again = pool.acquire(2, context)
    assert again is first
    pool.release(again, 2, context)

    # Different worker count: not reusable, replaced by a fresh pool.
    reshaped = pool.acquire(3, context)
    assert reshaped is not first
    pool.discard(reshaped)
    assert not pool.warm_pool_alive()
    pool.shutdown()  # idempotent


def test_kind_codes_compat(dataset):
    # Satellite contract: kinds live as int8 codes + vocab, while the
    # historical string-array view stays available as a property.
    assert dataset.kind_codes.dtype == np.int8
    assert len(dataset.kind_vocab) <= 127
    decoded = dataset.kinds
    assert decoded.dtype == object
    assert set(decoded) == set(dataset.kind_vocab)
    window = dataset.slice_rows(10, 200)
    assert window.kind_vocab == dataset.kind_vocab
    assert list(window.kinds) == list(decoded[10:200])
