"""Golden equivalence: ``--jobs 4`` output is byte-identical to serial.

This is the engine's contract stated as a test: sharding is an execution
strategy, never an answer-changing one.  Each case runs the real CLI
twice — once serial, once across four worker processes — and compares the
written artifacts with sha256, the same check CI applies.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.cli import main

SMALL = ["--payments", "1200", "--seed", "5"]


def _sha256(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.mark.parametrize("command", ["fig3", "fig5", "table2", "population"])
@pytest.mark.parametrize("jobs", [2, 4])
def test_cli_sharded_matches_serial_bytes(command, jobs, tmp_path, capsys):
    serial = tmp_path / f"{command}-serial.txt"
    sharded = tmp_path / f"{command}-jobs{jobs}.txt"
    assert main([command, *SMALL, "--jobs", "1", "--out", str(serial)]) == 0
    assert (
        main([command, *SMALL, "--jobs", str(jobs), "--out", str(sharded)])
        == 0
    )
    capsys.readouterr()
    assert serial.read_bytes() == sharded.read_bytes()
    assert _sha256(serial) == _sha256(sharded)


def test_disable_env_output_still_matches(tmp_path, capsys, monkeypatch):
    # The kill switch routes --jobs 4 through the serial path; the artifact
    # must be the one the user would have gotten either way.
    baseline = tmp_path / "baseline.txt"
    disabled = tmp_path / "disabled.txt"
    assert main(["fig3", *SMALL, "--out", str(baseline)]) == 0
    monkeypatch.setenv("REPRO_DISABLE_PARALLEL", "1")
    assert main(["fig3", *SMALL, "--jobs", "4", "--out", str(disabled)]) == 0
    capsys.readouterr()
    assert baseline.read_bytes() == disabled.read_bytes()
