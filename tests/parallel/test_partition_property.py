"""Property: ANY shard partition merges to the unsharded answer.

The engine always cuts contiguous equal-ish shards, but the merge
functions promise more — order-independent exactness for *every*
partition of the record stream.  Hypothesis draws arbitrary cut points
over the session dataset and checks the promise for Fig. 3 counts,
Table II fractions, Fig. 5 survival curves, and the population stats.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.market_makers import (
    ReplayResult,
    merge_replay_results,
    tally_outcomes,
)
from repro.analysis.population import (
    merge_population_partials,
    monthly_volume,
    population_shard_partial,
    population_stats,
)
from repro.analysis.survival import (
    figure5_curves,
    figure5_shard_partial,
    merge_figure5_partials,
)
from repro.core.deanonymizer import (
    Deanonymizer,
    figure3_shard_partial,
    merge_figure3_partials,
)

#: Up to 5 cut points anywhere in the 4k-row session dataset; duplicate
#: and boundary cuts collapse, so partitions range from 1 to 6 shards of
#: wildly uneven sizes — nothing like the engine's balanced plans.
cuts = st.lists(st.integers(min_value=0, max_value=4_000), max_size=5)

#: Settings for properties whose examples each chew through the full
#: session dataset: few examples, no deadline, fixture reuse is intended.
dataset_property = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _partition(dataset, cut_points):
    bounds = sorted({0, len(dataset), *[
        min(cut, len(dataset)) for cut in cut_points
    ]})
    return [
        dataset.slice_rows(start, stop)
        for start, stop in zip(bounds, bounds[1:])
    ]


@pytest.fixture(scope="module")
def serial_answers(dataset):
    return {
        "fig3": Deanonymizer(dataset).figure3(),
        "fig5": figure5_curves(dataset),
        "population": (population_stats(dataset), monthly_volume(dataset)),
    }


@given(cut_points=cuts)
@dataset_property
def test_any_partition_reproduces_fig3(dataset, serial_answers, cut_points):
    shards = _partition(dataset, cut_points)
    merged = merge_figure3_partials(
        [figure3_shard_partial(shard) for shard in shards]
    )
    assert merged == serial_answers["fig3"]


@given(cut_points=cuts)
@dataset_property
def test_any_partition_reproduces_fig5(dataset, serial_answers, cut_points):
    shards = _partition(dataset, cut_points)
    merged = merge_figure5_partials(
        [figure5_shard_partial(shard) for shard in shards]
    )
    serial = serial_answers["fig5"]
    assert merged.keys() == serial.keys()
    for label, curve in serial.items():
        assert merged[label].samples == curve.samples
        assert np.array_equal(  # bit-for-bit, not approximately
            np.asarray(merged[label].values), np.asarray(curve.values)
        )


@given(cut_points=cuts)
@dataset_property
def test_any_partition_reproduces_population(
    dataset, serial_answers, cut_points
):
    shards = _partition(dataset, cut_points)
    stats, monthly = merge_population_partials(
        [population_shard_partial(shard) for shard in shards]
    )
    serial_stats, serial_monthly = serial_answers["population"]
    assert stats == serial_stats
    assert monthly == serial_monthly


@given(
    outcomes=st.lists(st.tuples(st.booleans(), st.booleans()), max_size=400),
    cut_points=st.lists(st.integers(min_value=0, max_value=400), max_size=5),
)
@settings(max_examples=200, deadline=None)
def test_any_partition_reproduces_table2(outcomes, cut_points):
    # Pure integer tallies: every partition of the outcome stream merges
    # to the same Table II rows and delivery fractions.
    bounds = sorted({0, len(outcomes), *[
        min(cut, len(outcomes)) for cut in cut_points
    ]})
    merged = merge_replay_results([
        tally_outcomes(outcomes[start:stop])
        for start, stop in zip(bounds, bounds[1:])
    ])
    serial = tally_outcomes(outcomes)
    assert isinstance(merged, ReplayResult)
    for got, want in zip(merged.rows(), serial.rows()):
        assert (got.submitted, got.delivered) == (want.submitted, want.delivered)
        assert got.delivery_rate == want.delivery_rate
