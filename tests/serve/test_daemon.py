"""The serve pipeline end to end: cache, single-flight, sockets."""

from __future__ import annotations

import hashlib
import io
import json
import threading
import time
from types import SimpleNamespace

import pytest

from repro.api import ARTIFACTS, register
from repro.api.request import ArtifactRequest
from repro.errors import AnalysisError
from repro.obs.manifest import request_fingerprint
from repro.obs.metrics import METRICS
from repro.serve.client import ServeClient
from repro.serve.daemon import ArtifactServer, make_server
from repro.serve.store import ResultStore


@pytest.fixture
def servetest():
    """A cheap registered artifact with an observable, gateable compute."""
    state = SimpleNamespace(
        calls=0,
        gate=threading.Event(),
        started=threading.Event(),
        fail=False,
        jobs_seen=[],
    )
    state.gate.set()  # non-blocking unless a test clears it

    def compute(request):
        state.calls += 1
        state.jobs_seen.append(request.jobs)
        state.started.set()
        state.gate.wait(5)
        if state.fail:
            raise AnalysisError("synthetic failure")
        return request.seed * 2

    register(
        "_servetest",
        "serve-layer test artifact",
        compute,
        lambda payload, request: f"value={payload}",
    )
    yield state
    del ARTIFACTS["_servetest"]


def _server(tmp_path, **kwargs) -> ArtifactServer:
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    kwargs.setdefault("log", io.StringIO())
    return ArtifactServer(**kwargs)


def _sha(envelope: dict) -> str:
    return hashlib.sha256(
        json.dumps(envelope, sort_keys=True).encode("utf-8")
    ).hexdigest()


def _spin_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.005)


class TestPipeline:
    def test_miss_then_hit(self, tmp_path, servetest):
        server = _server(tmp_path)
        request = ArtifactRequest(name="_servetest", seed=7)
        first = server.handle_request(request)
        assert first["status"] == "ok"
        assert first["cache"] == "miss"
        assert first["rendered_text"] == "value=14"
        assert first["fingerprint"] == request_fingerprint(request)
        second = server.handle_request(request)
        assert second["cache"] == "hit"
        assert servetest.calls == 1
        counters = METRICS.counters
        assert counters["serve.requests"] == 2
        assert counters["serve.computes"] == 1
        assert counters["serve.cache.misses"] == 1
        assert counters["serve.cache.hits"] == 1

    def test_hit_and_miss_share_the_deterministic_core(self, tmp_path, servetest):
        """Only the transport ``cache`` annotation may differ."""
        server = _server(tmp_path)
        request = ArtifactRequest(name="_servetest", seed=7)
        miss = server.handle_request(request)
        hit = server.handle_request(request)
        miss.pop("cache"), hit.pop("cache")
        assert _sha(miss) == _sha(hit)

    def test_concurrent_duplicates_compute_once(self, tmp_path, servetest):
        server = _server(tmp_path)
        request = ArtifactRequest(name="_servetest", seed=7)
        fingerprint = request_fingerprint(request)
        servetest.gate.clear()
        responses = []

        def fire():
            responses.append(server.handle_request(request))

        leader = threading.Thread(target=fire)
        leader.start()
        servetest.started.wait(5)
        follower = threading.Thread(target=fire)
        follower.start()
        _spin_until(lambda: server.flights.waiting(fingerprint) == 1)
        servetest.gate.set()
        leader.join(5)
        follower.join(5)
        assert servetest.calls == 1
        assert len(responses) == 2
        assert _sha(responses[0]) == _sha(responses[1])
        assert METRICS.counters["serve.computes"] == 1
        assert METRICS.counters["serve.singleflight.shared"] == 1

    def test_cache_hit_after_restart(self, tmp_path, servetest):
        """The store is durable: a fresh daemon serves yesterday's result."""
        first = _server(tmp_path)
        request = ArtifactRequest(name="_servetest", seed=9)
        cold = first.handle_request(request)
        restarted = _server(tmp_path)
        warm = restarted.handle_request(request)
        assert warm["cache"] == "hit"
        assert warm["rendered_text"] == cold["rendered_text"]
        assert warm["rendered_sha256"] == cold["rendered_sha256"]
        assert servetest.calls == 1
        # a hit never schedules work, so the warm pool stays untouched
        assert not any(
            name.startswith("parallel.pool.") for name in METRICS.counters
        )

    def test_corrupt_entry_degrades_to_recompute(self, tmp_path, servetest):
        server = _server(tmp_path)
        request = ArtifactRequest(name="_servetest", seed=7)
        server.handle_request(request)
        path = server.store.path_for(request_fingerprint(request))
        with open(path, "r+", encoding="utf-8") as handle:
            handle.seek(0)
            handle.write("X")
        again = server.handle_request(request)
        assert again["status"] == "ok"
        assert again["cache"] == "miss"
        assert servetest.calls == 2
        assert METRICS.counters["serve.store.corrupt"] == 1
        # the recompute resealed the entry; the next request hits again
        assert server.handle_request(request)["cache"] == "hit"

    def test_default_jobs_fill_in_without_changing_identity(
        self, tmp_path, servetest
    ):
        server = _server(tmp_path, default_jobs=3)
        response = server.handle_request(ArtifactRequest(name="_servetest"))
        assert response["status"] == "ok"
        assert servetest.jobs_seen == [3]
        assert response["fingerprint"] == request_fingerprint(
            ArtifactRequest(name="_servetest")
        )


class TestErrors:
    def test_unknown_artifact_is_an_error_envelope(self, tmp_path):
        server = _server(tmp_path)
        response = server.handle_request(ArtifactRequest(name="_absent"))
        assert response["status"] == "error"
        assert "unknown artifact" in response["error"]
        assert len(server.store) == 0
        assert METRICS.counters["serve.errors"] == 1

    def test_missing_archive_rejected_before_compute(self, tmp_path, servetest):
        server = _server(tmp_path)
        response = server.handle_request(
            ArtifactRequest(name="_servetest", archive=str(tmp_path / "no.gz"))
        )
        assert response["status"] == "error"
        assert "archive not found" in response["error"]
        assert servetest.calls == 0

    def test_failures_are_not_cached(self, tmp_path, servetest):
        server = _server(tmp_path)
        request = ArtifactRequest(name="_servetest", seed=7)
        servetest.fail = True
        failed = server.handle_request(request)
        assert failed["status"] == "error"
        assert len(server.store) == 0
        servetest.fail = False
        retried = server.handle_request(request)
        assert retried["status"] == "ok"
        assert servetest.calls == 2

    def test_malformed_wire_lines_get_error_responses(self, tmp_path):
        server = _server(tmp_path)
        for line in ("not json", "[1, 2]", '{"op": "bogus"}',
                     '{"artifact": "x", "sede": 7}'):
            payload, shutdown = server.respond(line)
            assert not shutdown
            assert json.loads(payload)["status"] == "error"


class TestStartup:
    def test_startup_sweeps_stale_temp_files(self, tmp_path, servetest):
        """A daemon killed mid-write leaves no debris for its successor."""
        root = tmp_path / "cache"
        first = _server(tmp_path)
        request = ArtifactRequest(name="_servetest", seed=7)
        first.handle_request(request)
        shard = root / next(first.store.fingerprints())[:2]
        stale = shard / "deadbeef.json.tmp.999"
        stale.write_text("torn write")
        _server(tmp_path)  # restart sweeps at init
        assert not stale.exists()
        assert METRICS.counters["serve.store.swept_temps"] == 1

    def test_injected_store_is_used_as_is(self, tmp_path, servetest):
        store = ResultStore(str(tmp_path / "elsewhere"))
        server = ArtifactServer(store=store, log=io.StringIO())
        server.handle_request(ArtifactRequest(name="_servetest"))
        assert len(store) == 1


class TestStaleSocket:
    """Binding must reclaim a dead daemon's socket and refuse a live one."""

    def test_stale_socket_is_reclaimed(self, tmp_path, servetest):
        import socket as socket_module

        socket_path = str(tmp_path / "serve.sock")
        # A kill -9 leaves the bound socket file behind with nothing
        # accepting: simulate by binding, listening, and closing without
        # unlinking.
        corpse = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        corpse.bind(socket_path)
        corpse.listen(1)
        corpse.close()
        import os

        assert os.path.exists(socket_path)

        app = _server(tmp_path)
        server = make_server(app, socket_path=socket_path)
        try:
            assert METRICS.counters["serve.stale_socket_reclaimed"] == 1
            thread = threading.Thread(
                target=server.serve_forever, kwargs={"poll_interval": 0.05}
            )
            thread.start()
            try:
                client = ServeClient(socket_path=socket_path, timeout=10)
                client.wait_ready(attempts=50, delay=0.05)
                assert client.ping()["status"] == "ok"
            finally:
                server.shutdown()
                thread.join(5)
        finally:
            server.server_close()

    def test_live_socket_is_refused(self, tmp_path, servetest):
        socket_path = str(tmp_path / "serve.sock")
        app = _server(tmp_path)
        first = make_server(app, socket_path=socket_path)
        thread = threading.Thread(
            target=first.serve_forever, kwargs={"poll_interval": 0.05}
        )
        thread.start()
        try:
            with pytest.raises(AnalysisError, match="another daemon"):
                make_server(_server(tmp_path), socket_path=socket_path)
        finally:
            first.shutdown()
            thread.join(5)
            first.server_close()
        # the live daemon's socket file was not stolen
        import os

        assert os.path.exists(socket_path)

    def test_non_socket_path_is_refused(self, tmp_path, servetest):
        path = tmp_path / "serve.sock"
        path.write_text("precious data, not a socket")
        with pytest.raises(AnalysisError, match="not a socket"):
            make_server(_server(tmp_path), socket_path=str(path))
        assert path.read_text() == "precious data, not a socket"


class TestSockets:
    def test_tcp_round_trip(self, tmp_path, servetest):
        app = _server(tmp_path)
        server = make_server(app, port=0)
        port = server.server_address[1]
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}
        )
        thread.start()
        try:
            client = ServeClient(port=port, timeout=10)
            client.wait_ready(attempts=50, delay=0.05)
            ping = client.ping()
            assert ping["status"] == "ok"
            assert "_servetest" in ping["artifacts"]
            response = client.artifact("_servetest", seed=21)
            assert response["status"] == "ok"
            assert response["rendered_text"] == "value=42"
            assert client.artifact("_servetest", seed=21)["cache"] == "hit"
            stats = client.stats()
            assert stats["counters"]["serve.computes"] == 1
            assert stats["cache_entries"] == 1
            assert client.shutdown()["status"] == "ok"
        finally:
            server.shutdown()
            thread.join(5)
            server.server_close()

    def test_unix_socket_round_trip(self, tmp_path, servetest):
        socket_path = str(tmp_path / "serve.sock")
        app = _server(tmp_path)
        try:
            server = make_server(app, socket_path=socket_path)
        except AnalysisError:
            pytest.skip("unix sockets unavailable on this platform")
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}
        )
        thread.start()
        try:
            client = ServeClient(socket_path=socket_path, timeout=10)
            client.wait_ready(attempts=50, delay=0.05)
            assert client.artifact("_servetest", seed=5)["rendered_text"] == (
                "value=10"
            )
        finally:
            server.shutdown()
            thread.join(5)
            server.server_close()
