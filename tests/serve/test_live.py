"""The serve ↔ ingest seam: live_status op, graceful drain, wire codec."""

from __future__ import annotations

import io
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.obs.metrics import METRICS
from repro.online import IngestConfig, IngestPipeline
from repro.serve.client import ServeClient
from repro.api.request import ArtifactRequest
from repro.serve.codec import CodecError, ControlRequest, decode_request
from repro.serve.daemon import ArtifactServer, make_server

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _server(tmp_path, **kwargs) -> ArtifactServer:
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    kwargs.setdefault("log", io.StringIO())
    return ArtifactServer(**kwargs)


def _drained_state_dir(tmp_path) -> str:
    """A state dir with a real status.json, as `repro ingest` leaves it."""
    state_dir = str(tmp_path / "ingest-state")
    pipeline = IngestPipeline(IngestConfig(state_dir=state_dir, fsync=False))
    pipeline.recover()
    pipeline.run(iter(()))
    return state_dir


class TestCodec:
    def test_control_op_decodes_typed(self):
        request = decode_request('{"op": "live_status", "state_dir": "/x"}')
        assert isinstance(request, ControlRequest)
        assert request.op == "live_status"
        assert request.param("state_dir") == "/x"

    def test_artifact_body_decodes_typed(self):
        request = decode_request('{"artifact": "fig3", "seed": 3}')
        assert isinstance(request, ArtifactRequest)
        assert request.name == "fig3"
        assert request.seed == 3

    def test_unknown_op_rejected(self):
        with pytest.raises(CodecError, match="unknown op"):
            decode_request('{"op": "flood"}')

    def test_unknown_control_param_rejected(self):
        with pytest.raises(CodecError, match="takes no parameter"):
            decode_request('{"op": "ping", "state_dir": "/x"}')

    def test_none_params_canonicalize_away(self):
        explicit = ControlRequest("live_status", {"state_dir": None})
        assert explicit == ControlRequest("live_status")
        assert explicit.to_dict() == {"op": "live_status"}

    def test_control_round_trip(self):
        request = ControlRequest("stats", {"prefix": "cascade."})
        assert decode_request(json.dumps(request.to_dict())) == request


class TestLiveStatus:
    def test_no_state_dir_is_an_error(self, tmp_path):
        response = _server(tmp_path).live_status(ControlRequest("live_status"))
        assert response["status"] == "error"
        assert "no state_dir" in response["error"]

    def test_missing_status_file_is_an_error(self, tmp_path):
        server = _server(tmp_path, ingest_state_dir=str(tmp_path / "nowhere"))
        response = server.live_status(ControlRequest("live_status"))
        assert response["status"] == "error"
        assert METRICS.counters["serve.live_status.misses"] == 1

    def test_reads_pipeline_status(self, tmp_path):
        state_dir = _drained_state_dir(tmp_path)
        server = _server(tmp_path, ingest_state_dir=state_dir)
        response = server.live_status(ControlRequest("live_status"))
        assert response["status"] == "ok"
        assert response["ingest"]["phase"] == "drained"
        assert response["ingest"]["applied_seq"] == -1
        assert METRICS.counters["serve.live_status.reads"] == 1

    def test_request_state_dir_overrides_default(self, tmp_path):
        state_dir = _drained_state_dir(tmp_path)
        server = _server(tmp_path, ingest_state_dir=str(tmp_path / "other"))
        response = server.live_status(
            ControlRequest("live_status", {"state_dir": state_dir})
        )
        assert response["status"] == "ok"
        assert response["state_dir"] == state_dir

    def test_round_trip_over_socket(self, tmp_path):
        state_dir = _drained_state_dir(tmp_path)
        app = _server(tmp_path, ingest_state_dir=state_dir)
        server = make_server(app, port=0)
        port = server.server_address[1]
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}
        )
        thread.start()
        try:
            client = ServeClient(port=port, timeout=10)
            client.wait_ready(attempts=50, delay=0.05)
            response = client.live_status()
            assert response["status"] == "ok"
            assert response["ingest"]["phase"] == "drained"
        finally:
            server.shutdown()
            thread.join(5)
            server.server_close()


class TestDrain:
    def test_idle_drain_returns_immediately(self, tmp_path):
        assert _server(tmp_path).drain(timeout=0.1) is True

    def test_drain_waits_for_tracked_requests(self, tmp_path):
        server = _server(tmp_path)
        release = threading.Event()

        def slow_request():
            with server.track():
                release.wait(5)

        thread = threading.Thread(target=slow_request)
        thread.start()
        while server._active == 0:
            time.sleep(0.005)
        # Still in flight: a short drain must time out and say so.
        assert server.drain(timeout=0.05) is False
        assert METRICS.counters["serve.drain.timeouts"] == 1
        release.set()
        assert server.drain(timeout=5.0) is True
        thread.join(5)


class TestSigtermDrain:
    """`repro serve` under SIGTERM: stop accepting, finish, exit 0."""

    def test_sigterm_exits_zero_and_removes_socket(self, tmp_path):
        socket_path = str(tmp_path / "serve.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", socket_path,
             "--cache-dir", str(tmp_path / "cache"),
             "--drain-timeout", "5"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if os.path.exists(socket_path):
                    try:
                        probe = socket.socket(socket.AF_UNIX,
                                              socket.SOCK_STREAM)
                        probe.connect(socket_path)
                        probe.sendall(b'{"op": "ping"}\n')
                        if probe.makefile().readline():
                            probe.close()
                            break
                        probe.close()
                    except OSError:
                        pass
                time.sleep(0.05)
            else:
                pytest.fail("daemon never became ready")
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=20) == 0
            assert not os.path.exists(socket_path)
            output = process.stdout.read().decode("utf-8", "replace")
            assert "SIGTERM" in output and "draining" in output
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(5)
