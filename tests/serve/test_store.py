"""The durable result store: sealed writes, verified reads, sweeps."""

from __future__ import annotations

import os

from repro.obs.metrics import METRICS
from repro.serve.store import ResultStore

OK_CORE = {
    "status": "ok",
    "artifact": "fig3",
    "fingerprint": "ab" * 32,
    "rendered_text": "value=42",
    "rendered_sha256": "cd" * 32,
    "output_sha256s": [],
    "error": None,
    "envelope_version": 1,
}

FP = "ab" * 32


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        store.put(FP, OK_CORE)
        assert store.get(FP) == OK_CORE
        assert len(store) == 1
        assert list(store.fingerprints()) == [FP]

    def test_entry_is_sealed_with_a_sidecar(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        store.put(FP, OK_CORE)
        path = store.path_for(FP)
        assert os.path.exists(path)
        assert os.path.exists(path + ".sha256")

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        assert store.get(FP) is None

    def test_errors_are_never_cached(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        store.put(FP, {"status": "error", "artifact": "fig3", "error": "boom"})
        assert store.get(FP) is None
        assert len(store) == 0

    def test_survives_a_new_instance_on_the_same_root(self, tmp_path):
        root = str(tmp_path / "cache")
        ResultStore(root).put(FP, OK_CORE)
        assert ResultStore(root).get(FP) == OK_CORE


class TestCorruption:
    def test_rotted_bytes_degrade_to_a_miss_and_evict(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        store.put(FP, OK_CORE)
        path = store.path_for(FP)
        with open(path, "r+", encoding="utf-8") as handle:
            handle.seek(0)
            handle.write("X")
        assert store.get(FP) is None
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".sha256")
        assert METRICS.counters.get("serve.store.corrupt") == 1

    def test_missing_sidecar_degrades_to_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        store.put(FP, OK_CORE)
        os.remove(store.path_for(FP) + ".sha256")
        assert store.get(FP) is None

    def test_corrupt_entry_can_be_resealed(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        store.put(FP, OK_CORE)
        with open(store.path_for(FP), "a", encoding="utf-8") as handle:
            handle.write("garbage")
        assert store.get(FP) is None
        store.put(FP, OK_CORE)
        assert store.get(FP) == OK_CORE


class TestSweep:
    def test_sweep_reclaims_killed_writes(self, tmp_path):
        """A kill -9 mid-write leaves only ``*.tmp.*`` siblings behind."""
        root = tmp_path / "cache"
        store = ResultStore(str(root))
        store.put(FP, OK_CORE)
        shard = root / FP[:2]
        stale = shard / f"{FP}.json.tmp.12345"
        stale.write_text("half-written")
        assert store.sweep() == 1
        assert not stale.exists()
        assert store.get(FP) == OK_CORE  # sealed entries are untouched
        assert METRICS.counters.get("serve.store.swept_temps") == 1

    def test_sweep_on_a_clean_store_is_a_noop(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        store.put(FP, OK_CORE)
        assert store.sweep() == 0
