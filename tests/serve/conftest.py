"""Shared fixtures for the serve-layer tests."""

from __future__ import annotations

import pytest

from repro.obs.metrics import METRICS


@pytest.fixture(autouse=True)
def clean_metrics():
    """Serve components tick the global registry; isolate each test."""
    METRICS.reset()
    METRICS.enable()
    yield
    METRICS.disable()
    METRICS.reset()
