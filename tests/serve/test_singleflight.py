"""Single-flight deduplication under real thread concurrency."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.singleflight import SingleFlight


def _spin_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.005)


class TestSingleFlight:
    def test_sequential_calls_each_execute(self):
        flights = SingleFlight()
        calls = []
        for i in range(3):
            value, shared = flights.do("k", lambda i=i: calls.append(i) or i)
            assert value == i and not shared
        assert calls == [0, 1, 2]
        assert flights.in_flight() == 0

    def test_concurrent_burst_runs_the_function_once(self):
        flights = SingleFlight()
        gate = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            gate.wait(5)
            return "payload"

        results = []

        def request():
            results.append(flights.do("k", compute))

        leader = threading.Thread(target=request)
        leader.start()
        _spin_until(lambda: flights.in_flight() == 1)
        followers = [threading.Thread(target=request) for _ in range(3)]
        for thread in followers:
            thread.start()
        _spin_until(lambda: flights.waiting("k") == 3)
        gate.set()
        leader.join(5)
        for thread in followers:
            thread.join(5)
        assert len(calls) == 1
        assert all(value == "payload" for value, _ in results)
        assert sorted(shared for _, shared in results) == [False, True, True, True]
        assert flights.in_flight() == 0

    def test_leader_error_propagates_to_followers(self):
        flights = SingleFlight()
        gate = threading.Event()
        outcomes = []

        def compute():
            gate.wait(5)
            raise ValueError("boom")

        def request():
            try:
                flights.do("k", compute)
                outcomes.append("ok")
            except ValueError as exc:
                outcomes.append(str(exc))

        leader = threading.Thread(target=request)
        leader.start()
        _spin_until(lambda: flights.in_flight() == 1)
        follower = threading.Thread(target=request)
        follower.start()
        _spin_until(lambda: flights.waiting("k") == 1)
        gate.set()
        leader.join(5)
        follower.join(5)
        assert outcomes == ["boom", "boom"]

    def test_failures_are_not_cached(self):
        """A retry after a failed flight starts fresh and can succeed."""
        flights = SingleFlight()
        with pytest.raises(RuntimeError):
            flights.do("k", lambda: (_ for _ in ()).throw(RuntimeError("x")))
        value, shared = flights.do("k", lambda: 42)
        assert value == 42 and not shared

    def test_distinct_keys_do_not_collide(self):
        flights = SingleFlight()
        assert flights.do("a", lambda: 1)[0] == 1
        assert flights.do("b", lambda: 2)[0] == 2
        assert flights.waiting("a") == 0
