"""The metrics registry (legacy perf surface) and the bench JSON writer."""

from __future__ import annotations

import json

from repro.bench import SCHEMA, write_result
from repro.obs.metrics import MetricsRegistry as PerfRegistry


class TestPerfRegistry:
    def test_disabled_registry_records_nothing(self):
        perf = PerfRegistry(enabled=False)
        perf.count("x")
        with perf.timer("y"):
            pass
        assert perf.snapshot() == {"counters": {}, "timers": {}}

    def test_counters_and_timers_accumulate(self):
        perf = PerfRegistry(enabled=True)
        perf.count("payments", 3)
        perf.count("payments")
        with perf.timer("work"):
            pass
        with perf.timer("work"):
            pass
        snap = perf.snapshot()
        assert snap["counters"] == {"payments": 4}
        assert snap["timers"]["work"]["calls"] == 2
        assert snap["timers"]["work"]["seconds"] >= 0.0
        assert "work" in perf.report() and "payments" in perf.report()

    def test_reset_clears_everything(self):
        perf = PerfRegistry(enabled=True)
        perf.count("a")
        perf.add_time("b", 1.0)
        perf.reset()
        assert perf.snapshot() == {"counters": {}, "timers": {}}


class TestBenchWriter:
    def test_first_write_sets_baseline_to_current(self, tmp_path):
        path = tmp_path / "bench.json"
        payload = write_result(path, "node", {"n": 1}, {"plan_payment_ops": 100.0})
        assert payload["schema"] == SCHEMA
        assert payload["baseline"] == payload["current"]
        assert payload["speedup"] == {"plan_payment_ops": 1.0}

    def test_rerun_preserves_baseline_and_updates_speedup(self, tmp_path):
        path = tmp_path / "bench.json"
        write_result(path, "node", {"n": 1}, {"plan_payment_ops": 100.0, "x_s": 8.0})
        payload = write_result(
            path, "node", {"n": 1}, {"plan_payment_ops": 250.0, "x_s": 2.0}
        )
        assert payload["baseline"] == {"plan_payment_ops": 100.0, "x_s": 8.0}
        # ops: higher is better; seconds: lower is better — both are
        assert payload["speedup"] == {"plan_payment_ops": 2.5, "x_s": 4.0}
        on_disk = json.loads(path.read_text())
        assert on_disk == payload

    def test_config_change_resets_baseline(self, tmp_path):
        path = tmp_path / "bench.json"
        write_result(path, "node", {"n": 1}, {"plan_payment_ops": 100.0})
        payload = write_result(path, "node", {"n": 2}, {"plan_payment_ops": 50.0})
        assert payload["baseline"] == {"plan_payment_ops": 50.0}
