"""Tests for the consensus message-delivery model."""

import numpy as np
import pytest

from repro.consensus.faults import active, forked, lagging
from repro.consensus.network import NetworkModel
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator


def make(name, profile):
    return Validator(name, UNL.of([name]), profile)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestDeliveryArray:
    def test_shape_and_diagonal(self, rng):
        validators = [make(f"v{i}", active(availability=1.0)) for i in range(6)]
        delivered = NetworkModel().delivery_array(validators, rng)
        assert delivered.shape == (6, 6)
        assert not delivered.diagonal().any()

    def test_healthy_links_mostly_deliver(self, rng):
        validators = [make(f"v{i}", active(availability=1.0)) for i in range(10)]
        delivered = NetworkModel(base_loss=0.01).delivery_array(validators, rng)
        off_diagonal = delivered.sum() / (10 * 9)
        assert off_diagonal > 0.95

    def test_lagging_links_lossy(self, rng):
        validators = [make("h1", active()), make("h2", active()), make("lag", lagging())]
        totals = np.zeros((3, 3))
        for _ in range(200):
            totals += NetworkModel().delivery_array(validators, rng)
        healthy_rate = totals[0, 1] / 200
        lagging_rate = totals[2, 0] / 200
        assert lagging_rate < healthy_rate - 0.3

    def test_cross_network_never_delivers(self, rng):
        validators = [make("main", active()), make("fork", forked(network_id=1))]
        for _ in range(50):
            delivered = NetworkModel(base_loss=0.0).delivery_array(validators, rng)
            assert not delivered[0, 1] and not delivered[1, 0]

    def test_partitions_cut_links(self, rng):
        validators = [make(f"v{i}", active(availability=1.0)) for i in range(4)]
        model = NetworkModel(
            base_loss=0.0, partitions=[{"v0", "v1"}, {"v2", "v3"}]
        )
        delivered = model.delivery_array(validators, rng)
        assert delivered[0, 1] or True  # within-partition links can deliver
        assert not delivered[0, 2] and not delivered[0, 3]
        assert not delivered[2, 0] and not delivered[3, 1]


class TestDeliveryMatrixConsistency:
    def test_dict_form_agrees_on_structure(self, rng):
        """The dict API (used in docs/tests) and the vectorized array agree
        on hard constraints: diagonal, cross-network, partitions."""
        validators = [
            make("a", active()),
            make("b", forked(network_id=1)),
            make("c", active()),
        ]
        model = NetworkModel(base_loss=0.0)
        matrix = model.delivery_matrix(validators, rng)
        assert ("a", "a") not in matrix
        assert matrix[("a", "b")] is False  # cross network
        assert matrix[("b", "c")] is False
