"""Tests for the RPCA consensus substrate: UNLs, rounds, engine, faults."""

import numpy as np
import pytest

from repro.consensus.engine import ConsensusEngine, default_tx_supplier
from repro.consensus.faults import (
    Behaviour,
    active,
    byzantine,
    forked,
    lagging,
    offline,
    windowed,
)
from repro.consensus.network import NetworkModel
from repro.consensus.proposals import Validation
from repro.consensus.rounds import page_hash_for, run_round
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator, validator_key_id
from repro.errors import ConsensusError, QuorumError


def make_roster(n_active=8, n_lagging=0, n_forked=0, n_byzantine=0):
    names = [f"v{i}" for i in range(n_active)]
    unl = UNL.of(names)
    validators = [Validator(name, unl, active(availability=1.0)) for name in names]
    for i in range(n_lagging):
        validators.append(Validator(f"lag{i}", unl, lagging()))
    for i in range(n_forked):
        validators.append(Validator(f"fork{i}", UNL.of([f"fork{i}"]), forked(network_id=1)))
    for i in range(n_byzantine):
        validators.append(Validator(f"byz{i}", unl, byzantine()))
    return validators, unl


class TestUNL:
    def test_empty_rejected(self):
        with pytest.raises(QuorumError):
            UNL.of([])

    def test_quorum_size_80pct(self):
        assert UNL.of([f"v{i}" for i in range(5)]).quorum_size(0.8) == 4
        assert UNL.of([f"v{i}" for i in range(10)]).quorum_size(0.8) == 8

    def test_quorum_bounds(self):
        with pytest.raises(QuorumError):
            UNL.of(["a"]).quorum_size(0.0)

    def test_membership_and_iteration(self):
        unl = UNL.of(["b", "a"])
        assert "a" in unl and "c" not in unl
        assert list(unl) == ["a", "b"]

    def test_overlap(self):
        a = UNL.of(["1", "2", "3"])
        b = UNL.of(["2", "3", "4"])
        assert a.overlap(b) == pytest.approx(0.5)
        assert a.overlap(a) == 1.0


class TestValidatorBehaviour:
    def test_key_id_format(self):
        key = validator_key_id("bougalis.net")
        assert key.startswith("n9")
        assert validator_key_id("bougalis.net") == key  # deterministic

    def test_participation_window(self):
        profile = windowed(active(availability=1.0), 100, 200)
        validator = Validator("v", UNL.of(["v"]), profile)
        rng = np.random.default_rng(0)
        assert not validator.participates(50, rng)
        assert validator.participates(150, rng)
        assert not validator.participates(250, rng)

    def test_initial_position_subset_of_pool(self):
        validator = Validator("v", UNL.of(["v"]), active())
        rng = np.random.default_rng(0)
        pool = frozenset(bytes([i]) * 32 for i in range(20))
        position = validator.initial_position(pool, rng)
        assert position <= pool

    def test_lagging_sees_less(self):
        rng = np.random.default_rng(0)
        pool = frozenset(i.to_bytes(2, "big") * 16 for i in range(400))
        healthy = Validator("h", UNL.of(["h"]), active())
        lagger = Validator("l", UNL.of(["l"]), lagging())
        seen_healthy = len(healthy.initial_position(pool, rng))
        seen_lagging = len(lagger.initial_position(pool, rng))
        assert seen_lagging < seen_healthy

    def test_update_position_threshold(self):
        unl = UNL.of(["a", "b", "c", "d"])
        validator = Validator("a", unl, active())
        tx = b"t" * 32
        peers = {"b": {tx}, "c": {tx}, "d": set()}
        # support 3/4 (incl. self) >= 0.5 -> kept
        assert tx in validator.update_position({tx}, peers, 0.5)
        # support 3/4 < 0.8 -> dropped
        assert tx not in validator.update_position({tx}, peers, 0.8)

    def test_validation_signing(self):
        validator = Validator("v", UNL.of(["v"]), active())
        validation = validator.make_validation(7, b"\x01" * 32, 100, sign=True)
        assert validation.verify(validator.keypair.public)
        tampered = Validation(
            validator="v", sequence=8, page_hash=b"\x01" * 32,
            sign_time=100, signature=validation.signature,
        )
        assert not tampered.verify(validator.keypair.public)


class TestRound:
    def run_one(self, validators, unl, seed=0, tx_count=6):
        rng = np.random.default_rng(seed)
        pool = frozenset(bytes([i]) * 32 for i in range(tx_count))
        return run_round(
            round_index=0,
            sequence=1,
            parent_hashes={0: b"\x00" * 32},
            close_time=5,
            tx_pool=pool,
            validators=validators,
            master_unl=unl,
            network=NetworkModel(),
            rng=rng,
        )

    def test_healthy_round_validates(self):
        validators, unl = make_roster(8)
        outcome = self.run_one(validators, unl)
        assert outcome.validated
        assert outcome.agreement >= 0.8

    def test_agreement_on_transaction_set(self):
        validators, unl = make_roster(8)
        outcome = self.run_one(validators, unl, tx_count=12)
        # The validated set must be a subset of the pool, non-trivially big.
        assert len(outcome.validated_tx_set) >= 8

    def test_forked_validators_never_valid(self):
        validators, unl = make_roster(6, n_forked=3)
        outcome = self.run_one(validators, unl)
        fork_validations = [v for v in outcome.validations if v.validator.startswith("fork")]
        assert fork_validations
        assert all(v.page_hash != outcome.validated_hash for v in fork_validations)

    def test_byzantine_minority_cannot_block(self):
        validators, unl = make_roster(8, n_byzantine=1)
        unl_all = UNL.of([v.name for v in validators if v.network_id == 0])
        outcome = self.run_one(validators, unl_all)
        assert outcome.validated

    def test_no_participants_no_validation(self):
        names = ["v0", "v1"]
        unl = UNL.of(names)
        validators = [Validator(n, unl, offline(availability=0.0)) for n in names]
        outcome = self.run_one(validators, unl)
        assert not outcome.validated
        assert outcome.validations == []

    def test_page_hash_depends_on_everything(self):
        base = page_hash_for(1, b"\x00" * 32, 5, frozenset({b"a" * 32}))
        assert page_hash_for(2, b"\x00" * 32, 5, frozenset({b"a" * 32})) != base
        assert page_hash_for(1, b"\x01" * 32, 5, frozenset({b"a" * 32})) != base
        assert page_hash_for(1, b"\x00" * 32, 6, frozenset({b"a" * 32})) != base
        assert page_hash_for(1, b"\x00" * 32, 5, frozenset({b"b" * 32})) != base


class TestEngine:
    def test_runs_and_accounts(self):
        validators, unl = make_roster(8, n_lagging=2, n_forked=2)
        engine = ConsensusEngine(validators, master_unl=unl, seed=3)
        report = engine.run(120)
        assert report.rounds_run == 120
        assert report.availability > 0.9
        actives = [report.stats[f"v{i}"] for i in range(8)]
        assert all(s.valid_fraction > 0.9 for s in actives)
        forks = [report.stats[f"fork{i}"] for i in range(2)]
        assert all(s.valid_pages == 0 and s.total_pages > 50 for s in forks)
        lags = [report.stats[f"lag{i}"] for i in range(2)]
        assert all(s.valid_fraction < 0.3 for s in lags)

    def test_chain_advances_only_on_validation(self):
        validators, unl = make_roster(8)
        engine = ConsensusEngine(validators, master_unl=unl, seed=1)
        report = engine.run(50)
        assert len(report.main_chain_hashes) == report.rounds_validated
        assert len(set(report.main_chain_hashes)) == report.rounds_validated

    def test_observer_sees_every_validation(self):
        validators, unl = make_roster(5)
        engine = ConsensusEngine(validators, master_unl=unl, seed=2)
        seen = []
        engine.subscribe(seen.append)
        report = engine.run(30)
        assert len(seen) == sum(s.total_pages for s in report.stats.values())

    def test_duplicate_names_rejected(self):
        unl = UNL.of(["v"])
        validators = [Validator("v", unl), Validator("v", unl)]
        with pytest.raises(ConsensusError):
            ConsensusEngine(validators)

    def test_empty_roster_rejected(self):
        with pytest.raises(ConsensusError):
            ConsensusEngine([])

    def test_quorum_sweep_availability(self):
        # With only 60% of validators reliable, an 80% quorum stalls while
        # a 50% quorum makes progress — the robustness tradeoff of RPCA.
        names = [f"v{i}" for i in range(10)]
        unl = UNL.of(names)
        rosters = []
        for name in names[:6]:
            rosters.append(Validator(name, unl, active(availability=0.99)))
        for name in names[6:]:
            rosters.append(Validator(name, unl, offline(availability=0.05)))
        low = ConsensusEngine(rosters, master_unl=unl, quorum=0.5, seed=5).run(60)
        rosters2 = [Validator(v.name, v.unl, v.profile) for v in rosters]
        high = ConsensusEngine(rosters2, master_unl=unl, quorum=0.8, seed=5).run(60)
        assert low.availability > high.availability

    def test_partitioned_network_halts(self):
        names = [f"v{i}" for i in range(8)]
        unl = UNL.of(names)
        validators = [Validator(n, unl, active(availability=1.0)) for n in names]
        network = NetworkModel(partitions=[set(names[:4]), set(names[4:])])
        report = ConsensusEngine(validators, master_unl=unl, network=network, seed=4).run(40)
        # Neither half can reach the 80% quorum.
        assert report.availability < 0.1

    def test_default_tx_supplier_shape(self):
        rng = np.random.default_rng(0)
        pool = default_tx_supplier(0, rng)
        assert 4 <= len(pool) <= 12
        assert all(len(tx) == 32 for tx in pool)

    def test_signed_pages_verify(self):
        validators, unl = make_roster(5)
        engine = ConsensusEngine(validators, master_unl=unl, seed=9, sign_pages=True)
        seen = []
        engine.subscribe(seen.append)
        engine.run(3)
        by_name = {v.name: v for v in validators}
        assert seen
        assert all(v.verify(by_name[v.validator].keypair.public) for v in seen)
