"""Tests for the validator reward-system proposal (Section IV remedy)."""

import pytest

from repro.consensus.rewards import (
    IncentiveSimulation,
    Operator,
    RewardPolicy,
    compare_policies,
)
from repro.errors import ConsensusError


class TestRewardPolicy:
    def test_round_pot(self):
        policy = RewardPolicy(tax_per_transaction=0.1)
        assert policy.round_pot(50) == pytest.approx(5.0)

    def test_split_equal(self):
        policy = RewardPolicy(ripple_labs_waiver=False)
        shares = policy.split(10.0, ["a", "b"], ripple_labs=[])
        assert shares == {"a": 5.0, "b": 5.0}

    def test_ripple_labs_waiver(self):
        policy = RewardPolicy(ripple_labs_waiver=True)
        shares = policy.split(10.0, ["R1", "a"], ripple_labs=["R1"])
        assert shares == {"a": 10.0}

    def test_all_labs_fall_back_to_everyone(self):
        policy = RewardPolicy(ripple_labs_waiver=True)
        shares = policy.split(10.0, ["R1", "R2"], ripple_labs=["R1", "R2"])
        assert shares == {"R1": 5.0, "R2": 5.0}

    def test_empty_signers(self):
        assert RewardPolicy().split(10.0, [], []) == {}


class TestOperator:
    def test_joins_when_profitable(self):
        operator = Operator("op", operating_cost=5.0)
        operator.consider(expected_reward=6.0)
        assert operator.active

    def test_stays_out_when_unprofitable(self):
        operator = Operator("op", operating_cost=5.0)
        operator.consider(expected_reward=4.0)
        assert not operator.active

    def test_leaves_after_patience_exhausted(self):
        operator = Operator("op", operating_cost=5.0, patience=2)
        operator.consider(6.0)
        assert operator.active
        operator.consider(4.0)
        assert operator.active  # one bad epoch tolerated
        operator.consider(4.0)
        assert not operator.active

    def test_recovery_resets_streak(self):
        operator = Operator("op", operating_cost=5.0, patience=2)
        operator.consider(6.0)
        operator.consider(4.0)
        operator.consider(6.0)  # recovered
        operator.consider(4.0)
        assert operator.active  # streak was reset


class TestIncentiveSimulation:
    def test_no_reward_no_validators(self):
        simulation = IncentiveSimulation(RewardPolicy(tax_per_transaction=0.0), seed=1)
        trajectory = simulation.run(20)
        # Status quo: only the Ripple Labs bootstrap remains.
        assert trajectory[-1].active_validators == 5

    def test_reward_grows_population(self):
        none = IncentiveSimulation(RewardPolicy(0.0), seed=2).equilibrium_size(30)
        taxed = IncentiveSimulation(RewardPolicy(0.05), seed=2).equilibrium_size(30)
        assert taxed > none

    def test_higher_tax_more_validators(self):
        results = compare_policies([0.0, 0.02, 0.1, 0.5], seed=3, epochs=30)
        sizes = [size for _, size, _ in results]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_decentralization_improves_with_population(self):
        results = compare_policies([0.0, 0.5], seed=4, epochs=30)
        (_, _, exposure_none), (_, _, exposure_taxed) = results
        assert exposure_taxed < exposure_none

    def test_population_reaches_equilibrium(self):
        simulation = IncentiveSimulation(RewardPolicy(0.1), seed=5)
        trajectory = simulation.run(60)
        tail = [outcome.active_validators for outcome in trajectory[-10:]]
        assert max(tail) - min(tail) <= max(3, int(0.2 * tail[-1]))

    def test_bad_bootstrap_rejected(self):
        with pytest.raises(ConsensusError):
            IncentiveSimulation(RewardPolicy(), n_candidates=3, bootstrap_validators=5)

    def test_epoch_outcome_fields(self):
        simulation = IncentiveSimulation(RewardPolicy(0.1), seed=6)
        outcome = simulation.run(5)[-1]
        assert outcome.active_validators >= 5
        assert outcome.pot_per_epoch > 0
        assert 0 < outcome.takeover_top3 <= 1
