"""Cascade stress scenarios: the collapse curve, rankings, forced unwind.

The outage cascade's final wave *is* the Table II counterfactual: every
market maker banned and the books emptied.  The first test states that
equivalence against :func:`table2` itself, so the cascade can never drift
from the replay it generalizes.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.analysis.market_makers import table2
from repro.chaos.cascade import (
    CASCADE_KINDS,
    rank_gateways,
    rank_market_makers,
    run_cascade,
)
from repro.api.registry import ArtifactError
from repro.cli import main


@pytest.fixture(scope="module")
def outage(history):
    """One shared two-wave outage cascade (replays are the expensive part)."""
    return run_cascade(history, kind="outage", waves=2, pairs=10)


class TestOutageCascade:
    def test_final_wave_is_the_table2_counterfactual(self, history):
        cascade = run_cascade(history, kind="outage", waves=1, pairs=0)
        final = cascade.final.delivery
        expected = table2(history)
        for got, want in (
            (final.cross_currency, expected.cross_currency),
            (final.single_currency, expected.single_currency),
            (final.total, expected.total),
        ):
            assert (got.submitted, got.delivered) == (
                want.submitted,
                want.delivered,
            )

    def test_wave_zero_is_the_intact_control(self, outage):
        first = outage.waves[0]
        assert first.removed == 0
        assert first.label == "intact"
        assert first.delivery is not None

    def test_removed_counts_grow_monotonically(self, outage, history):
        removed = [wave.removed for wave in outage.waves]
        assert removed == sorted(removed)
        assert removed[-1] == len(rank_market_makers(history))

    def test_delivery_collapses_along_the_curve(self, outage):
        rates = [wave.delivery.total.delivery_rate for wave in outage.waves]
        assert rates[-1] < rates[0]

    def test_every_wave_carries_a_health_report(self, outage):
        for wave in outage.waves:
            assert wave.health.settlability.pairs == 10
            assert 0.0 <= wave.health.settlability.fraction <= 1.0


class TestUnwindCascade:
    def test_rounds_close_lines_without_replaying(self, history):
        cascade = run_cascade(history, kind="unwind", waves=2, pairs=10)
        assert cascade.kind == "unwind"
        rounds = cascade.waves[1:]
        assert rounds, "the synthetic economy always has credited lines"
        for wave in rounds:
            assert wave.delivery is None
            assert "unwound" in wave.label
        removed = [wave.removed for wave in cascade.waves]
        assert removed[0] == 0
        assert all(a < b for a, b in zip(removed, removed[1:]))


class TestRankings:
    def test_maker_ranking_is_deterministic(self, history):
        first = rank_market_makers(history)
        assert first == rank_market_makers(history)
        assert set(first) == {m.account for m in history.cast.market_makers}

    def test_gateway_ranking_is_deterministic(self, history):
        first = rank_gateways(history)
        assert first == rank_gateways(history)
        assert set(first) == {g.account for g in history.cast.gateways}


class TestValidation:
    def test_unknown_kind_rejected(self, history):
        with pytest.raises(ArtifactError, match="unknown cascade kind"):
            run_cascade(history, kind="meteor")

    def test_zero_waves_rejected(self, history):
        with pytest.raises(ArtifactError, match="at least one wave"):
            run_cascade(history, kind="outage", waves=0)

    def test_kind_registry_is_closed(self):
        assert CASCADE_KINDS == ("outage", "gateway-default", "unwind")


class TestShardedEquivalence:
    """`--jobs 2` must be byte-identical to serial for both new artifacts."""

    SMALL = ["--payments", "1200", "--seed", "5"]

    @pytest.mark.parametrize(
        "command, flags",
        [
            ("health", ["--pairs", "40"]),
            ("cascade", ["--waves", "2", "--pairs", "20"]),
        ],
    )
    def test_jobs2_matches_serial_bytes(self, command, flags, tmp_path, capsys):
        serial = tmp_path / f"{command}-serial.txt"
        sharded = tmp_path / f"{command}-jobs2.txt"
        base = [command, *self.SMALL, *flags]
        assert main([*base, "--jobs", "1", "--out", str(serial)]) == 0
        assert main([*base, "--jobs", "2", "--out", str(sharded)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == sharded.read_bytes()
        assert (
            hashlib.sha256(serial.read_bytes()).hexdigest()
            == hashlib.sha256(sharded.read_bytes()).hexdigest()
        )
