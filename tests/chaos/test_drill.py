"""End-to-end chaos drills: degradation, recovery, and determinism."""

import pytest

from repro.chaos import ChaosInjector, FaultPlan, run_drill
from repro.chaos.drill import DRILL_RIPPLE_LABS, drill_roster
from repro.consensus.engine import ConsensusEngine


class TestPartitionDrill:
    @pytest.fixture(scope="class")
    def report(self):
        return run_drill("partition", seed=3, rounds=120)

    def test_node_degrades_but_survives(self, report):
        assert report.round_retries > 0
        assert report.failed_closes + report.degraded_closes > 0
        assert report.validated_closes > 0  # recovered after the heal
        assert 0.0 < report.availability < 1.0

    def test_health_covers_whole_roster(self, report):
        assert len(report.health) == len(drill_roster())
        for name in DRILL_RIPPLE_LABS:
            row = report.health_of(name)
            assert row.is_ripple_labs
            assert row.total_pages > 0
            assert 0 < row.valid_pages <= row.total_pages

    def test_lagging_validators_sign_few_valid_pages(self, report):
        trusted = report.health_of("R1")
        lagger = report.health_of("rippled.media.mit.edu")
        assert lagger.valid_fraction < trusted.valid_fraction

    def test_stream_survived_the_disconnect(self, report):
        assert report.counters.stream_disconnects >= 1
        assert report.stream_reconnects >= 1
        assert report.stream_replayed > 0

    def test_counters_mirror_node(self, report):
        assert report.counters.round_retries == report.round_retries
        assert report.counters.degraded_rounds == report.degraded_closes
        assert report.counters.failed_closes == report.failed_closes


class TestQuietPlan:
    @pytest.fixture(scope="class")
    def quiet(self):
        return run_drill(FaultPlan(name="none"), seed=7, rounds=40)

    def test_nothing_degrades(self, quiet):
        # The mixed roster still has lagging validators, so organic
        # retries are fine — but nothing may be *injected* and every
        # close must eventually validate.
        assert quiet.availability == 1.0
        assert quiet.degraded_closes == 0
        assert quiet.failed_closes == 0
        assert quiet.counters.faulted_rounds == 0
        assert quiet.counters.stream_disconnects == 0

    def test_perfect_roster_never_retries(self):
        from repro.node import default_validators

        report = run_drill(
            FaultPlan(name="none"), seed=7, rounds=30,
            validators=default_validators(7),
        )
        assert report.availability == 1.0
        assert report.round_retries == 0

    def test_drill_is_deterministic(self, quiet):
        again = run_drill(FaultPlan(name="none"), seed=7, rounds=40)
        assert again.health == quiet.health
        assert again.counters == quiet.counters
        assert again.payments_applied == quiet.payments_applied


class TestChaosOffBitIdentity:
    def test_empty_plan_changes_nothing_in_consensus(self):
        """An injector with no faults must not perturb a single RNG draw."""
        bare = ConsensusEngine(drill_roster(), seed=11)
        hooked = ConsensusEngine(
            drill_roster(),
            seed=11,
            chaos=ChaosInjector(FaultPlan(name="none"), seed=99),
        )
        report_bare = bare.run(30)
        report_hooked = hooked.run(30)
        assert report_bare.main_chain_hashes == report_hooked.main_chain_hashes
        assert report_bare.rounds_validated == report_hooked.rounds_validated


class TestEveryNamedPlanRuns:
    @pytest.mark.parametrize("name", ["delay", "crash", "byzantine",
                                      "disconnect", "mixed"])
    def test_plan_completes(self, name):
        report = run_drill(name, seed=1, rounds=60)
        assert report.closes_attempted == 60
        assert report.validated_closes > 0  # never a total outage
