"""The named adversarial scenario packs and the fork-threshold sweep.

``amores-cachin-delay`` must reproduce a recorded safety violation —
conflicting pages view-validated at one sequence — while ``sissle-fixed``
replays the identical fault schedule over a fully-overlapping UNL and
pays in liveness instead.  The ``fork_threshold`` sweep is pinned by a
golden sha256 and must be bit-for-bit identical serial vs ``--jobs 2``.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.api import ARTIFACTS
from repro.api.request import ArtifactRequest
from repro.chaos.drill import run_drill
from repro.chaos.scenarios import (
    AC_EQUIVOCATORS,
    SCENARIOS,
    SWEEP_SHARED,
    _amores_setup,
    drill_scenarios,
    run_scenario,
    scenario,
    sweep_points,
)
from repro.consensus.faults import Behaviour, ValidatorProfile
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator
from repro.obs.metrics import METRICS

#: Smoke scale: the attack window spans rounds 15..45 of 60.
ROUNDS = 60

#: sha256 of the rendered ``fork_threshold`` sweep at 60 close attempts
#: with the canonical seed — the determinism contract for this artifact.
GOLDEN_SWEEP_SHA256 = (
    "1d3f2e7976f11df6a4649eb32c57f662550a1877c6448792e1af7e6e2ee47c4f"
)


@pytest.fixture(scope="module")
def amores():
    return run_scenario("amores-cachin-delay", seed=7, rounds=ROUNDS)


@pytest.fixture(scope="module")
def sissle():
    return run_scenario("sissle-fixed", seed=7, rounds=ROUNDS)


class TestRegistry:
    def test_the_three_packs_exist(self):
        assert set(SCENARIOS) == {
            "amores-cachin-delay",
            "sissle-fixed",
            "unl-overlap-sweep",
        }
        assert drill_scenarios() == ["amores-cachin-delay", "sissle-fixed"]
        for pack in SCENARIOS.values():
            assert pack.description and pack.source and pack.expected

    def test_unknown_scenario_lists_known_names(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario("meteor")

    def test_sweep_pack_is_not_a_drill(self):
        with pytest.raises(KeyError, match="sweep pack"):
            run_scenario("unl-overlap-sweep")


class TestAmoresCachinDelay:
    def test_reproduces_a_recorded_safety_violation(self, amores):
        """The acceptance criterion: conflicting pages view-validated."""
        assert amores.safety_violations > 0
        assert amores.scenario == "amores-cachin-delay"
        for event in amores.fork_events:
            assert len(event.pages) >= 2
            assert len(event.pages) == len(set(event.pages))
            # every conflicting page reached a quorum in at least one view
            assert all(event.views)

    def test_violation_count_is_seed_deterministic(self, amores):
        again = run_scenario("amores-cachin-delay", seed=7, rounds=ROUNDS)
        assert [(e.sequence, e.pages) for e in again.fork_events] == [
            (e.sequence, e.pages) for e in amores.fork_events
        ]

    def test_equivocators_sign_both_sides_of_the_fork(self, amores):
        """The attack mechanism: each conflicting quorum leans on the
        equivocators' double signatures."""
        setup = _amores_setup(ROUNDS)
        validations = []
        run_drill(
            setup.plan,
            seed=7,
            rounds=ROUNDS,
            validators=setup.roster,
            network=setup.network,
            observers=(validations.append,),
        )
        event = amores.fork_events[0]
        signers = {
            page: {
                v.validator
                for v in validations
                if v.sequence == event.sequence and v.page_hash == page
            }
            for page in event.pages
        }
        for page in event.pages:
            assert signers[page] & set(AC_EQUIVOCATORS), (
                f"no equivocator signed page {page.hex()[:12]} "
                f"at sequence {event.sequence}"
            )

    def test_violations_are_mirrored_into_metrics(self):
        METRICS.reset()
        METRICS.enable()
        try:
            report = run_scenario("amores-cachin-delay", seed=7, rounds=ROUNDS)
            counters = METRICS.counters
            assert (
                counters["chaos.safety_violations"]
                == report.safety_violations
                > 0
            )
            assert (
                counters["chaos.liveness_violations"]
                == report.liveness_violations
            )
        finally:
            METRICS.disable()
            METRICS.reset()


class TestSissleFixed:
    def test_identical_schedule_full_overlap_never_forks(self, sissle):
        assert sissle.fork_events == []
        assert sissle.safety_violations == 0

    def test_liveness_pays_instead(self, sissle):
        """The heard gate needs signatures from across the partition, so
        the window costs closes, not agreement."""
        assert sissle.liveness_violations > 0
        assert sissle.failed_closes + sissle.degraded_closes > 0
        assert sissle.validated_closes > 0  # recovers outside the window

    def test_plan_schedules_match_the_attack(self):
        """Same windows, same equivocators, same stale proposers — only
        the UNL geometry differs between the two packs."""
        attack = SCENARIOS["amores-cachin-delay"].build(ROUNDS)
        fixed = SCENARIOS["sissle-fixed"].build(ROUNDS)
        strip = ("name",)
        attack_dict = {
            k: v for k, v in attack.plan.to_dict().items() if k not in strip
        }
        fixed_dict = {
            k: v for k, v in fixed.plan.to_dict().items() if k not in strip
        }
        assert attack_dict == fixed_dict
        # ...and in the fixed variant every validator shares one UNL
        unls = {v.unl.members for v in fixed.roster}
        assert len(unls) == 1
        assert len({v.unl.members for v in attack.roster}) == 3


class TestAdversarialProfile:
    def test_receive_probability_override_reaches_initial_position(self):
        unl = UNL.of(("v0",))
        pool = frozenset(bytes([i]) * 4 for i in range(32))
        rng = np.random.default_rng(0)
        everything = Validator(
            "v0",
            unl,
            ValidatorProfile(Behaviour.ACTIVE, receive_probability=1.0),
        )
        nothing = Validator(
            "v0",
            unl,
            ValidatorProfile(Behaviour.ACTIVE, receive_probability=0.0),
        )
        assert everything.initial_position(pool, rng) == set(pool)
        assert nothing.initial_position(pool, rng) == set()


class TestForkThreshold:
    @pytest.fixture(scope="class")
    def serial(self):
        entry = ARTIFACTS["fork_threshold"]
        request = ArtifactRequest(
            name="fork_threshold", options={"rounds": ROUNDS}
        )
        result = entry.compute_payload(request)
        return result, entry.render_text(result, request)

    def test_sweep_points_cover_the_grid(self):
        points = sweep_points(ROUNDS)
        assert [p["shared"] for p in points] == list(SWEEP_SHARED)
        assert [p["index"] for p in points] == list(range(len(SWEEP_SHARED)))

    def test_threshold_sits_between_the_camps(self, serial):
        """Forks at low overlap, heard-gate halts above — the empirical
        threshold the sweep exists to locate."""
        result, _ = serial
        payload = result.data
        assert payload["fork_threshold"] == pytest.approx(2 / 10)
        assert payload["min_safe_overlap"] == pytest.approx(3 / 11)
        rows = payload["rows"]
        assert [row["shared"] for row in rows] == list(SWEEP_SHARED)
        # once past the threshold the minority camp halts instead
        for row in rows:
            if row["overlap"] > payload["fork_threshold"]:
                assert row["forks"] == 0

    def test_rendered_sweep_matches_the_golden_sha256(self, serial):
        _, text = serial
        # the golden is ``sha256sum`` of CLI output, whose final print
        # appends one newline — hash the same bytes a user would
        digest = hashlib.sha256((text + "\n").encode("utf-8")).hexdigest()
        assert digest == GOLDEN_SWEEP_SHA256

    def test_jobs2_is_bit_identical_to_serial(self, serial):
        _, serial_text = serial
        entry = ARTIFACTS["fork_threshold"]
        request = ArtifactRequest(
            name="fork_threshold", options={"rounds": ROUNDS}, jobs=2
        )
        result = entry.compute_payload(request)
        assert entry.render_text(result, request) == serial_text
