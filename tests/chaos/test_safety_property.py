"""Safety under randomized faults (the paper's agreement property).

Any fault plan with byzantine weight strictly below 20 % of a roster with
fully overlapping UNLs must never yield two *conflicting* validated pages
at the same sequence — the f < n/5 agreement bound of the consensus white
paper, which the cited analyses (Chase & MacBrough; Amores-Sesar et al.)
show is tight only when UNLs diverge.  Liveness may degrade arbitrarily;
safety may not.

Both notions of "validated" are asserted: the master-UNL quorum the
engine itself applies, and the per-view quorum of
:mod:`repro.consensus.forks` — under full UNL overlap they must agree,
and neither may ever admit a fork.  ``random_plan`` draws equivocating
byzantine flips too, so the properties cover the vote-splitting attack
the ``amores-cachin-delay`` scenario weaponizes: with one shared UNL it
must stay harmless.
"""

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosInjector, random_plan
from repro.chaos.drill import drill_roster
from repro.consensus.forks import conflicting_validated_pages, find_forks
from repro.ledger.state import LedgerState
from repro.node import RetryPolicy, RippledNode

ROUNDS = 25


def _run_random_plan(seed: int) -> Tuple[RippledNode, list, List]:
    roster = drill_roster()
    plan = random_plan(seed, ROUNDS, [v.name for v in roster],
                       max_byzantine_fraction=0.2)
    node = RippledNode(
        state=LedgerState(),
        validators=roster,
        require_signatures=False,
        seed=seed,
        retry=RetryPolicy(max_retries=1),
        allow_degraded=True,
        chaos=ChaosInjector(plan, seed=seed),
    )
    validations: List = []
    node.consensus.subscribe(validations.append)
    for _ in range(ROUNDS):
        node.close_ledger()
    return node, roster, validations


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_no_conflicting_validated_pages(seed):
    node, _roster, validations = _run_random_plan(seed)

    # At most one page hash may ever reach the master quorum at a given
    # sequence — retried rounds included (their close times differ, so a
    # failed attempt can never lend support to a later one).
    conflicts = conflicting_validated_pages(
        validations, node.consensus.master_unl, node.consensus.quorum
    )
    assert not conflicts, (
        f"sequences {sorted(conflicts)} validated conflicting pages "
        f"under random plan {seed}"
    )

    # And the node's own main chain has one page per sequence.
    assert len(node.validated_hashes) == len(set(node.validated_hashes))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_no_per_view_forks_under_full_overlap(seed):
    """The per-view fork detector agrees: full overlap admits no fork.

    This is the exact checker the adversarial scenario packs use to
    *record* safety violations, pointed at the regime where the cited
    analyses prove there are none — equivocators and all.
    """
    node, roster, validations = _run_random_plan(seed)
    forks = find_forks(validations, roster, quorum=node.consensus.quorum)
    assert forks == [], (
        f"per-view forks {[event.describe() for event in forks]} "
        f"under random plan {seed}"
    )
