"""Safety under randomized faults (the paper's agreement property).

Any fault plan with byzantine weight strictly below 20 % of a roster with
fully overlapping UNLs must never yield two *conflicting* validated pages
at the same sequence — the f < n/5 agreement bound of the consensus white
paper, which the cited analyses (Chase & MacBrough; Amores-Sesar et al.)
show is tight only when UNLs diverge.  Liveness may degrade arbitrarily;
safety may not.
"""

from typing import Dict, List, Set

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosInjector, random_plan
from repro.chaos.drill import drill_roster
from repro.ledger.state import LedgerState
from repro.node import RetryPolicy, RippledNode

ROUNDS = 25


def _quorum_hashes_per_sequence(node, validations) -> Dict[int, Set[bytes]]:
    """Page hashes that reached the 80% master-UNL quorum, per sequence."""
    master = node.consensus.master_unl
    needed = node.consensus.quorum * len(master)
    support: Dict[int, Dict[bytes, Set[str]]] = {}
    for v in validations:
        if v.validator not in master:
            continue
        support.setdefault(v.sequence, {}).setdefault(
            v.page_hash, set()
        ).add(v.validator)
    return {
        sequence: {
            page for page, names in pages.items() if len(names) >= needed
        }
        for sequence, pages in support.items()
    }


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_no_conflicting_validated_pages(seed):
    roster = drill_roster()
    plan = random_plan(seed, ROUNDS, [v.name for v in roster],
                       max_byzantine_fraction=0.2)
    node = RippledNode(
        state=LedgerState(),
        validators=roster,
        require_signatures=False,
        seed=seed,
        retry=RetryPolicy(max_retries=1),
        allow_degraded=True,
        chaos=ChaosInjector(plan, seed=seed),
    )
    validations: List = []
    node.consensus.subscribe(validations.append)
    for _ in range(ROUNDS):
        node.close_ledger()

    # At most one page hash may ever reach quorum at a given sequence —
    # retried rounds included (their close times differ, so a failed
    # attempt can never lend support to a later one).
    for sequence, winners in _quorum_hashes_per_sequence(
        node, validations
    ).items():
        assert len(winners) <= 1, (
            f"sequence {sequence} validated {len(winners)} conflicting pages "
            f"under plan {plan.name}"
        )

    # And the node's own main chain has one page per sequence.
    assert len(node.validated_hashes) == len(set(node.validated_hashes))
