"""Fault plans: windows, merging, named builders, seeded generation."""

import math

import pytest

from repro.chaos.plan import (
    PLANS,
    ByzantineFault,
    FaultPlan,
    MessageFault,
    PartitionFault,
    Window,
    build_plan,
    random_plan,
)
from repro.consensus.faults import Behaviour

ROSTER = [f"v{i}" for i in range(13)]


class TestWindow:
    def test_half_open(self):
        w = Window(3, 7)
        assert not w.covers(2)
        assert w.covers(3)
        assert w.covers(6)
        assert not w.covers(7)

    def test_empty_window_covers_nothing(self):
        assert not Window(5, 5).covers(5)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            Window(7, 3)


class TestRoundFaultsMerging:
    def test_quiet_round_returns_none(self):
        plan = build_plan("partition", 100, ROSTER)
        assert plan.round_faults(0) is None
        assert plan.round_faults(99) is None

    def test_partition_window_active(self):
        plan = build_plan("partition", 100, ROSTER)
        faults = plan.round_faults(30)
        assert faults is not None
        assert len(faults.partitions) == 2
        assert frozenset.union(*faults.partitions) == frozenset(ROSTER)

    def test_overlapping_schedules_merge(self):
        plan = FaultPlan(
            name="merge",
            messages=(
                MessageFault(Window(0, 10), extra_loss=0.2, blocked=("v0",)),
                MessageFault(Window(5, 15), extra_loss=0.4, stale=("v1",)),
            ),
            byzantine=(ByzantineFault("v2", Window(0, 10)),),
        )
        faults = plan.round_faults(7)
        assert faults.extra_loss == 0.4  # max, not sum
        assert faults.blocked == frozenset({"v0"})
        assert faults.stale == frozenset({"v1"})
        assert faults.behaviour_overrides["v2"] is Behaviour.BYZANTINE

    def test_crash_window(self):
        plan = build_plan("crash", 100, ROSTER)
        crashed_rounds = [
            r for r in range(100)
            if plan.round_faults(r) and plan.round_faults(r).crashed
        ]
        assert crashed_rounds  # rolling crashes actually scheduled
        # never the whole roster at once
        for r in crashed_rounds:
            assert len(plan.round_faults(r).crashed) < len(ROSTER)


class TestNamedPlans:
    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_every_plan_builds(self, name):
        plan = build_plan(name, 120, ROSTER)
        assert plan.name == name
        assert plan.description

    def test_unknown_plan_raises(self):
        with pytest.raises(KeyError, match="unknown fault plan"):
            build_plan("meteor", 100, ROSTER)

    def test_byzantine_plan_below_one_fifth(self):
        plan = build_plan("byzantine", 100, ROSTER)
        assert 0 < len(plan.byzantine_names()) < len(ROSTER) / 5

    def test_stream_plan_uses_time_not_rounds(self):
        from repro.consensus.engine import CLOSE_INTERVAL_SECONDS

        plan = build_plan("disconnect", 100, ROSTER)
        # windows are in seconds (rounds * close interval), not round indices
        assert all(
            f.window.start % CLOSE_INTERVAL_SECONDS == 0 for f in plan.stream
        )
        assert max(f.window.end for f in plan.stream) > 100
        assert plan.stream_disconnected(plan.stream[0].window.start)
        assert not plan.stream_disconnected(plan.stream[0].window.end)


class TestRandomPlan:
    def test_seed_stable(self):
        assert random_plan(42, 80, ROSTER) == random_plan(42, 80, ROSTER)

    def test_seeds_differ(self):
        assert random_plan(1, 80, ROSTER) != random_plan(2, 80, ROSTER)

    @pytest.mark.parametrize("seed", range(25))
    def test_byzantine_weight_strictly_below_cap(self, seed):
        plan = random_plan(seed, 80, ROSTER, max_byzantine_fraction=0.2)
        assert len(plan.byzantine_names()) < math.ceil(len(ROSTER) * 0.2)
