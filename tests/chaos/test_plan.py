"""Fault plans: windows, merging, named builders, seeded generation."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.plan import (
    PLANS,
    ByzantineFault,
    CrashFault,
    FaultPlan,
    MessageFault,
    PartitionFault,
    StreamFault,
    Window,
    build_plan,
    random_plan,
)
from repro.consensus.faults import Behaviour

ROSTER = [f"v{i}" for i in range(13)]


class TestWindow:
    def test_half_open(self):
        w = Window(3, 7)
        assert not w.covers(2)
        assert w.covers(3)
        assert w.covers(6)
        assert not w.covers(7)

    def test_empty_window_covers_nothing(self):
        assert not Window(5, 5).covers(5)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            Window(7, 3)


class TestRoundFaultsMerging:
    def test_quiet_round_returns_none(self):
        plan = build_plan("partition", 100, ROSTER)
        assert plan.round_faults(0) is None
        assert plan.round_faults(99) is None

    def test_partition_window_active(self):
        plan = build_plan("partition", 100, ROSTER)
        faults = plan.round_faults(30)
        assert faults is not None
        assert len(faults.partitions) == 2
        assert frozenset.union(*faults.partitions) == frozenset(ROSTER)

    def test_overlapping_schedules_merge(self):
        plan = FaultPlan(
            name="merge",
            messages=(
                MessageFault(Window(0, 10), extra_loss=0.2, blocked=("v0",)),
                MessageFault(Window(5, 15), extra_loss=0.4, stale=("v1",)),
            ),
            byzantine=(ByzantineFault("v2", Window(0, 10)),),
        )
        faults = plan.round_faults(7)
        assert faults.extra_loss == 0.4  # max, not sum
        assert faults.blocked == frozenset({"v0"})
        assert faults.stale == frozenset({"v1"})
        assert faults.behaviour_overrides["v2"] is Behaviour.BYZANTINE

    def test_crash_window(self):
        plan = build_plan("crash", 100, ROSTER)
        crashed_rounds = [
            r for r in range(100)
            if plan.round_faults(r) and plan.round_faults(r).crashed
        ]
        assert crashed_rounds  # rolling crashes actually scheduled
        # never the whole roster at once
        for r in crashed_rounds:
            assert len(plan.round_faults(r).crashed) < len(ROSTER)


class TestNamedPlans:
    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_every_plan_builds(self, name):
        plan = build_plan(name, 120, ROSTER)
        assert plan.name == name
        assert plan.description

    def test_unknown_plan_raises(self):
        with pytest.raises(KeyError, match="unknown fault plan"):
            build_plan("meteor", 100, ROSTER)

    def test_byzantine_plan_below_one_fifth(self):
        plan = build_plan("byzantine", 100, ROSTER)
        assert 0 < len(plan.byzantine_names()) < len(ROSTER) / 5

    def test_stream_plan_uses_time_not_rounds(self):
        from repro.consensus.engine import CLOSE_INTERVAL_SECONDS

        plan = build_plan("disconnect", 100, ROSTER)
        # windows are in seconds (rounds * close interval), not round indices
        assert all(
            f.window.start % CLOSE_INTERVAL_SECONDS == 0 for f in plan.stream
        )
        assert max(f.window.end for f in plan.stream) > 100
        assert plan.stream_disconnected(plan.stream[0].window.start)
        assert not plan.stream_disconnected(plan.stream[0].window.end)


class TestWindowEdgeCases:
    def test_zero_length_windows_never_activate(self):
        """A Window(k, k) schedule is inert on every fault kind."""
        w = Window(5, 5)
        plan = FaultPlan(
            name="inert",
            messages=(MessageFault(w, extra_loss=0.9, blocked=("v0",)),),
            partitions=(
                PartitionFault(w, (frozenset(ROSTER[:6]), frozenset(ROSTER[6:]))),
            ),
            crashes=(CrashFault("v1", w),),
            byzantine=(ByzantineFault("v2", w, equivocate=True),),
            stream=(StreamFault(w),),
        )
        assert all(plan.round_faults(r) is None for r in range(12))
        assert not plan.stream_disconnected(5)

    def test_overlapping_partitions_last_wins(self):
        """Two partition schedules covering one round: the later entry's
        groups apply whole — partitions replace, they do not union."""
        first = (frozenset(ROSTER[:3]), frozenset(ROSTER[3:]))
        second = (frozenset(ROSTER[:9]), frozenset(ROSTER[9:]))
        plan = FaultPlan(
            name="overlap",
            partitions=(
                PartitionFault(Window(0, 10), first),
                PartitionFault(Window(5, 15), second),
            ),
        )
        assert plan.round_faults(2).partitions == first
        assert plan.round_faults(7).partitions == second
        assert plan.round_faults(12).partitions == second

    def test_overlapping_byzantine_flips_merge_equivocation(self):
        """Same validator, overlapping windows, one of them equivocating:
        the override is applied once and equivocation is sticky wherever
        any covering flip asks for it."""
        plan = FaultPlan(
            name="overlap-byz",
            byzantine=(
                ByzantineFault("v2", Window(0, 10)),
                ByzantineFault("v2", Window(5, 15), equivocate=True),
            ),
        )
        early = plan.round_faults(2)
        both = plan.round_faults(7)
        late = plan.round_faults(12)
        assert early.behaviour_overrides["v2"] is Behaviour.BYZANTINE
        assert early.equivocating == frozenset()
        assert both.behaviour_overrides["v2"] is Behaviour.BYZANTINE
        assert both.equivocating == frozenset({"v2"})
        assert late.equivocating == frozenset({"v2"})

    def test_overlapping_message_faults_union_names_max_loss(self):
        plan = FaultPlan(
            name="overlap-msg",
            messages=(
                MessageFault(Window(0, 10), extra_loss=0.5, stale=("v0",)),
                MessageFault(Window(0, 10), extra_loss=0.1, stale=("v1",)),
            ),
        )
        faults = plan.round_faults(3)
        assert faults.extra_loss == 0.5
        assert faults.stale == frozenset({"v0", "v1"})


class TestFingerprint:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_plan_round_trips_through_fingerprint(self, seed):
        plan = random_plan(seed, 80, ROSTER)
        wire = json.loads(json.dumps(plan.to_dict()))
        rebuilt = FaultPlan.from_dict(wire)
        assert rebuilt.fingerprint() == plan.fingerprint()
        assert rebuilt.to_dict() == plan.to_dict()
        # round_faults semantics survive the round trip too
        for round_index in (0, 20, 79):
            assert rebuilt.round_faults(round_index) == plan.round_faults(
                round_index
            )

    def test_fingerprint_ignores_tuple_ordering(self):
        """blocked/stale/group orderings are canonicalized away."""
        a = FaultPlan(
            name="p",
            messages=(MessageFault(Window(0, 5), blocked=("v0", "v1")),),
            partitions=(
                PartitionFault(
                    Window(0, 5), (frozenset(("v2", "v3")), frozenset(("v4",)))
                ),
            ),
        )
        b = FaultPlan(
            name="p",
            messages=(MessageFault(Window(0, 5), blocked=("v1", "v0")),),
            partitions=(
                PartitionFault(
                    Window(0, 5), (frozenset(("v3", "v2")), frozenset(("v4",)))
                ),
            ),
        )
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_schedules(self):
        a = FaultPlan(name="p", crashes=(CrashFault("v0", Window(0, 5)),))
        b = FaultPlan(name="p", crashes=(CrashFault("v0", Window(0, 6)),))
        c = FaultPlan(
            name="p",
            byzantine=(ByzantineFault("v0", Window(0, 5), equivocate=True),),
        )
        d = FaultPlan(name="p", byzantine=(ByzantineFault("v0", Window(0, 5)),))
        assert len({p.fingerprint() for p in (a, b, c, d)}) == 4


class TestRandomPlan:
    def test_seed_stable(self):
        assert random_plan(42, 80, ROSTER) == random_plan(42, 80, ROSTER)

    def test_seeds_differ(self):
        assert random_plan(1, 80, ROSTER) != random_plan(2, 80, ROSTER)

    @pytest.mark.parametrize("seed", range(25))
    def test_byzantine_weight_strictly_below_cap(self, seed):
        plan = random_plan(seed, 80, ROSTER, max_byzantine_fraction=0.2)
        assert len(plan.byzantine_names()) < math.ceil(len(ROSTER) * 0.2)
