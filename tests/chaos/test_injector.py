"""The chaos injector: counter accounting and stream transitions."""

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultPlan, StreamFault, Window, build_plan
from repro.consensus.faults import RoundFaults
from repro.consensus.rounds import RoundOutcome

ROSTER = [f"v{i}" for i in range(10)]


def outcome(validated: bool = True) -> RoundOutcome:
    return RoundOutcome(
        round_index=0,
        sequence=1,
        close_time=0,
        validated_hash=b"\x01" * 32 if validated else None,
        participants=list(ROSTER),
    )


class TestRoundAccounting:
    def test_quiet_plan_counts_nothing(self):
        injector = ChaosInjector(FaultPlan(name="none"), seed=0)
        assert injector.faults_for_round(5, []) is None
        assert all(v == 0 for v in injector.counters.as_dict().values())

    def test_partition_round_counted(self):
        injector = ChaosInjector(build_plan("partition", 100, ROSTER), seed=0)
        faults = injector.faults_for_round(30, [])
        injector.note_round(faults, outcome(validated=False))
        counts = injector.counters.as_dict()
        assert counts["faulted_rounds"] == 1
        assert counts["partition_rounds"] == 1
        assert counts["rounds_not_validated"] == 1

    def test_blocked_speakers_count_suppressed_messages(self):
        injector = ChaosInjector(FaultPlan(name="x"), seed=0)
        faults = RoundFaults(blocked=frozenset({"v0", "v1"}))
        injector.note_round(faults, outcome())
        # each silenced speaker loses a message to every other participant
        assert injector.counters.messages_suppressed == 2 * (len(ROSTER) - 1)


class TestStreamTransitions:
    def test_one_reconnect_per_window(self):
        plan = FaultPlan(
            name="s",
            stream=(StreamFault(Window(10, 20)), StreamFault(Window(40, 50))),
        )
        injector = ChaosInjector(plan, seed=0)
        for t in range(60):
            injector.stream_disconnected(t)
        # one transition per window, not one per query
        assert injector.counters.stream_disconnects == 2
