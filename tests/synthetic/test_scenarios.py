"""Tests for the what-if economy scenarios."""

import pytest

from repro.analysis import TransactionDataset, currency_ranking, path_structure
from repro.analysis.market_makers import offer_concentration
from repro.synthetic.generator import LedgerHistoryGenerator
from repro.synthetic.scenarios import (
    NoSpamEconomyConfig,
    build_no_spam,
    dense_makers_config,
    late_era_config,
    no_spam_config,
    no_spam_currency_weights,
)
from repro.synthetic.workload import payment_counts


@pytest.fixture(scope="module")
def no_spam_history():
    return LedgerHistoryGenerator(build_no_spam(n_payments=2_500)).generate()


class TestNoSpam:
    def test_weights_renormalized(self):
        weights = no_spam_currency_weights()
        assert "CCK" not in weights and "MTL" not in weights
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_config_weights_total_one(self):
        config = build_no_spam(2_000)
        assert sum(config.currency_weights().values()) == pytest.approx(1.0)

    def test_counts_have_no_spam(self):
        counts = payment_counts(build_no_spam(2_000))
        assert counts["mtl_spam"] == 0
        assert counts["long_spam"] == 0
        assert counts["cck"] == 0
        assert counts["spin"] == 0
        assert counts["zero"] == 0
        assert sum(counts.values()) == 2_000

    def test_no_spam_history_is_clean(self, no_spam_history):
        dataset = TransactionDataset.from_records(no_spam_history.records)
        ranking = currency_ranking(dataset)
        codes = [usage.code for usage in ranking]
        assert "CCK" not in codes and "MTL" not in codes
        structure = path_structure(dataset)
        # No 8-hop spam spike, no 44-hop outlier.
        assert structure.hops_histogram.get(8, 0) == 0
        assert structure.hops_histogram.get(44, 0) == 0
        assert structure.parallel_histogram.get(6, 0) == 0

    def test_no_spam_xrp_share_rises(self, no_spam_history):
        dataset = TransactionDataset.from_records(no_spam_history.records)
        ranking = currency_ranking(dataset)
        assert ranking[0].code == "XRP"
        # With the 30% spam mass gone, XRP's share grows well beyond 49%.
        assert ranking[0].share > 0.6

    def test_no_spam_config_helper(self):
        config = no_spam_config()
        assert config.ripple_spin_share == 0.0
        assert config.account_zero_share == 0.0


class TestOtherScenarios:
    def test_late_era_window(self):
        config = late_era_config(1_000)
        history = LedgerHistoryGenerator(config).generate()
        timestamps = [record.timestamp for record in history.records]
        assert min(timestamps) >= config.start_time

    def test_dense_makers_flatter_concentration(self):
        dense = LedgerHistoryGenerator(dense_makers_config(2_000)).generate()
        concentration = offer_concentration(dense.offer_records)
        # With 240 makers and a flat exponent, the top 10 hold much less.
        assert concentration.share_of_top(10) < 0.35

    def test_scenarios_are_cache_distinct(self):
        # Different scenario types with equal fields must not collide in
        # the generate_history cache (hash includes the subclass).
        base = build_no_spam(2_000)
        assert isinstance(base, NoSpamEconomyConfig)
        assert base.currency_weights() != late_era_config(2_000).currency_weights()
