"""Tests for the synthetic economy: config, workload, actors, generator."""

import numpy as np
import pytest

from repro.errors import SyntheticError
from repro.ledger.accounts import ACCOUNT_ZERO
from repro.ledger.currency import Currency
from repro.ledger.state import LedgerState
from repro.synthetic.actors import build_cast
from repro.synthetic.config import EconomyConfig, small_config
from repro.synthetic.distributions import model_for, sample_amounts, survival_function
from repro.synthetic.records import (
    KIND_CCK,
    KIND_FIAT,
    KIND_LONG_SPAM,
    KIND_MTL_SPAM,
    KIND_SPIN,
    KIND_XRP,
    KIND_ZERO,
)
from repro.synthetic.workload import (
    build_schedule,
    fiat_currency_weights,
    payment_counts,
    zipf_maker_weights,
)


class TestConfig:
    def test_defaults_valid(self):
        EconomyConfig()

    def test_invalid_sizes_rejected(self):
        with pytest.raises(SyntheticError):
            EconomyConfig(n_payments=0)
        with pytest.raises(SyntheticError):
            EconomyConfig(n_users=5)
        with pytest.raises(SyntheticError):
            EconomyConfig(n_gateways=1)
        with pytest.raises(SyntheticError):
            EconomyConfig(growth=0.0)

    def test_currency_weights_sum_to_one(self):
        weights = EconomyConfig().currency_weights()
        assert sum(weights.values()) == pytest.approx(1.0)
        assert weights["XRP"] == pytest.approx(0.49)

    def test_config_hashable_for_caching(self):
        assert hash(small_config()) == hash(small_config())


class TestDistributions:
    def test_amounts_positive_and_micro_precision(self):
        rng = np.random.default_rng(0)
        amounts = sample_amounts(Currency("USD"), rng, 1000)
        assert (amounts > 0).all()
        assert np.allclose(amounts, np.round(amounts, 6))

    def test_btc_is_micro_usd_is_not(self):
        rng = np.random.default_rng(0)
        btc = np.median(sample_amounts(Currency("BTC"), rng, 2000))
        usd = np.median(sample_amounts(Currency("USD"), rng, 2000))
        assert btc < 1.0 < usd

    def test_mtl_is_enormous(self):
        rng = np.random.default_rng(0)
        mtl = np.median(sample_amounts(Currency("MTL"), rng, 500))
        assert 1e8 < mtl < 1e10

    def test_price_points_repeat(self):
        rng = np.random.default_rng(0)
        usd = sample_amounts(Currency("USD"), rng, 5000)
        values, counts = np.unique(usd, return_counts=True)
        # Price points create heavy repetition (needed for the Fig. 3
        # amount-only IG collapse).
        assert counts.max() > 100

    def test_unknown_currency_gets_default_model(self):
        assert model_for(Currency("QQQ")) is model_for(Currency("WWW"))

    def test_survival_function(self):
        s = survival_function([1, 2, 3, 4], grid=[0, 2, 5])
        assert s[0] == 1.0
        assert s[1] == pytest.approx(0.5)
        assert s[2] == 0.0


class TestWorkload:
    def test_counts_sum_to_total(self):
        config = small_config()
        counts = payment_counts(config)
        assert sum(counts.values()) == config.n_payments

    def test_composition_matches_paper(self):
        counts = payment_counts(EconomyConfig(n_payments=100_000))
        total = sum(counts.values())
        xrp_mass = counts[KIND_XRP] + counts[KIND_SPIN] + counts[KIND_ZERO]
        assert xrp_mass / total == pytest.approx(0.49, abs=0.01)
        assert counts[KIND_MTL_SPAM] / total == pytest.approx(0.143, abs=0.01)
        assert counts[KIND_CCK] / total == pytest.approx(0.155, abs=0.01)

    def test_schedule_sorted_and_quantized(self):
        config = small_config(n_payments=500)
        slots = build_schedule(config, np.random.default_rng(0))
        times = [slot.timestamp for slot in slots]
        assert times == sorted(times)
        assert all(t % 5 == 0 for t in times)
        assert all(config.start_time <= t <= config.end_time for t in times)

    def test_spin_only_after_launch(self):
        config = small_config(n_payments=2000)
        slots = build_schedule(config, np.random.default_rng(0))
        spins = [s for s in slots if s.kind == KIND_SPIN]
        assert spins
        assert all(s.timestamp >= config.spin_launch_time for s in spins)

    def test_mtl_before_snapshot(self):
        config = small_config(n_payments=2000)
        slots = build_schedule(config, np.random.default_rng(0))
        mtl = [s for s in slots if s.kind in (KIND_MTL_SPAM, KIND_LONG_SPAM)]
        assert mtl
        assert all(s.timestamp <= config.snapshot_time for s in mtl)

    def test_cck_front_loaded(self):
        config = small_config(n_payments=4000)
        slots = build_schedule(config, np.random.default_rng(0))
        span = config.end_time - config.start_time
        cck = np.array([s.timestamp for s in slots if s.kind == KIND_CCK])
        fiat = np.array([s.timestamp for s in slots if s.kind == KIND_FIAT])
        assert cck.mean() < fiat.mean()

    def test_fiat_weights_exclude_reserved(self):
        codes, weights = fiat_currency_weights(small_config())
        assert "XRP" not in codes and "CCK" not in codes and "MTL" not in codes
        assert weights.sum() == pytest.approx(1.0)

    def test_zipf_weights(self):
        weights = zipf_maker_weights(EconomyConfig())
        assert weights.sum() == pytest.approx(1.0)
        assert weights[0] > weights[-1]


class TestCast:
    @pytest.fixture(scope="class")
    def cast_state(self):
        config = small_config()
        state = LedgerState()
        currencies = [Currency(code) for code in config.currency_weights()]
        cast = build_cast(config, state, np.random.default_rng(0), currencies)
        return cast, state, config

    def test_population_sizes(self, cast_state):
        cast, state, config = cast_state
        assert len(cast.gateways) == config.n_gateways
        assert len(cast.market_makers) == config.n_market_makers
        assert len(cast.users) == config.n_users
        assert len(cast.hubs) == 2

    def test_account_zero_exists_with_supply(self, cast_state):
        cast, state, _ = cast_state
        assert state.xrp_balance(ACCOUNT_ZERO) > 10 ** 16

    def test_every_currency_has_an_issuer(self, cast_state):
        cast, state, config = cast_state
        for code in config.currency_weights():
            if code in ("XRP", "CCK", "MTL"):
                continue
            assert cast.gateways_for(Currency(code)), code

    def test_tail_currencies_have_two_issuers(self, cast_state):
        cast, _, _ = cast_state
        assert len(cast.gateways_for(Currency("DVC"))) >= 2

    def test_users_cannot_ripple(self, cast_state):
        cast, state, _ = cast_state
        assert all(
            not state.account(user.account).allows_rippling for user in cast.users
        )
        assert all(
            state.account(gw.account).allows_rippling for gw in cast.gateways
        )

    def test_mtl_chains_shape(self, cast_state):
        cast, _, config = cast_state
        assert len(cast.mtl_chains) == config.mtl_spam_parallel_paths
        assert all(len(chain) == config.mtl_spam_hops for chain in cast.mtl_chains)
        assert len(cast.long_chain) == 44

    def test_gateways_mostly_declare_no_trust(self, cast_state):
        cast, state, _ = cast_state
        declaring = sum(
            1 for gw in cast.gateways if state.lines_trusted_by(gw.account)
        )
        assert declaring <= 3

    def test_labels(self, cast_state):
        cast, _, _ = cast_state
        assert cast.label(cast.gateways[0].account) == cast.gateways[0].name
        assert cast.label(cast.hubs[0]) == "rp2PaY...X1mEx7"


class TestGenerator:
    def test_record_count_and_low_failure(self, history):
        assert len(history.records) == history.config.n_payments
        assert history.failed_payments <= history.config.n_payments * 0.02

    def test_kind_composition(self, history):
        kinds = {}
        for record in history.records:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        total = len(history.records)
        xrp_mass = kinds[KIND_XRP] + kinds[KIND_SPIN] + kinds[KIND_ZERO]
        assert xrp_mass / total == pytest.approx(0.49, abs=0.02)
        assert kinds[KIND_MTL_SPAM] / total == pytest.approx(0.143, abs=0.02)

    def test_mtl_spam_path_shape(self, history):
        spam = [r for r in history.records if r.kind == KIND_MTL_SPAM and r.delivered]
        assert spam
        assert all(r.intermediate_hops == 8 for r in spam)
        assert all(r.parallel_paths == 6 for r in spam)

    def test_long_spam_44_hops(self, history):
        outliers = [r for r in history.records if r.kind == KIND_LONG_SPAM and r.delivered]
        assert outliers
        assert all(r.intermediate_hops == 44 for r in outliers)

    def test_xrp_direct_has_no_intermediaries(self, history):
        xrp = [r for r in history.records if r.is_xrp_direct and r.delivered]
        assert xrp
        assert all(r.intermediate_hops == 0 for r in xrp)

    def test_spin_payments_to_spin_account(self, history):
        spin_account = history.cast.special["ripple_spin"]
        spins = [r for r in history.records if r.kind == KIND_SPIN]
        assert spins
        assert all(r.destination == spin_account for r in spins)

    def test_account_zero_spam_touches_account_zero(self, history):
        zero = [r for r in history.records if r.kind == KIND_ZERO]
        assert zero
        assert all(
            r.destination == ACCOUNT_ZERO or r.sender == ACCOUNT_ZERO for r in zero
        )

    def test_snapshot_and_replay_intents(self, history):
        assert history.snapshot_state is not None
        assert history.replay_intents
        payments = [i for i in history.replay_intents if i.kind != "deposit"]
        assert payments
        assert all(
            i.timestamp >= history.config.snapshot_time for i in payments
        )

    def test_snapshot_is_independent_copy(self, history):
        # Mutating the snapshot must not affect the live state.
        snap_total = history.snapshot_state.total_xrp_drops()
        live_total = history.state.total_xrp_drops()
        assert snap_total >= live_total  # fees burned after snapshot

    def test_offers_recorded(self, history):
        assert len(history.offer_records) == history.config.n_offers

    def test_attacker_piled_up_mtl_debt(self, history):
        attacker = history.cast.special["mtl_attacker"]
        balance = history.state.iou_balance(attacker, Currency("MTL"))
        assert balance.to_float() < -1e10  # enormous debt, as in the paper

    def test_deterministic_given_seed(self):
        from repro.synthetic.generator import LedgerHistoryGenerator

        a = LedgerHistoryGenerator(small_config(seed=42, n_payments=150)).generate()
        b = LedgerHistoryGenerator(small_config(seed=42, n_payments=150)).generate()
        assert [r.amount for r in a.records] == [r.amount for r in b.records]
        assert [r.sender for r in a.records] == [r.sender for r in b.records]
