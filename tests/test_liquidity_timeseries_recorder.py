"""Tests for liquidity metrics, time-series bursts, and stream capture."""

import numpy as np
import pytest

from repro.analysis.timeseries import (
    bucketize,
    campaign_window,
    concentration_in_time,
    currency_series,
    detect_bursts,
)
from repro.errors import AnalysisError, StreamError
from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import USD, Currency
from repro.ledger.state import LedgerState
from repro.payments.graph import TrustGraph
from repro.payments.liquidity import (
    max_flow,
    relayer_removal_curve,
    sample_deliverability,
)
from repro.stream.collector import StreamCollector
from repro.stream.recorder import StreamRecorder, iter_capture, replay_capture
from repro.stream.events import StreamEvent
from repro.consensus.proposals import Validation


def usd(value):
    return Amount.from_value(USD, value)


class TestMaxFlow:
    def build_diamond(self):
        """src -> (a: 30 | b: 50) -> dst, plus direct src->dst 10."""
        state = LedgerState()
        accounts = {
            name: account_from_name(name, namespace="liq")
            for name in ("src", "a", "b", "dst")
        }
        for account in accounts.values():
            state.create_account(account, 10 ** 9)
        state.set_trust(accounts["a"], accounts["src"], usd(30))
        state.set_trust(accounts["b"], accounts["src"], usd(50))
        state.set_trust(accounts["dst"], accounts["a"], usd(100))
        state.set_trust(accounts["dst"], accounts["b"], usd(100))
        state.set_trust(accounts["dst"], accounts["src"], usd(10))
        return state, accounts

    def test_max_flow_sums_parallel_routes(self):
        state, accounts = self.build_diamond()
        graph = TrustGraph(state, USD)
        flow = max_flow(graph, accounts["src"], accounts["dst"])
        assert flow == pytest.approx(30 + 50 + 10)

    def test_max_flow_zero_when_disconnected(self):
        state, accounts = self.build_diamond()
        lonely = account_from_name("lonely", namespace="liq")
        state.create_account(lonely, 10 ** 9)
        graph = TrustGraph(state, USD)
        assert max_flow(graph, accounts["src"], lonely) == 0.0

    def test_max_flow_does_not_mutate_state(self):
        state, accounts = self.build_diamond()
        graph = TrustGraph(state, USD)
        max_flow(graph, accounts["src"], accounts["dst"])
        # All balances untouched.
        assert all(line.balance.is_zero for line in state.iter_trustlines())


class TestDeliverability:
    def test_sampled_deliverability(self, history):
        users = [user.account for user in history.cast.users[:60]]
        report = sample_deliverability(
            history.state, Currency("USD"), users, pairs=20, seed=1
        )
        assert 0.0 <= report.deliverability <= 1.0
        assert report.pairs_sampled == 20

    def test_banning_relayers_reduces_deliverability(self, history):
        users = [user.account for user in history.cast.users[:60]]
        makers = history.cast.market_maker_accounts()
        curve = relayer_removal_curve(
            history.state,
            Currency("USD"),
            users,
            makers,
            steps=(0, len(makers)),
            pairs=25,
            seed=2,
        )
        assert curve[0][1] >= curve[-1][1]


class TestTimeSeries:
    def test_bucketize_covers_everything(self, dataset):
        grid, counts = bucketize(dataset.timestamps)
        assert counts.sum() == len(dataset)
        assert len(grid) == len(counts)

    def test_currency_series_shares_grid(self, dataset):
        grid_all, _ = bucketize(dataset.timestamps)
        grid_mtl, counts_mtl = currency_series(dataset, "MTL")
        assert np.array_equal(grid_all, grid_mtl)
        assert counts_mtl.sum() == int(dataset.rows_for_currency("MTL").sum())

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            bucketize(np.array([], dtype=np.int64))

    def test_burst_detector_finds_synthetic_burst(self):
        grid = np.arange(0, 100) * 1000
        counts = np.full(100, 5)
        counts[40:45] = 100
        bursts = detect_bursts(grid, counts)
        assert len(bursts) == 1
        assert bursts[0].start == 40_000
        assert bursts[0].peak_count == 100

    def test_no_burst_in_flat_series(self):
        grid = np.arange(0, 50) * 1000
        counts = np.full(50, 7)
        assert detect_bursts(grid, counts) == []

    def test_mtl_campaign_is_concentrated(self, dataset):
        # MTL is a campaign; USD is organic traffic.
        assert concentration_in_time(dataset, "MTL") < concentration_in_time(
            dataset, "USD"
        )

    def test_campaign_window_of_missing_currency(self, dataset):
        assert campaign_window(dataset, "ZZZ") is None

    def test_mtl_burst_detected_in_history(self, dataset):
        grid, counts = currency_series(dataset, "MTL")
        bursts = detect_bursts(grid, counts, threshold_factor=2.0)
        assert bursts  # the mid-2014 campaign shows up
        # Every detected peak falls inside the campaign's 90 % window.
        window = campaign_window(dataset, "MTL")
        assert window is not None
        low, high = window
        for burst in bursts:
            assert low - 7 * 86400 <= burst.peak_bucket <= high + 7 * 86400


class TestStreamRecorder:
    def make_event(self, index):
        return StreamEvent(
            validation=Validation(
                validator=f"v{index % 3}",
                sequence=index,
                page_hash=bytes([index % 256]) * 32,
                sign_time=index * 5,
            ),
            received_at=index * 5 + 1,
        )

    def test_record_and_replay_roundtrip(self, tmp_path):
        path = str(tmp_path / "capture.jsonl")
        with StreamRecorder(path) as recorder:
            for index in range(20):
                recorder(self.make_event(index))
            assert recorder.events_written == 20
        events = list(iter_capture(path))
        assert len(events) == 20
        assert events[0].validator == "v0"
        assert events[7].page_hash == bytes([7]) * 32

    def test_replay_into_collector(self, tmp_path):
        path = str(tmp_path / "capture.jsonl")
        with StreamRecorder(path) as recorder:
            for index in range(12):
                recorder(self.make_event(index))
        collector = StreamCollector()
        assert replay_capture(path, collector) == 12
        assert collector.total_counts() == {"v0": 4, "v1": 4, "v2": 4}

    def test_unopened_recorder_raises(self, tmp_path):
        recorder = StreamRecorder(str(tmp_path / "x.jsonl"))
        with pytest.raises(StreamError):
            recorder(self.make_event(0))

    def test_missing_capture(self):
        with pytest.raises(StreamError):
            list(iter_capture("/nonexistent/capture.jsonl"))

    def test_bad_header(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write("garbage\n")
        with pytest.raises(StreamError):
            list(iter_capture(path))
