"""Throughput regression gate — the CI benchmark check.

Runs (or is handed) a fresh node benchmark and fails if either gated
metric (``engine_submit_ops``, ``plan_payment_ops``) drops more than the
tolerance below its reference.  The reference resolves in two steps:

1. **durable history** (``--history``, a JSONL file kept in the CI bench
   cache): once at least ``--history-min`` prior entries exist, the
   reference is the *median* of the most recent ``--history-window``
   runs.  CI runners differ in absolute speed; comparing against the
   median of recent same-pool runs makes a 10% gate meaningful instead
   of flaky.
2. **committed baseline** (``--committed BENCH_node.json``): while the
   history is still cold, the gate falls back to the committed file's
   ``current`` numbers, *scaled* by ``--committed-scale`` (default 0.5)
   — the committed numbers come from a developer machine whose absolute
   speed a CI runner cannot be held to; the scaled floor still catches
   order-of-magnitude regressions (an accidentally quadratic hot path)
   on day one.

Every invocation appends the fresh numbers to the history, so the gate
sharpens itself as the cache warms.  Exit code 0 = pass, 1 = regression,
2 = usage/IO error.

Pipeline payloads are also accepted: the intra-file gate from
:func:`repro.bench.gate_payload` applies, which skips the
``figure3_parallel_x`` ratio on single-core hosts (the pool is pure
overhead there and ~0.1x is the honest number, not a regression).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench import GATED_NODE_METRICS, GATE_TOLERANCE, gate_payload


def load_payload(path: Path) -> Dict[str, object]:
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "current" not in payload:
        raise ValueError(f"{path} is not a repro-bench payload")
    return payload


def read_history(path: Path) -> List[Dict[str, float]]:
    """Prior runs from the durable history JSONL (corrupt lines skipped)."""
    entries: List[Dict[str, float]] = []
    if not path.exists():
        return entries
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


def append_history(path: Path, current: Dict[str, float]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(current, sort_keys=True) + "\n")


def resolve_references(
    history: List[Dict[str, float]],
    committed: Optional[Dict[str, object]],
    history_min: int,
    history_window: int,
    committed_scale: float,
) -> Dict[str, Dict[str, float]]:
    """metric -> {"value": floor-reference, "source": where it came from}."""
    references: Dict[str, Dict[str, float]] = {}
    for metric in GATED_NODE_METRICS:
        samples = [
            entry[metric]
            for entry in history[-history_window:]
            if isinstance(entry.get(metric), (int, float))
        ]
        if len(samples) >= history_min:
            references[metric] = {
                "value": statistics.median(samples),
                "source": f"history median of {len(samples)} runs",
            }
            continue
        committed_current = (committed or {}).get("current") or {}
        value = committed_current.get(metric)
        if isinstance(value, (int, float)):
            references[metric] = {
                "value": value * committed_scale,
                "source": f"committed baseline x{committed_scale:g}",
            }
    return references


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("result", type=Path, help="fresh bench JSON to gate")
    parser.add_argument(
        "--committed", type=Path, default=None,
        help="committed baseline JSON (e.g. BENCH_node.json)",
    )
    parser.add_argument(
        "--history", type=Path, default=None,
        help="durable JSONL history (CI bench cache); appended to on success"
        " and failure alike",
    )
    parser.add_argument(
        "--tolerance", type=float, default=GATE_TOLERANCE,
        help="allowed fractional drop below the reference (default %(default)s)",
    )
    parser.add_argument("--history-min", type=int, default=3)
    parser.add_argument("--history-window", type=int, default=10)
    parser.add_argument(
        "--committed-scale", type=float, default=0.5,
        help="fraction of the committed numbers a cold-history runner is"
        " held to (default %(default)s)",
    )
    args = parser.parse_args(argv)

    try:
        payload = load_payload(args.result)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench-gate: cannot read result: {exc}", file=sys.stderr)
        return 2

    failures = list(gate_payload(payload, args.tolerance))

    current = payload.get("current") or {}
    if payload.get("kind") == "node":
        committed = None
        if args.committed is not None:
            try:
                committed = load_payload(args.committed)
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(
                    f"bench-gate: cannot read committed baseline: {exc}",
                    file=sys.stderr,
                )
                return 2
        history = read_history(args.history) if args.history else []
        references = resolve_references(
            history, committed, args.history_min,
            args.history_window, args.committed_scale,
        )
        for metric, reference in sorted(references.items()):
            now = current.get(metric)
            if not isinstance(now, (int, float)):
                failures.append(f"{metric}: missing from fresh result")
                continue
            floor = (1.0 - args.tolerance) * reference["value"]
            verdict = "ok" if now >= floor else "FAILED"
            print(
                f"bench-gate: {metric} {now:g} vs floor {floor:g} "
                f"[{reference['source']}] {verdict}"
            )
            if now < floor:
                failures.append(
                    f"{metric}: {now:g} below gate {floor:g} "
                    f"({reference['source']}, tolerance {args.tolerance:.0%})"
                )
        if args.history:
            append_history(args.history, {
                key: value for key, value in current.items()
                if isinstance(value, (int, float))
            })

    if failures:
        for failure in failures:
            print(f"bench-gate: FAILED: {failure}", file=sys.stderr)
        return 1
    print("bench-gate: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
