"""Scenario drill — the CI check for the adversarial scenario packs.

Replays the three named packs at smoke scale (60 close attempts) and
holds them to the claims DESIGN §15 makes:

1. **amores-cachin-delay** must reproduce a recorded safety violation —
   the report carries ``FORK`` lines and a nonzero safety count — and
   its rendered bytes must match the committed golden exactly;
2. **sissle-fixed** (the identical schedule over a fully-overlapping
   UNL) must complete with *zero* safety violations while paying in
   liveness, again byte-identical to its golden;
3. **fork_threshold** (the sweep behind ``unl-overlap-sweep``) must
   match its golden byte for byte, and a ``--jobs 2`` run must produce
   the same bytes as the serial one — sharding is an execution
   strategy, not an answer-changing one.

Goldens live in ``examples/scenarios/``; regenerate them after an
intentional behaviour change with ``--update`` (and say why in the
commit message).

Exit code 0 = pass, 1 = contract violation, 2 = setup failure.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import re
import subprocess
import sys
from typing import List, Optional

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_DIR = os.path.join(ROOT, "examples", "scenarios")

#: golden file stem -> the CLI invocation that regenerates it.
CASES = {
    "amores-cachin-delay": [
        "chaos", "--plan", "amores-cachin-delay", "--seed", "7",
        "--rounds", "60",
    ],
    "sissle-fixed": [
        "chaos", "--plan", "sissle-fixed", "--seed", "7", "--rounds", "60",
    ],
    "fork_threshold": ["fork_threshold", "--rounds", "60"],
}

_failures: List[str] = []


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures.append(message)


def run_cli(cli_args: List[str]) -> str:
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *cli_args],
        check=True,
        capture_output=True,
        text=True,
    )
    return completed.stdout


def sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def drill(update: bool) -> int:
    reports = {}
    for stem, cli_args in CASES.items():
        print(f"== {stem} ==")
        reports[stem] = run_cli(cli_args)

        golden_path = os.path.join(GOLDEN_DIR, f"{stem}.txt")
        if update:
            with open(golden_path, "w", encoding="utf-8") as handle:
                handle.write(reports[stem])
            print(f"  [updated] {os.path.relpath(golden_path, ROOT)}")
            continue
        with open(golden_path, encoding="utf-8") as handle:
            golden = handle.read()
        check(
            sha(reports[stem]) == sha(golden),
            f"rendered report matches the committed golden "
            f"(sha256 {sha(golden)[:12]})",
        )

    amores, sissle = reports["amores-cachin-delay"], reports["sissle-fixed"]
    sweep = reports["fork_threshold"]

    print("== scenario claims ==")
    forks = re.findall(r"FORK sequence \d+", amores)
    check(
        bool(forks),
        f"amores-cachin-delay records conflicting validated pages "
        f"({len(forks)} FORK event(s))",
    )
    check(
        re.search(r"safety violations\s+0", amores) is None,
        "amores-cachin-delay safety count is nonzero",
    )
    check(
        re.search(r"safety violations\s+0", sissle) is not None
        and "FORK" not in sissle,
        "sissle-fixed completes violation-free",
    )
    liveness = re.search(r"liveness violations\s+(\d+)", sissle)
    check(
        liveness is not None and int(liveness.group(1)) > 0,
        "sissle-fixed pays in liveness instead",
    )
    check(
        "empirical fork threshold" in sweep,
        "the sweep locates an empirical fork threshold",
    )

    print("== fork_threshold: serial vs --jobs 2 ==")
    parallel = run_cli([*CASES["fork_threshold"], "--jobs", "2"])
    check(
        parallel == sweep,
        "sharded sweep is bit-for-bit identical to the serial run",
    )

    if update:
        print("\ngoldens regenerated")
    if _failures:
        print(f"\nscenario drill FAILED ({len(_failures)} violation(s)):")
        for failure in _failures:
            print(f"  - {failure}")
        return 1
    print("\nscenario drill passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the committed goldens from this run's output",
    )
    args = parser.parse_args(argv)
    try:
        return drill(args.update)
    except (subprocess.CalledProcessError, OSError) as exc:
        print(f"scenario drill setup failed: {exc}", file=sys.stderr)
        if isinstance(exc, subprocess.CalledProcessError) and exc.stderr:
            print(exc.stderr, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
