"""Seeded corruption fuzz for archive ingest — the CI durability gate.

Generates a synthetic archive, then drives three deterministic corruption
campaigns against copies of it:

1. **byte flips** in the data-line region of the plain-JSONL dump —
   lenient ingest must quarantine every damaged line and keep going;
   strict ingest must fail with a typed ``ReproError`` (never a raw
   ``json.JSONDecodeError``/``UnicodeDecodeError``);
2. **gzip truncation** at several seeded cut points — strict ingest must
   classify the damage (truncated stream / bad header / manifest
   mismatch) as a typed error;
3. **manifest tampering** — a modified file under an intact sidecar must
   fail with ``IntegrityError`` before a single line is parsed.

Exit code 0 means every campaign behaved; any unexpected exception type
escapes and fails the job.  Everything is keyed off ``--seed``, so a CI
failure reproduces locally with the same command.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile

import numpy as np

from repro.analysis.archive import dump_archive, load_archive
from repro.durability import IngestStats
from repro.errors import IntegrityError, ReproError
from repro.synthetic.config import EconomyConfig
from repro.synthetic.generator import generate_history


def _fresh_copy(source: str, workdir: str, name: str) -> str:
    path = os.path.join(workdir, name)
    shutil.copy(source, path)
    sidecar = source + ".sha256"
    if os.path.exists(sidecar):
        shutil.copy(sidecar, path + ".sha256")
    return path


def fuzz_byte_flips(source: str, workdir: str, rng, rounds: int) -> None:
    """Flip bytes in data lines; lenient must quarantine, strict must type."""
    for round_index in range(rounds):
        path = _fresh_copy(source, workdir, f"flip-{round_index}.jsonl")
        blob = bytearray(open(path, "rb").read())
        header_end = blob.index(b"\n") + 1
        n_flips = int(rng.integers(1, 6))
        for _ in range(n_flips):
            offset = int(rng.integers(header_end, len(blob)))
            if blob[offset] == 0x0A:  # keep line structure intact
                continue
            blob[offset] ^= int(rng.integers(1, 256))
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        os.remove(path + ".sha256")  # exercise line checks, not the manifest

        stats = IngestStats()
        try:
            load_archive(path, strict=False, max_bad_fraction=1.0, stats=stats)
        except ReproError:
            # Overflow/truncation-by-count are legitimate typed outcomes.
            pass
        print(f"  flip round {round_index}: lenient {stats.summary()}")

        try:
            load_archive(path, strict=True)
        except ReproError as exc:
            if stats.quarantined:
                print(f"  flip round {round_index}: strict -> "
                      f"{type(exc).__name__}")
        else:
            assert stats.quarantined == 0, (
                "strict ingest accepted an archive lenient ingest "
                "quarantined lines from"
            )


def fuzz_gzip_truncation(source_gz: str, workdir: str, rng, rounds: int) -> None:
    """Cut the gzip member at seeded points; strict must raise typed errors."""
    blob = open(source_gz, "rb").read()
    for round_index in range(rounds):
        cut = int(rng.integers(1, len(blob)))
        path = os.path.join(workdir, f"cut-{round_index}.jsonl.gz")
        with open(path, "wb") as handle:
            handle.write(blob[:cut])
        try:
            load_archive(path, strict=True)
        except ReproError as exc:
            print(f"  gzip cut @{cut}: {type(exc).__name__}")
        else:
            raise AssertionError(f"truncation at {cut} bytes went undetected")


def fuzz_manifest(source: str, workdir: str) -> None:
    """A tampered file under an intact manifest must fail integrity first."""
    path = _fresh_copy(source, workdir, "tampered.jsonl")
    with open(path, "ab") as handle:
        handle.write(b'{"i": 0}\n')
    try:
        load_archive(path)
    except IntegrityError as exc:
        print(f"  manifest: {type(exc).__name__}: {str(exc)[:60]}…")
    else:
        raise AssertionError("manifest verification missed tampering")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=20170652)
    parser.add_argument("--payments", type=int, default=2000)
    parser.add_argument("--rounds", type=int, default=20)
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    history = generate_history(EconomyConfig(
        seed=args.seed, n_payments=args.payments,
        n_users=max(10, args.payments // 33), n_offers=args.payments * 4,
    ))
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as workdir:
        plain = os.path.join(workdir, "source.jsonl")
        gz = os.path.join(workdir, "source.jsonl.gz")
        dump_archive(history.records, plain)
        dump_archive(history.records, gz)
        print(f"fuzzing {len(history.records)} records, seed {args.seed}")
        fuzz_byte_flips(plain, workdir, rng, args.rounds)
        fuzz_gzip_truncation(gz, workdir, rng, args.rounds)
        fuzz_manifest(plain, workdir)
    print("corruption fuzz: all campaigns behaved")
    return 0


if __name__ == "__main__":
    sys.exit(main())
