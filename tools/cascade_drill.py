"""Cascade drill — the CI check for the credit-network health family.

Runs the three cascade kinds and the standalone health report at smoke
scale (2 000 payments) and holds them to the claims DESIGN §17 makes:

1. **outage** must walk the deliverability collapse curve to its end —
   the final wave bans *every* market maker and cancels their offers,
   reproducing the Table II counterfactual — and the delivery rate at
   that point must sit strictly below the intact control's;
2. **gateway-default** must do the same for the issuer axis: all
   gateways defaulted by the final wave, delivery collapsing with them;
3. **unwind** must liquidate over-utilized trust lines round by round
   (no replay — the "delivered" column stays em-dashed) with every
   round reporting lines actually unwound;
4. **health** must render all four dimensions of the report;
5. every rendered report must match its committed golden byte for
   byte, and a ``--jobs 2`` run must produce the same bytes as the
   serial one — sharding is an execution strategy, not an
   answer-changing one.

Goldens live in ``examples/cascades/``; regenerate them after an
intentional behaviour change with ``--update`` (and say why in the
commit message).

Exit code 0 = pass, 1 = contract violation, 2 = setup failure.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import re
import subprocess
import sys
from typing import List, Optional

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_DIR = os.path.join(ROOT, "examples", "cascades")

SMOKE = ["--payments", "2000", "--seed", "7"]

#: golden file stem -> the CLI invocation that regenerates it.
CASES = {
    "outage": [
        "cascade", "--kind", "outage", *SMOKE, "--waves", "2",
        "--pairs", "40",
    ],
    "gateway-default": [
        "cascade", "--kind", "gateway-default", *SMOKE, "--waves", "2",
        "--pairs", "40",
    ],
    "unwind": [
        "cascade", "--kind", "unwind", *SMOKE, "--waves", "3",
        "--pairs", "40",
    ],
    "health": ["health", *SMOKE, "--pairs", "80"],
}

_failures: List[str] = []


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures.append(message)


def run_cli(cli_args: List[str]) -> str:
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *cli_args],
        check=True,
        capture_output=True,
        text=True,
    )
    return completed.stdout


def sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def final_wave_rates(report: str, noun: str) -> Optional[dict]:
    """Parse the intact and final-wave delivery rates off the table."""
    intact = re.search(r"^\s*0\s+intact\s+\d+/\d+\s+(\d+\.\d)%",
                       report, re.MULTILINE)
    waves = re.findall(
        rf"^\s*\d+\s+(\d+)/(\d+) {noun} out\s+\d+/\d+\s+(\d+\.\d)%",
        report, re.MULTILINE,
    )
    if not intact or not waves:
        return None
    removed, population, rate = waves[-1]
    return {
        "intact_rate": float(intact.group(1)),
        "final_rate": float(rate),
        "all_removed": removed == population,
    }


def drill(update: bool) -> int:
    reports = {}
    for stem, cli_args in CASES.items():
        print(f"== {stem} ==")
        reports[stem] = run_cli(cli_args)

        golden_path = os.path.join(GOLDEN_DIR, f"{stem}.txt")
        if update:
            with open(golden_path, "w", encoding="utf-8") as handle:
                handle.write(reports[stem])
            print(f"  [updated] {os.path.relpath(golden_path, ROOT)}")
            continue
        with open(golden_path, encoding="utf-8") as handle:
            golden = handle.read()
        check(
            sha(reports[stem]) == sha(golden),
            f"rendered report matches the committed golden "
            f"(sha256 {sha(golden)[:12]})",
        )

    print("== cascade claims ==")
    outage = final_wave_rates(reports["outage"], "makers")
    check(
        outage is not None and outage["all_removed"],
        "outage's final wave removes every market maker (Table II's point)",
    )
    check(
        outage is not None and outage["final_rate"] < outage["intact_rate"],
        "outage delivery collapses below the intact control",
    )
    check(
        "Table II" in reports["outage"],
        "outage report cites the Table II counterfactual",
    )
    default = final_wave_rates(reports["gateway-default"], "gateways")
    check(
        default is not None and default["all_removed"],
        "gateway-default's final wave defaults every gateway",
    )
    check(
        default is not None and default["final_rate"] < default["intact_rate"],
        "gateway default collapses delivery below the intact control",
    )
    unwound = re.findall(r"round \d+: (\d+) lines unwound", reports["unwind"])
    check(
        bool(unwound) and all(int(n) > 0 for n in unwound),
        f"unwind liquidates lines every round ({len(unwound)} round(s))",
    )
    check(
        re.search(r"lines unwound\s+—\s+—", reports["unwind"]) is not None,
        "unwind reports no delivery replay (em-dashed column)",
    )
    check(
        all(
            heading in reports["health"]
            for heading in (
                "Wallet liquidity",
                "IOU issuer concentration",
                "Trust-limit utilization",
                "Settlability",
            )
        ),
        "health report renders all four dimensions",
    )

    print("== serial vs --jobs 2 ==")
    for stem in ("outage", "health"):
        parallel = run_cli([*CASES[stem], "--jobs", "2"])
        check(
            parallel == reports[stem],
            f"sharded {stem} is bit-for-bit identical to the serial run",
        )

    if update:
        print("\ngoldens regenerated")
    if _failures:
        print(f"\ncascade drill FAILED ({len(_failures)} violation(s)):")
        for failure in _failures:
            print(f"  - {failure}")
        return 1
    print("\ncascade drill passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the committed goldens from this run's output",
    )
    args = parser.parse_args(argv)
    try:
        return drill(args.update)
    except (subprocess.CalledProcessError, OSError) as exc:
        print(f"cascade drill setup failed: {exc}", file=sys.stderr)
        if isinstance(exc, subprocess.CalledProcessError) and exc.stderr:
            print(exc.stderr, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
