"""Live-ingest drill — the CI check for the crash-safe online pipeline.

Exercises the event-sourcing contract against real ``repro ingest``
processes and real ``kill -9``:

1. **never-killed reference** — one uninterrupted ingest over a
   poisoned synthetic archive (two bad lines injected among the
   payments); its final state digest is the ground truth;
2. **kill -9, twice** — a second ingest over the *same* archive into a
   fresh state dir is SIGKILLed mid-stream at two different points (no
   drain, no warning), restarted each time, and allowed to finish;
3. **equivalence** — the killed run's digest must equal the reference
   digest bit for bit: zero accepted events lost, zero replayed twice,
   both poison lines quarantined exactly once;
4. **graceful drain** — a final run receives SIGTERM mid-stream and
   must exit 0 with a ``drained`` status file.

Exit code 0 = pass, 1 = contract violation, 2 = setup failure.
"""

from __future__ import annotations

import argparse
import gzip
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DIGEST_RE = re.compile(r"^state digest ([0-9a-f]{64})$", re.MULTILINE)

_failures: List[str] = []


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures.append(message)


def env() -> Dict[str, str]:
    merged = dict(os.environ)
    merged["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return merged


def ingest_command(archive: str, state_dir: str) -> List[str]:
    return [
        sys.executable, "-m", "repro", "ingest",
        "--archive", archive,
        "--state-dir", state_dir,
        "--snapshot-every", "150",
        "--wal-segment-events", "64",
        "--status-every", "25",
    ]


def make_poisoned_archive(workdir: str, payments: int) -> str:
    """A synthetic archive with two poison lines spliced into the body."""
    clean = os.path.join(workdir, "clean.jsonl.gz")
    subprocess.run(
        [
            sys.executable, "-m", "repro", "generate",
            "--payments", str(payments), "--seed", "7", "--out", clean,
        ],
        check=True, env=env(), stdout=subprocess.DEVNULL,
    )
    poisoned = os.path.join(workdir, "poisoned.jsonl.gz")
    with gzip.open(clean, "rt") as src, gzip.open(poisoned, "wt") as dst:
        dst.write(src.readline())  # header
        for number, line in enumerate(src):
            if number == 40:
                dst.write("{torn json never completed\n")
            if number == 200:
                dst.write('{"i": 0, "mystery": true}\n')
            dst.write(line)
    return poisoned


def run_to_completion(archive: str, state_dir: str) -> Tuple[int, str]:
    """(exit code, final digest) of an uninterrupted ingest."""
    result = subprocess.run(
        ingest_command(archive, state_dir),
        env=env(), capture_output=True, text=True,
    )
    if result.returncode != 0:
        print(result.stderr, file=sys.stderr)
        return result.returncode, ""
    match = DIGEST_RE.search(result.stdout)
    return 0, match.group(1) if match else ""


def read_status(state_dir: str) -> Optional[dict]:
    try:
        with open(os.path.join(state_dir, "status.json")) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def wait_for_progress(state_dir: str, beyond_seq: int,
                      process: subprocess.Popen, timeout: float) -> int:
    """Poll status.json until applied_seq passes ``beyond_seq``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"ingest exited early (code {process.returncode}) before "
                f"reaching seq {beyond_seq}"
            )
        status = read_status(state_dir)
        if status and status.get("applied_seq", -1) >= beyond_seq:
            return status["applied_seq"]
        time.sleep(0.02)
    raise RuntimeError(f"never reached seq {beyond_seq} within {timeout}s")


def kill_mid_stream(archive: str, state_dir: str, beyond_seq: int) -> int:
    """Start an ingest, SIGKILL it once it passes ``beyond_seq``."""
    process = subprocess.Popen(
        ingest_command(archive, state_dir),
        env=env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        reached = wait_for_progress(state_dir, beyond_seq, process, 120)
    except RuntimeError:
        if process.poll() is None:
            process.kill()
            process.wait(10)
        raise
    process.send_signal(signal.SIGKILL)
    process.wait(10)
    return reached


def drill(payments: int) -> int:
    workdir = tempfile.mkdtemp(prefix="repro-live-drill-")
    try:
        print("== archive with injected poison ==")
        archive = make_poisoned_archive(workdir, payments)
        total_events = payments + 2
        print(f"  {payments} payments + 2 poison lines")

        print("== never-killed reference run ==")
        code, reference = run_to_completion(
            archive, os.path.join(workdir, "reference")
        )
        check(code == 0 and len(reference) == 64,
              f"reference ingest drained (digest {reference[:12]}…)")
        ref_status = read_status(os.path.join(workdir, "reference"))
        check(ref_status is not None and ref_status["events"] == total_events,
              f"reference absorbed all {total_events} events")
        check(ref_status is not None and ref_status["quarantined"] == 2,
              "reference quarantined both poison lines")

        print("== kill -9 twice, resume, finish ==")
        killed_dir = os.path.join(workdir, "killed")
        first = kill_mid_stream(archive, killed_dir, total_events // 4)
        print(f"  SIGKILL #1 at applied_seq {first}")
        second = kill_mid_stream(archive, killed_dir, total_events // 2)
        print(f"  SIGKILL #2 at applied_seq {second}")
        check(second > first, "the resumed run made progress before kill #2")
        code, survived = run_to_completion(archive, killed_dir)
        check(code == 0, "final resume ran to completion")
        check(
            survived == reference,
            "killed-twice digest equals the never-killed digest "
            f"({survived[:12]}… vs {reference[:12]}…)",
        )
        status = read_status(killed_dir)
        check(status is not None and status["events"] == total_events,
              "no accepted event was lost or double-applied")
        check(status is not None and status["quarantined"] == 2,
              "poison quarantined exactly once despite replays")
        check(status is not None and status["replayed"] > 0,
              f"recovery actually replayed the WAL tail "
              f"(replayed={status and status['replayed']})")

        print("== SIGTERM drains gracefully ==")
        drain_dir = os.path.join(workdir, "drained")
        process = subprocess.Popen(
            ingest_command(archive, drain_dir),
            env=env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        wait_for_progress(drain_dir, total_events // 4, process, 120)
        process.send_signal(signal.SIGTERM)
        code = process.wait(30)
        check(code == 0, f"SIGTERM exit status is 0 (got {code})")
        status = read_status(drain_dir)
        check(status is not None and status["phase"] == "drained",
              "status file records a clean drain")
        check(status is not None and "digest" in status,
              "drain sealed a final digest")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if _failures:
        print(f"\nlive drill FAILED ({len(_failures)} violation(s)):")
        for failure in _failures:
            print(f"  - {failure}")
        return 1
    print("\nlive drill passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--payments", type=int, default=2000,
        help="synthetic archive size for the drill (default 2000)",
    )
    args = parser.parse_args(argv)
    try:
        return drill(args.payments)
    except (RuntimeError, subprocess.CalledProcessError) as exc:
        print(f"live drill setup failed: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
