"""Serve drill — the CI check for the multi-tenant artifact daemon.

Exercises the serve contract end to end against a real daemon process:

1. **cold CLI reference** — ``python -m repro fig3 …`` writes the
   artifact the ordinary way; its bytes are the ground truth the daemon
   must reproduce;
2. **concurrent duplicates** — several identical fig3 requests fired at
   once (plus one distinct fig4 request) must yield byte-identical
   deterministic envelopes, exactly one computation per distinct
   fingerprint (``serve.computes == 2``), and rendered text matching the
   CLI reference byte for byte;
3. **durable restart** — a freshly started daemon on the same cache dir
   must serve fig3 as a cache **hit** without computing anything and
   without ever touching the warm worker pool (no ``serve.computes``,
   no ``parallel.pool.*`` counters in the new process).

Exit code 0 = pass, 1 = contract violation, 2 = setup failure.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
from typing import Any, Dict, List, Optional

from repro.serve.client import ServeClient, ServeError

ARTIFACT_ARGS = {"payments": 4000, "seed": 7}

_failures: List[str] = []


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures.append(message)


def deterministic_sha(envelope: Dict[str, Any]) -> str:
    """sha256 of the envelope core: the transport annotations stripped."""
    core = {k: v for k, v in envelope.items() if k not in ("cache", "detail")}
    return hashlib.sha256(
        json.dumps(core, sort_keys=True).encode("utf-8")
    ).hexdigest()


def start_daemon(socket_path: str, cache_dir: str) -> subprocess.Popen:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", socket_path, "--cache-dir", cache_dir,
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    client = ServeClient(socket_path=socket_path, timeout=120)
    try:
        client.wait_ready(attempts=100, delay=0.1)
    except ServeError:
        process.terminate()
        stderr = process.communicate(timeout=10)[1]
        print(f"daemon never came up; stderr:\n{stderr}", file=sys.stderr)
        raise
    return process


def stop_daemon(process: subprocess.Popen, client: ServeClient) -> None:
    try:
        client.shutdown()
        process.wait(timeout=10)
    except (ServeError, subprocess.TimeoutExpired):
        process.kill()
        process.wait(timeout=10)


def cold_cli_reference(workdir: str) -> bytes:
    out = os.path.join(workdir, "fig3-cold.txt")
    subprocess.run(
        [
            sys.executable, "-m", "repro", "fig3",
            "--payments", str(ARTIFACT_ARGS["payments"]),
            "--seed", str(ARTIFACT_ARGS["seed"]),
            "--out", out,
        ],
        check=True,
        stdout=subprocess.DEVNULL,
    )
    with open(out, "rb") as handle:
        return handle.read()


def fire_concurrently(client: ServeClient, duplicates: int) -> List[Dict[str, Any]]:
    """``duplicates`` identical fig3 requests plus one distinct fig4."""
    responses: List[Optional[Dict[str, Any]]] = [None] * (duplicates + 1)

    def fig3(slot: int) -> None:
        responses[slot] = client.artifact("fig3", jobs=2, **ARTIFACT_ARGS)

    def fig4(slot: int) -> None:
        responses[slot] = client.artifact("fig4", **ARTIFACT_ARGS)

    threads = [
        threading.Thread(target=fig3, args=(slot,)) for slot in range(duplicates)
    ]
    threads.append(threading.Thread(target=fig4, args=(duplicates,)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [response for response in responses if response is not None]


def drill(duplicates: int) -> int:
    workdir = tempfile.mkdtemp(prefix="repro-serve-drill-")
    socket_path = os.path.join(workdir, "serve.sock")
    cache_dir = os.path.join(workdir, "cache")
    client = ServeClient(socket_path=socket_path, timeout=300)
    try:
        print("== cold CLI reference ==")
        reference = cold_cli_reference(workdir)
        print(f"  fig3 via CLI: {len(reference)} bytes")

        print("== daemon round 1: concurrent duplicates ==")
        daemon = start_daemon(socket_path, cache_dir)
        try:
            responses = fire_concurrently(client, duplicates)
            check(
                len(responses) == duplicates + 1,
                f"all {duplicates + 1} concurrent requests answered",
            )
            check(
                all(r["status"] == "ok" for r in responses),
                "every response has status ok",
            )
            fig3_responses = [r for r in responses if r["artifact"] == "fig3"]
            shas = {deterministic_sha(r) for r in fig3_responses}
            check(
                len(shas) == 1,
                f"{len(fig3_responses)} duplicate responses are sha256-identical",
            )
            served = fig3_responses[0]["rendered_text"] + "\n"
            check(
                served.encode("utf-8") == reference,
                "served fig3 matches the cold CLI bytes exactly",
            )
            stats = client.stats()["counters"]
            check(
                stats.get("serve.computes") == 2,
                f"exactly one compute per distinct fingerprint "
                f"(serve.computes={stats.get('serve.computes')})",
            )
            check(
                stats.get("serve.requests") == duplicates + 1,
                "every request was counted",
            )
        finally:
            stop_daemon(daemon, client)

        print("== daemon round 2: restart, durable cache hit ==")
        daemon = start_daemon(socket_path, cache_dir)
        try:
            warm = client.artifact("fig3", **ARTIFACT_ARGS)
            check(warm["status"] == "ok", "restarted daemon answers fig3")
            check(
                warm.get("cache") == "hit",
                f"restarted daemon serves from the durable store "
                f"(cache={warm.get('cache')!r})",
            )
            check(
                warm["rendered_text"] + "\n" == reference.decode("utf-8"),
                "cached bytes still match the cold CLI reference",
            )
            stats = client.stats()["counters"]
            check(
                not stats.get("serve.computes"),
                "cache hit computed nothing in the new process",
            )
            check(
                not any(name.startswith("parallel.pool.") for name in stats),
                "cache hit never touched the warm worker pool",
            )
            check(
                stats.get("serve.cache.hits", 0) >= 1,
                "hit counter ticked",
            )
        finally:
            stop_daemon(daemon, client)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if _failures:
        print(f"\nserve drill FAILED ({len(_failures)} violation(s)):")
        for failure in _failures:
            print(f"  - {failure}")
        return 1
    print("\nserve drill passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duplicates", type=int, default=3,
        help="concurrent identical fig3 requests to fire (default 3)",
    )
    args = parser.parse_args(argv)
    try:
        return drill(args.duplicates)
    except (ServeError, subprocess.CalledProcessError) as exc:
        print(f"serve drill setup failed: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
