PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-node profile-fig3 trace-fig3 serve-drill live-drill cascade-drill

test:
	$(PYTHON) -m pytest tests -q

bench:
	$(PYTHON) -m pytest benchmarks -q

# Reduced generation -> fig3 pipeline; writes BENCH_pipeline.json (<60 s).
bench-smoke:
	$(PYTHON) -m repro bench-smoke

# Engine + path-finder throughput; writes BENCH_node.json.
bench-node:
	$(PYTHON) -m repro bench-node

profile-fig3:
	$(PYTHON) -m repro --profile fig3

# Daemon contract check: concurrent dedup, byte-equivalence vs the CLI,
# durable cache hits across a restart (see tools/serve_drill.py).
serve-drill:
	$(PYTHON) tools/serve_drill.py

# Crash-safety check: kill -9 an ingest twice mid-stream, resume, and
# require a digest identical to a never-killed run (tools/live_drill.py).
live-drill:
	$(PYTHON) tools/live_drill.py

# Health-family contract check: cascade collapse curves vs committed
# goldens, Table II's point at the final outage wave, serial == --jobs 2
# (see tools/cascade_drill.py).
cascade-drill:
	$(PYTHON) tools/cascade_drill.py

# fig3 with span tracing + run manifest, then schema-validate the manifest.
trace-fig3:
	$(PYTHON) -m repro artifact fig3 --out fig3.txt --trace
	$(PYTHON) -m repro manifest fig3.txt.manifest.json
