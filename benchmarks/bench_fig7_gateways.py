"""Figure 7 — the 50 most path-central accounts and their profiles.

Paper (appendix D): 50 peers relay ~86 % of multi-hop payments; the top two
(rp2PaY..., r42Ccn...) are *not* gateways and relay far more than anyone
else; only ~20 of the top 50 are gateways; gateways concentrate incoming
trust (17/20 declare none outgoing) and hold strictly negative balances,
while common users hold positive balances.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.gateways import (
    coverage_of_top,
    gateway_count_in_top,
    top_intermediaries,
)
from repro.api import render_figure7


@pytest.fixture(scope="module")
def profiles(bench_history):
    return top_intermediaries(bench_history, 50)


def test_fig7_rendering(bench_history, profiles, results_dir):
    coverage = coverage_of_top(bench_history, 50)
    lines = [
        render_figure7(profiles),
        "",
        f"top-50 coverage of multi-hop payments (paper: ~86 %): {coverage:.3f}",
        f"gateways among top-50 (paper: ~20): {gateway_count_in_top(bench_history, 50)}",
    ]
    write_result(results_dir, "fig7_gateways.txt", "\n".join(lines))


def test_fig7a_shape_matches_paper(bench_history, profiles):
    # The two hubs top the ranking and are not gateways.
    assert {profiles[0].label, profiles[1].label} == {
        "rp2PaY...X1mEx7",
        "r42Ccn...Xqm5M3",
    }
    assert not profiles[0].is_gateway and not profiles[1].is_gateway
    # They relay clearly more than the best gateway.
    best_gateway = max(
        p.times_intermediate for p in profiles if p.is_gateway
    )
    assert profiles[0].times_intermediate > 1.3 * best_gateway
    # A handful of accounts covers almost all multi-hop traffic.
    assert coverage_of_top(bench_history, 50) > 0.85
    # A substantial minority of the top 50 are gateways.
    assert 5 <= gateway_count_in_top(bench_history, 50) <= 25


def test_fig7b_trust_profiles(profiles):
    gateways = [p for p in profiles if p.is_gateway]
    others = [p for p in profiles if not p.is_gateway]
    assert gateways and others
    # Gateways: big incoming trust, (almost) no outgoing.
    assert all(p.incoming_trust_eur > 0 for p in gateways)
    declaring = sum(1 for p in gateways if p.outgoing_trust_eur > 0)
    assert declaring <= len(gateways) * 0.35  # paper: 3 of 20
    # Non-gateways receive far less trust than gateways.
    median_gateway_in = sorted(p.incoming_trust_eur for p in gateways)[len(gateways) // 2]
    assert all(p.incoming_trust_eur < median_gateway_in for p in others)


def test_fig7c_balance_profiles(profiles):
    gateways = [p for p in profiles if p.is_gateway]
    others = [p for p in profiles if not p.is_gateway]
    # Gateways exclusively owe (negative balances)...
    assert all(p.balance_eur < 0 for p in gateways)
    # ...while most common users hold credit.
    positive = sum(1 for p in others if p.balance_eur > 0)
    assert positive >= 0.7 * len(others)


def test_bench_top_intermediaries(benchmark, bench_history):
    profiles = benchmark(top_intermediaries, bench_history, 50)
    assert len(profiles) == 50
