"""Figure 2 — per-validator total vs. valid signed pages, three periods.

Paper (Section IV): R1–R5 dominate every period; Dec'15 has 3 active
non-Ripple validators and 21 zero-valid ones; Jul'16 has 10 actives plus 5
test-net servers signing ~200k pages none of which validate; Nov'16 drops
to 8 actives with freewallet1/2.net collapsing by an order of magnitude.
We simulate a scaled fraction of each two-week period and regenerate the
per-validator bar pairs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.api import render_figure2
from repro.analysis.validators import summarize
from repro.core.robustness import RobustnessStudy, run_period
from repro.stream.periods import PERIODS, period

#: 1/400 of two weeks ≈ 600 consensus rounds per period.
SCALE = 1.0 / 400.0


@pytest.fixture(scope="module")
def study():
    return RobustnessStudy.run(PERIODS, scale=SCALE, seed=17)


def test_fig2_rendering(study, results_dir):
    text = []
    for report in study.reports:
        text.append(render_figure2(report))
        summary = summarize(report)
        text.append(
            f"  -> active non-Ripple: {summary.active_non_ripple} / "
            f"{summary.observed_non_ripple} observed; "
            f"zero-valid: {summary.zero_valid}; "
            f"availability: {summary.availability:.3f}"
        )
    study_lines = [
        "",
        f"validators seen across periods: {study.validators_seen_total()} (paper: 70)",
        f"persistent actives: {len(study.persistent_active())} (paper: 9)",
        f"takeover exposure dec2015 (share of valid signatures): "
        f"{study.takeover_exposure('dec2015')}",
    ]
    write_result(results_dir, "fig2_validators.txt", "\n".join(text + study_lines))


def test_fig2_shape_matches_paper(study):
    dec, jul, nov = study.reports
    counts = dict((key, active) for key, active, _ in study.active_counts())
    assert counts["dec2015"] in (2, 3, 4)       # paper: 3
    assert counts["jul2016"] in (8, 9, 10, 11)  # paper: 10
    assert counts["nov2016"] in (6, 7, 8, 9)    # paper: 8
    assert len(dec.zero_valid_validators()) >= 18  # paper: 21
    # Test-net servers sign many pages, none valid, in both 2016 periods.
    for report in (jul, nov):
        for index in range(1, 6):
            obs = report.observation(f"testnet.ripple.com#{index}")
            assert obs.total_pages > 0 and obs.valid_pages == 0
    # freewallet collapse between July and November.
    assert (
        nov.observation("freewallet1.net").total_pages
        < jul.observation("freewallet1.net").total_pages * 0.35
    )
    # Churn: only ~9 validators are active in all three periods.
    assert 7 <= len(study.persistent_active()) <= 11


def test_bench_consensus_period(benchmark):
    """Benchmark: one scaled Dec'15 collection period, end to end."""
    result = benchmark.pedantic(
        lambda: run_period(period("dec2015"), scale=1 / 2400, seed=5),
        rounds=3,
        iterations=1,
    )
    assert result.availability > 0.5
