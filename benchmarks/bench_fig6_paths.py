"""Figure 6 — structure of payment paths.

Paper (appendix B): of 23M payments, 13M are direct XRP; the 10M multi-hop
payments mostly use <5 intermediate hops with a 3.3M spike at *exactly 8*
(MTL spam), plus a curiosity at 44; parallel-path counts mass at 1-4
(16.3/10.4/9.3/28.9 %) with the MTL spam pinned at exactly 6.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.paths import path_structure, spam_hop_attribution
from repro.api import render_figure6


@pytest.fixture(scope="module")
def structure(bench_dataset):
    return path_structure(bench_dataset)


def test_fig6_rendering(bench_dataset, structure, results_dir):
    attribution = spam_hop_attribution(bench_dataset, 8)
    lines = [
        render_figure6(structure),
        "",
        f"direct XRP payments excluded (paper: 13M of 23M): "
        f"{structure.direct_xrp_payments}",
        f"currency attribution of the 8-hop spike (paper: 3.3M MTL): {attribution}",
    ]
    write_result(results_dir, "fig6_paths.txt", "\n".join(lines))


def test_fig6a_shape_matches_paper(bench_dataset, structure):
    # Majority of organic payments below 5 intermediate hops, decreasing.
    assert structure.hop_share(1) > structure.hop_share(2)
    assert structure.hop_share(2) > structure.hop_share(3)
    assert structure.hop_share(3) > structure.hop_share(4)
    # The spam spike sits at exactly 8 hops and is MTL.
    assert structure.modal_spam_hop() == 8
    attribution = spam_hop_attribution(bench_dataset, 8)
    assert max(attribution, key=attribution.get) == "MTL"
    # The 44-hop outlier exists.
    assert structure.hops_histogram.get(44, 0) >= 1
    # Nothing organic beyond the path-length cap but below the outlier.
    assert not any(12 <= hops < 44 for hops in structure.hops_histogram)


def test_fig6b_shape_matches_paper(structure):
    # Unsplit payments are the single largest class (paper: 16.3 % plus
    # most of the bridged traffic).
    organic = {k: structure.parallel_share(k) for k in (1, 2, 3, 4)}
    assert organic[1] > organic[2] > organic[4]
    assert organic[2] > 0.02 and organic[3] > 0.01
    # The MTL spam occupies exactly 6 parallel paths (paper: 34.8 %).
    assert structure.parallel_share(6) == pytest.approx(0.28, abs=0.06)
    assert structure.parallel_share(5) < 0.02


def test_direct_xrp_majority(bench_dataset, structure):
    # Paper: 13M direct XRP of 23M total.
    assert structure.direct_xrp_payments / len(bench_dataset) == pytest.approx(
        0.49, abs=0.03
    )


def test_bench_path_structure(benchmark, bench_dataset):
    structure = benchmark(path_structure, bench_dataset)
    assert structure.multi_hop_payments > 0
