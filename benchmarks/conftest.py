"""Shared benchmark fixtures.

All figure/table benches read one synthetic history (as the paper's
analyses all read one ledger download).  The history is generated once per
session; rendered figure text is written to ``benchmarks/results/`` so the
rows/series the paper reports can be inspected after a run.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.dataset import TransactionDataset
from repro.synthetic.config import EconomyConfig
from repro.synthetic.generator import generate_history

#: The benchmark economy: ~30k payments (paper: 23.4M — a ~1/800 scale that
#: keeps every calibrated share intact while a full run stays under a
#: minute).
BENCH_CONFIG = EconomyConfig(
    seed=20170652,
    n_payments=30_000,
    n_users=900,
    n_gateways=20,
    n_market_makers=120,
    n_offers=120_000,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def bench_history():
    return generate_history(BENCH_CONFIG)


@pytest.fixture(scope="session")
def bench_dataset(bench_history):
    return TransactionDataset.from_records(bench_history.records)


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: str, name: str, text: str) -> None:
    """Persist a rendered figure/table and echo it for -s runs."""
    path = os.path.join(results_dir, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[written to {path}]")
