"""Shared benchmark fixtures.

All figure/table benches read one synthetic history (as the paper's
analyses all read one ledger download).  The history is generated once per
session and additionally pickled to ``benchmarks/.cache/`` so consecutive
benchmark sessions skip regeneration entirely (set ``REPRO_BENCH_CACHE=0``
to force a fresh run).  Rendered figure text is written to
``benchmarks/results/`` so the rows/series the paper reports can be
inspected after a run.
"""

from __future__ import annotations

import hashlib
import os
import pickle

import pytest

from repro import __version__
from repro.analysis.dataset import TransactionDataset
from repro.durability import atomic_write
from repro.obs.metrics import METRICS
from repro.synthetic.config import EconomyConfig
from repro.synthetic.generator import generate_history

#: The benchmark economy: ~30k payments (paper: 23.4M — a ~1/800 scale that
#: keeps every calibrated share intact while a full run stays under a
#: minute).
BENCH_CONFIG = EconomyConfig(
    seed=20170652,
    n_payments=30_000,
    n_users=900,
    n_gateways=20,
    n_market_makers=120,
    n_offers=120_000,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CACHE_DIR = os.path.join(os.path.dirname(__file__), ".cache")


def _cached_history(config: EconomyConfig):
    """Load the history from the disk cache, generating on a miss.

    The key mixes the package version into the config repr: a release that
    changes generation semantics must not serve stale economies.  The cache
    is best-effort — *any* load failure (truncated pickle raising
    ``EOFError``/``UnpicklingError``, a stale class layout raising
    ``AttributeError``, plain I/O errors) counts as a cold cache, is noted
    in :data:`repro.obs.metrics.METRICS`, and the entry is regenerated and rewritten
    atomically (fsync + rename, so a killed bench run cannot poison the
    next one).
    """
    if os.environ.get("REPRO_BENCH_CACHE", "1") in ("", "0"):
        return generate_history(config)
    key = hashlib.sha256(f"{__version__}|{config!r}".encode()).hexdigest()[:16]
    path = os.path.join(CACHE_DIR, f"history-{key}.pkl")
    if os.path.exists(path):
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            METRICS.count("bench.cache_corrupt")
            try:
                os.remove(path)
            except OSError:
                pass
    history = generate_history(config)
    os.makedirs(CACHE_DIR, exist_ok=True)
    with atomic_write(path, mode="wb") as handle:
        pickle.dump(history, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return history


@pytest.fixture(scope="session")
def bench_history():
    return _cached_history(BENCH_CONFIG)


@pytest.fixture(scope="session")
def bench_dataset(bench_history):
    return TransactionDataset.from_records(bench_history.records)


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: str, name: str, text: str) -> None:
    """Persist a rendered figure/table and echo it for -s runs."""
    path = os.path.join(results_dir, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[written to {path}]")
