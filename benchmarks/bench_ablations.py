"""Ablation benches beyond the paper's figures.

These probe the design choices DESIGN.md calls out:

* consensus quorum sweep — availability vs. safety margin (the 50 %→80 %
  quorum change the paper's citations [7, 8] prompted);
* validator-count robustness — how many active validators the network can
  lose before availability collapses (the Section IV takeover concern);
* IG vs. history size — uniqueness of fingerprints as the ledger grows;
* IG: strict uniqueness vs. sender-identification attacker models.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.dataset import TransactionDataset
from repro.consensus.engine import ConsensusEngine
from repro.consensus.faults import active, offline
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator
from repro.core.deanonymizer import Deanonymizer
from repro.core.resolution import AmountResolution, FeatureList, TimeResolution

ROUNDS = 120


def _engine(n_active, n_total, quorum, seed=0):
    names = [f"v{i}" for i in range(n_total)]
    unl = UNL.of(names)
    validators = [
        Validator(
            name,
            unl,
            active(availability=0.97) if i < n_active else offline(availability=0.05),
        )
        for i, name in enumerate(names)
    ]
    return ConsensusEngine(validators, master_unl=unl, quorum=quorum, seed=seed)


def test_quorum_sweep(results_dir):
    """Availability as the validation quorum rises from 50 % to 90 %."""
    lines = ["Ablation — quorum sweep (10 validators, 7 reliable)"]
    availabilities = {}
    for quorum in (0.5, 0.6, 0.7, 0.8, 0.9):
        report = _engine(7, 10, quorum, seed=3).run(ROUNDS)
        availabilities[quorum] = report.availability
        lines.append(f"  quorum {quorum:.0%}: availability {report.availability:.3f}")
    write_result(results_dir, "ablation_quorum.txt", "\n".join(lines))
    # Availability decreases monotonically (weakly) in the quorum.
    values = [availabilities[q] for q in (0.5, 0.6, 0.7, 0.8, 0.9)]
    assert all(a >= b - 0.05 for a, b in zip(values, values[1:]))
    assert availabilities[0.5] > availabilities[0.9]


def test_validator_loss_sweep(results_dir):
    """The Section IV concern: losing the few active validators kills the
    network well before losing the many passive ones does."""
    lines = ["Ablation — active-validator loss (UNL of 10, quorum 80 %)"]
    availability_by_active = {}
    for n_active in (10, 9, 8, 7, 6, 5):
        report = _engine(n_active, 10, 0.8, seed=4).run(ROUNDS)
        availability_by_active[n_active] = report.availability
        lines.append(
            f"  {n_active} active of 10: availability {report.availability:.3f}"
        )
    write_result(results_dir, "ablation_validator_loss.txt", "\n".join(lines))
    assert availability_by_active[10] > 0.9
    # Losing 3+ of 10 under an 80 % quorum halts validation.
    assert availability_by_active[6] < 0.2
    assert availability_by_active[5] < 0.05


def test_ig_vs_history_size(bench_history, results_dir):
    """Fingerprint uniqueness decays as the history grows (more collisions)."""
    low = FeatureList(AmountResolution.LOW, TimeResolution.DAYS, True, True)
    lines = ["Ablation — low-resolution IG vs. history size"]
    fractions = []
    for divisor in (8, 4, 2, 1):
        records = bench_history.records[: len(bench_history.records) // divisor]
        dataset = TransactionDataset.from_records(records)
        ig = Deanonymizer(dataset).information_gain(low)
        fractions.append(ig.fraction)
        lines.append(f"  n={len(dataset):6d}: IG {ig.percent:6.2f}%")
    write_result(results_dir, "ablation_ig_vs_size.txt", "\n".join(lines))
    assert fractions[0] >= fractions[-1] - 0.02


def test_ig_attacker_models(bench_dataset, results_dir):
    """Strict fingerprint uniqueness vs. the stronger sender-identification
    reading (repeated spam fingerprints still identify their one sender)."""
    lines = ["Ablation — IG under the two attacker models"]
    deanonymizer = Deanonymizer(bench_dataset)
    for feature_list in (
        FeatureList(),
        FeatureList(AmountResolution.LOW, TimeResolution.DAYS, True, True),
        FeatureList(AmountResolution.LOW, TimeResolution.DAYS, False, False),
    ):
        strict = deanonymizer.information_gain(feature_list, strict=True)
        loose = deanonymizer.information_gain(feature_list, strict=False)
        lines.append(
            f"  {feature_list.label():24s} strict {strict.percent:6.2f}%   "
            f"sender-id {loose.percent:6.2f}%"
        )
        assert loose.identified >= strict.identified
    write_result(results_dir, "ablation_attacker_models.txt", "\n".join(lines))


def test_spam_ablation(results_dir):
    """What Ripple's statistics would look like without the attacks.

    Regenerates a spam-free economy (no CCK swarm, no MTL campaign, no
    gambling/ACCOUNT_ZERO flows) and contrasts the headline artifacts.
    """
    from repro.analysis import TransactionDataset, currency_ranking, path_structure
    from repro.synthetic.generator import LedgerHistoryGenerator
    from repro.synthetic.scenarios import build_no_spam

    history = LedgerHistoryGenerator(build_no_spam(n_payments=6_000)).generate()
    dataset = TransactionDataset.from_records(history.records)
    ranking = currency_ranking(dataset)
    structure = path_structure(dataset)
    lines = ["Ablation — the economy without the spam campaigns"]
    lines.append("  top currencies: " + ", ".join(
        f"{usage.code} {usage.share:.1%}" for usage in ranking[:6]
    ))
    lines.append(f"  8-hop payments: {structure.hops_histogram.get(8, 0)} (with spam: ~28% of multi-hop)")
    lines.append(f"  6-parallel-path payments: {structure.parallel_histogram.get(6, 0)}")
    lines.append(f"  44-hop outliers: {structure.hops_histogram.get(44, 0)}")
    write_result(results_dir, "ablation_no_spam.txt", "\n".join(lines))
    # The spam spikes vanish; only organic structure remains.
    assert structure.hops_histogram.get(8, 0) == 0
    assert structure.parallel_histogram.get(6, 0) == 0
    assert ranking[0].code == "XRP" and ranking[0].share > 0.6


def test_bench_consensus_round_throughput(benchmark):
    """Benchmark: raw consensus rounds per second on a healthy 15-UNL."""
    engine = _engine(15, 15, 0.8, seed=6)
    report = benchmark.pedantic(lambda: engine.run(50), rounds=3, iterations=1)
    assert report.availability > 0.9
