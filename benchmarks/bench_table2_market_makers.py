"""Table II — payment delivery with Market Makers removed.

Paper (appendix C): starting from the Feb 2015 snapshot, replaying the
payments delivered until Aug 2015 on a network without market makers and
their offers delivers **0 %** of cross-currency payments, only **36.1 %**
of single-currency payments, and **11.2 %** overall (of ~1.7M payments,
68.7 % cross-currency).  Also: the top 10/50/100 makers place 50/75/87 %
of all ~90M offers.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.market_makers import (
    offer_concentration,
    replay_without_market_makers,
    table2,
)
from repro.api import render_table2

PAPER_ROWS = (
    ("Cross-currency", 1_185_521, 0, 0.0),
    ("Single-currency", 538_169, 194_300, 0.361),
    ("Total", 1_723_690, 194_300, 0.112),
)


@pytest.fixture(scope="module")
def replay(bench_history):
    return table2(bench_history)


def test_table2_rendering(bench_history, replay, results_dir):
    concentration = offer_concentration(bench_history.offer_records)
    lines = [render_table2(replay), "", "paper rows for comparison:"]
    for category, submitted, delivered, rate in PAPER_ROWS:
        lines.append(
            f"  {category:16s} {submitted:10d} {delivered:10d} {rate * 100:7.1f}%"
        )
    lines += [
        "",
        "offer concentration (paper: top10=50 %, top50=75 %, top100=87 %):",
        f"  {dict((k, round(v, 3)) for k, v in concentration.shares.items())}",
        f"  total offers: {concentration.total_offers} (paper: ~90M)",
    ]
    control = replay_without_market_makers(bench_history, remove_market_makers=False)
    lines.append(
        f"control replay (makers intact) delivery rate: "
        f"{control.total.delivery_rate:.3f}"
    )
    write_result(results_dir, "table2_market_makers.txt", "\n".join(lines))


def test_table2_shape_matches_paper(replay):
    # Every cross-currency payment fails without offers.
    assert replay.cross_currency.submitted > 500
    assert replay.cross_currency.delivered == 0
    # The majority of single-currency payments fail too (paper: 63.9 %).
    assert replay.single_currency.delivery_rate < 0.55
    assert replay.single_currency.delivery_rate > 0.15
    # Overall delivery collapses to ~1/9 (paper: 11.2 %).
    assert replay.total.delivery_rate < 0.25
    # The replayed window is majority cross-currency (paper: 68.7 %).
    cross_share = replay.cross_currency.submitted / replay.total.submitted
    assert cross_share == pytest.approx(0.687, abs=0.1)


def test_offer_concentration_matches_paper(bench_history):
    concentration = offer_concentration(bench_history.offer_records)
    assert concentration.share_of_top(10) == pytest.approx(0.50, abs=0.1)
    assert concentration.share_of_top(50) == pytest.approx(0.75, abs=0.1)
    assert concentration.share_of_top(100) == pytest.approx(0.87, abs=0.07)


def test_bench_table2_replay(benchmark, bench_history):
    result = benchmark.pedantic(
        lambda: table2(bench_history), rounds=2, iterations=1
    )
    assert result.cross_currency.delivered == 0
