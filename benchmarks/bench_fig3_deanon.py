"""Figure 3 — information gain of every ⟨A, T, C, D⟩ feature list.

Paper (Section V): ⟨Am,Tsc,C,D⟩ identifies 99.83 % of payments; dropping
the currency changes nothing; dropping the destination costs ~6 points;
dropping the amount costs ~10; dropping the *timestamp* collapses IG below
a coin toss (48.84 %); the weakest list ⟨Al,Tdy,−,−⟩ identifies 1.28 %.
The absolute numbers shift with the 1/800 dataset scale, but the ordering
and the collapse pattern are asserted below.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.api import render_figure3
from repro.core.deanonymizer import Deanonymizer
from repro.core.resolution import (
    FIGURE3_FEATURE_LISTS,
    AmountResolution,
    FeatureList,
    TimeResolution,
)

PAPER_IG = {
    "<Am; Tsc; C; D>": 99.83,
    "<Am; Tsc; -; D>": 99.83,
    "<Am; Tsc; C; ->": 93.78,
    "<-; Tsc; C; D>": 89.86,
    "<Am; -; C; D>": 48.84,
    "<Al; Tdy; -; ->": 1.28,
}


@pytest.fixture(scope="module")
def deanonymizer(bench_dataset):
    return Deanonymizer(bench_dataset)


@pytest.fixture(scope="module")
def gains(deanonymizer):
    return deanonymizer.figure3()


def test_fig3_rendering(gains, results_dir):
    lines = [render_figure3(gains), "", "paper-reported values for comparison:"]
    for label, value in PAPER_IG.items():
        lines.append(f"  {label:24s} {value:6.2f}%")
    write_result(results_dir, "fig3_information_gain.txt", "\n".join(lines))


def test_fig3_shape_matches_paper(gains):
    by_label = {ig.feature_list.label(): ig.percent for ig in gains}
    # Full resolution identifies essentially everything.
    assert by_label["<Am; Tsc; C; D>"] > 97.0
    # Currency is nearly redundant.
    assert abs(by_label["<Am; Tsc; -; D>"] - by_label["<Am; Tsc; C; D>"]) < 2.0
    # Destination matters more than currency, less than timestamp.
    assert by_label["<Am; Tsc; C; ->"] <= by_label["<Am; Tsc; C; D>"]
    # Removing the timestamp hurts far more than removing the amount.
    assert by_label["<Am; -; C; D>"] < by_label["<-; Tsc; C; D>"]
    assert by_label["<Am; -; C; D>"] < 60.0
    # Joint coarsening of A and T decreases IG monotonically.
    assert by_label["<Ah; Tmn; C; D>"] >= by_label["<Aa; Thr; C; D>"] - 1e-9
    assert by_label["<Aa; Thr; C; D>"] >= by_label["<Al; Tdy; C; D>"] - 1e-9
    # The weakest list is one of the two smallest gains.
    ordered = sorted(by_label.values())
    assert by_label["<Al; Tdy; -; ->"] <= ordered[1] + 1e-9


def test_bench_full_resolution_ig(benchmark, bench_dataset):
    """Benchmark: one IG computation over the whole history."""
    deanonymizer = Deanonymizer(bench_dataset)

    def compute():
        deanonymizer._cache.clear()
        return deanonymizer.information_gain(FeatureList())

    ig = benchmark(compute)
    assert ig.percent > 97.0


def test_bench_low_resolution_ig(benchmark, bench_dataset):
    deanonymizer = Deanonymizer(bench_dataset)
    low = FeatureList(AmountResolution.LOW, TimeResolution.DAYS, True, True)

    def compute():
        deanonymizer._cache.clear()
        return deanonymizer.information_gain(low)

    ig = benchmark(compute)
    assert 0.0 < ig.percent <= 100.0
