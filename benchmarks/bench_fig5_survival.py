"""Figure 5 — survival functions of exchanged amounts per currency.

Paper (appendix A): EUR and USD curves are "remarkably similar"; BTC and
CCK live in the micro-amount regime; MTL is a cliff of ~1e9 spam amounts;
"Global" is the currency-unaware mixture.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.api import render_figure5
from repro.analysis.survival import curve_distance, figure5_curves

SAMPLE_POINTS = (1e-4, 1e-2, 1.0, 1e2, 1e4, 1e6, 1e8, 1e10, 1e12)


@pytest.fixture(scope="module")
def curves(bench_dataset):
    return figure5_curves(bench_dataset)


def test_fig5_rendering(curves, results_dir):
    write_result(
        results_dir, "fig5_survival.txt", render_figure5(curves, SAMPLE_POINTS)
    )


def test_fig5_shape_matches_paper(curves):
    # EUR ~ USD (same market strength, same curve).
    assert curve_distance(curves["EUR"], curves["USD"]) < 0.25
    # BTC and CCK: micro-transaction regime.
    assert curves["BTC"].at(1.0) < 0.3
    assert curves["CCK"].at(1.0) < 0.3
    # CCK tracks BTC more closely than it tracks USD (the paper's hint that
    # CCK refers to something BTC-like or crafted).
    assert curve_distance(curves["CCK"], curves["BTC"]) < curve_distance(
        curves["CCK"], curves["USD"]
    )
    # MTL: everything sits around 1e9.
    assert curves["MTL"].at(1e7) > 0.95
    assert curves["MTL"].at(1e11) < 0.05
    # XRP spans a wide range: neither micro nor cliff.
    assert 0.05 < curves["XRP"].at(10.0) < 0.95
    # Global mixes everything.
    assert curves["Global"].samples >= max(
        curve.samples for code, curve in curves.items() if code != "Global"
    )


def test_fig5_curves_monotone(curves):
    for curve in curves.values():
        values = list(curve.values)
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


def test_bench_survival_computation(benchmark, bench_dataset):
    curves = benchmark(figure5_curves, bench_dataset)
    assert "Global" in curves
