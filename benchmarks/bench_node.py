"""System-throughput benches: the full node, the applier, the arbitrage bot.

Not a paper artifact — these measure the reproduction itself, so regressions
in the substrates (pathfinding, consensus rounds, book matching) show up as
throughput changes.
"""

from __future__ import annotations

import pytest

from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.apply import TransactionApplier
from repro.ledger.crypto import KeyPair
from repro.ledger.currency import USD, XRP
from repro.ledger.offers import Offer
from repro.ledger.state import LedgerState
from repro.ledger.transactions import Payment
from repro.node import RippledNode
from repro.payments.arbitrage import ArbitrageBot


def build_world(n_users: int = 50):
    state = LedgerState()
    gateway = account_from_name("bench-gateway", namespace="bench-node")
    state.create_account(gateway, 10 ** 12)
    users = []
    for index in range(n_users):
        account = account_from_name(f"bench-user-{index}", namespace="bench-node")
        state.create_account(account, 10 ** 10)
        state.set_trust(account, gateway, Amount.from_value(USD, 10 ** 7))
        state.apply_hop(gateway, account, Amount.from_value(USD, 10 ** 5))
        users.append(account)
    return state, gateway, users


def test_bench_applier_throughput(benchmark):
    """Signed-payment applications per second (includes Schnorr verify)."""
    state, _gateway, users = build_world()
    applier = TransactionApplier(state)
    key = KeyPair.from_seed(b"bench-user-0")
    sequence = {"next": 1}

    def apply_one():
        tx = Payment(
            account=users[0],
            sequence=sequence["next"],
            destination=users[1],
            amount=Amount.from_value(USD, 3),
        )
        tx.sign(key)
        sequence["next"] += 1
        outcome = applier.apply(tx)
        assert outcome.succeeded
        return outcome

    benchmark(apply_one)


def test_bench_unsigned_payment_throughput(benchmark):
    """Engine-only payments per second (routing + execution, no crypto)."""
    state, _gateway, users = build_world()
    applier = TransactionApplier(state, require_signatures=False)
    sequence = {"next": 1}

    def apply_one():
        tx = Payment(
            account=users[2],
            sequence=sequence["next"],
            destination=users[3],
            amount=Amount.from_value(USD, 3),
        )
        sequence["next"] += 1
        return applier.apply(tx)

    outcome = benchmark(apply_one)
    assert outcome.succeeded


def test_bench_node_ledger_close(benchmark):
    """Full closes per second: consensus round + canonical apply + seal."""
    state, _gateway, users = build_world(10)
    node = RippledNode(state=state, require_signatures=False, seed=3)
    sequence = {"next": 1}

    def close_once():
        for offset in range(5):
            node.submit(
                Payment(
                    account=users[4],
                    sequence=sequence["next"],
                    destination=users[5 + offset % 3],
                    amount=Amount.from_value(USD, 1),
                )
            )
            sequence["next"] += 1
        ledger = node.close_ledger()
        assert ledger is not None
        return ledger

    benchmark.pedantic(close_once, rounds=20, iterations=1)


def test_bench_arbitrage_scan(benchmark):
    state, _gateway, _users = build_world(5)
    maker = account_from_name("bench-maker", namespace="bench-node")
    state.create_account(maker, 10 ** 14)
    sequence = 1
    for currency in (USD,):
        for index in range(20):
            state.place_offer(
                Offer(
                    owner=maker,
                    sequence=sequence,
                    taker_pays=Amount.from_value(XRP, 1000 + index),
                    taker_gets=Amount.from_value(currency, 10),
                )
            )
            sequence += 1
            state.place_offer(
                Offer(
                    owner=maker,
                    sequence=sequence,
                    taker_pays=Amount.from_value(currency, 10),
                    taker_gets=Amount.from_value(XRP, 990 - index),
                )
            )
            sequence += 1
    bot = ArbitrageBot(state, maker)
    quotes = benchmark(bot.find_opportunities, [USD])
    assert isinstance(quotes, list)
