"""Extension benches: defenses, wallet linking, and the reward proposal.

These go beyond the paper's evaluation and quantify its *discussion*
sections: how well the countermeasures of Section V's closing paragraphs
would work (and what they cost), how the related-work linking heuristics
compose with the attack, and whether Section IV's proposed reward system
would actually grow the validator population.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.consensus.rewards import RewardPolicy, IncentiveSimulation, compare_policies
from repro.core.clustering import activation_clusters, behavioural_clusters
from repro.core.defenses import standard_defense_suite
from repro.core.resolution import FIGURE3_FEATURE_LISTS


@pytest.fixture(scope="module")
def defense_reports(bench_dataset):
    return standard_defense_suite(
        bench_dataset, feature_lists=FIGURE3_FEATURE_LISTS[:1]
    )


def test_defense_suite_rendering(defense_reports, results_dir):
    label = FIGURE3_FEATURE_LISTS[0].label()
    lines = ["Extension — de-anonymization countermeasures"]
    for report in defense_reports:
        lines.append(
            f"  {report.name:22s} IG {report.ig_before[label]:6.2f}% -> "
            f"{report.ig_after[label]:6.2f}%   costs={report.costs}"
        )
    write_result(results_dir, "ext_defenses.txt", "\n".join(lines))


def test_defenses_tradeoffs(defense_reports):
    label = FIGURE3_FEATURE_LISTS[0].label()
    by_name = {report.name: report for report in defense_reports}
    # Settlement batching blunts the strongest feature but not to zero.
    batching = by_name["settlement-batching"]
    assert batching.ig_after[label] <= batching.ig_before[label]
    assert batching.costs["mean_settlement_delay_seconds"] > 0
    # Per-payment wallets leave IG intact but zero the history exposure —
    # and the bootstrap cost is one trust line per IOU payment.
    wallets = by_name["per-payment-wallets"]
    assert wallets.costs["history_exposure_after"] == 0.0
    assert wallets.costs["history_exposure_before"] > 0.5
    assert wallets.costs["trust_lines_to_bootstrap"] > 10_000
    # Amount padding costs real money.
    padding = by_name["amount-padding"]
    assert padding.costs["mean_overpayment_fraction"] > 0.05


def test_wallet_linking(bench_history, bench_dataset, results_dir):
    clusters = activation_clusters(bench_history.records, min_size=3)
    behavioural = behavioural_clusters(bench_dataset, threshold=0.85, min_payments=10)
    lines = [
        "Extension — wallet-linking heuristics (Moreno-Sanchez et al.)",
        f"  activation clusters (>=3 wallets per funder): {len(clusters)}",
    ]
    if clusters:
        funder, members = clusters[0]
        lines.append(
            f"  largest: {bench_history.cast.label(funder)} activated "
            f"{len(members)} accounts"
        )
    lines.append(f"  behavioural clusters (similarity >= 0.85): {len(behavioural)}")
    write_result(results_dir, "ext_wallet_linking.txt", "\n".join(lines))
    # ACCOUNT_ZERO / heavy XRP senders activate many accounts.
    assert clusters


def test_reward_proposal(results_dir):
    sweep = compare_policies([0.0, 0.01, 0.05, 0.2, 1.0], seed=8, epochs=40)
    lines = ["Extension — Section IV reward-system proposal (tax per transaction)"]
    for tax, validators, exposure in sweep:
        lines.append(
            f"  tax {tax:5.2f}: equilibrium validators {validators:4d}, "
            f"top-3 signature share {exposure:.1%}"
        )
    write_result(results_dir, "ext_rewards.txt", "\n".join(lines))
    sizes = [validators for _, validators, _ in sweep]
    assert sizes[0] == 5            # status quo: Ripple Labs only
    assert sizes == sorted(sizes)   # more reward, more validators
    assert sizes[-1] > 30           # a real population emerges
    exposures = [exposure for _, _, exposure in sweep]
    assert exposures[-1] < exposures[0]


def test_bench_defense_evaluation(benchmark, bench_dataset):
    from repro.core.defenses import evaluate_defense, settlement_batching

    report = benchmark.pedantic(
        lambda: evaluate_defense(
            bench_dataset, "settlement-batching", settlement_batching
        ),
        rounds=2,
        iterations=1,
    )
    assert report.ig_after


def test_bench_incentive_simulation(benchmark):
    result = benchmark(
        lambda: IncentiveSimulation(RewardPolicy(0.05), seed=9).run(40)
    )
    assert result[-1].active_validators >= 5
