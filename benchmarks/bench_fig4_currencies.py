"""Figure 4 — most-used currencies by payment count.

Paper (appendix A): XRP tops the list with 49 % of all payments; the
unrecognized CCK and MTL are second and third; BTC is the first well-known
currency (4.7 %), then USD (3.8 %), CNY (3.3 %), JPY (2.1 %); EUR is only
11th with 0.4 %; a long tail of dozens of currencies follows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.currencies import (
    currency_ranking,
    rank_of,
    share_of,
    unrecognized_in_top,
)
from repro.api import render_figure4

PAPER_SHARES = {"XRP": 0.49, "BTC": 0.047, "USD": 0.038, "CNY": 0.033, "JPY": 0.021, "EUR": 0.004}


@pytest.fixture(scope="module")
def ranking(bench_dataset):
    return currency_ranking(bench_dataset)


def test_fig4_rendering(bench_dataset, ranking, results_dir):
    lines = [render_figure4(ranking, top=30), "", "paper shares for comparison:"]
    for code, share in PAPER_SHARES.items():
        measured = share_of(bench_dataset, code)
        lines.append(f"  {code}: paper {share * 100:5.2f}%  measured {measured * 100:5.2f}%")
    write_result(results_dir, "fig4_currencies.txt", "\n".join(lines))


def test_fig4_shape_matches_paper(bench_dataset, ranking):
    assert ranking[0].code == "XRP"
    assert ranking[0].share == pytest.approx(0.49, abs=0.02)
    # CCK and MTL (unrecognized) fill the next two slots.
    assert {ranking[1].code, ranking[2].code} == {"CCK", "MTL"}
    assert unrecognized_in_top(bench_dataset, 3) != []
    # Well-known currency ordering: BTC > USD > CNY > JPY > ... > EUR.
    assert rank_of(bench_dataset, "BTC") < rank_of(bench_dataset, "USD")
    assert rank_of(bench_dataset, "USD") < rank_of(bench_dataset, "CNY")
    assert rank_of(bench_dataset, "CNY") < rank_of(bench_dataset, "JPY")
    assert rank_of(bench_dataset, "JPY") < rank_of(bench_dataset, "EUR")
    for code, share in PAPER_SHARES.items():
        assert share_of(bench_dataset, code) == pytest.approx(share, abs=0.015)
    # A genuine long tail exists.
    assert len(ranking) > 30


def test_bench_currency_ranking(benchmark, bench_dataset):
    ranking = benchmark(currency_ranking, bench_dataset)
    assert ranking[0].code == "XRP"
