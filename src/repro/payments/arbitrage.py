"""Arbitrage detection and execution across Ripple order books.

Section III-C of the paper: "Ripple users can also try to take advantage of
the exchange offers, exploiting the price skew between two or more markets.
This process, called arbitrage, consists in buying assets at a competitive
exchange rate and then selling them immediately at a higher price.
Arbitrage is allowed by design ... and can also be performed automatically,
for example by a financial bot."

This module is that bot: it scans for profitable cycles over the live
books — two-legged (buy X with XRP, sell X for more XRP) and triangular
(XRP → X → Y → XRP) — and executes them atomically through the journaled
executor, so a cycle that dries up mid-flight leaves no trace.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import OfferError, PaymentError
from repro.ledger.accounts import AccountID
from repro.ledger.amounts import DROPS_PER_XRP, Amount
from repro.ledger.currency import XRP, Currency
from repro.ledger.state import LedgerState
from repro.payments.execution import Executor


@dataclass(frozen=True)
class CycleQuote:
    """A candidate arbitrage cycle and its marginal profitability.

    ``legs`` are (pays, gets) currency pairs walked in order, starting and
    ending in XRP.  ``rate`` is the XRP multiplier of sending one unit
    around the cycle at the current best offers: rate > 1 means profit.
    """

    legs: Tuple[Tuple[str, str], ...]
    rate: float
    #: XRP volume executable at the quoted rate (bounded by offer depth).
    capacity_xrp: float

    @property
    def profitable(self) -> bool:
        return self.rate > 1.0

    def label(self) -> str:
        chain = " -> ".join(["XRP"] + [gets for _pays, gets in self.legs])
        return f"{chain} (x{self.rate:.4f})"


@dataclass
class ArbitrageResult:
    """Outcome of one executed cycle."""

    quote: CycleQuote
    xrp_in: float
    xrp_out: float

    @property
    def profit_xrp(self) -> float:
        return self.xrp_out - self.xrp_in


class ArbitrageBot:
    """Scans books for profitable cycles and executes them atomically."""

    def __init__(self, state: LedgerState, account: AccountID):
        self.state = state
        self.account = account

    # Scanning ---------------------------------------------------------------------

    def _best_rate(self, pays: Currency, gets: Currency) -> Optional[Tuple[float, float]]:
        """(gets per pays, gets-depth) at the best offer of the book."""
        offers = self.state.book_offers(pays, gets)
        if not offers:
            return None
        best = offers[0]
        return 1.0 / best.quality, best.taker_gets.to_float()

    def two_leg_quotes(self, currencies: Sequence[Currency]) -> List[CycleQuote]:
        """XRP -> X -> XRP cycles (buy cheap, sell dear across two books)."""
        quotes: List[CycleQuote] = []
        for currency in currencies:
            if currency == XRP:
                continue
            buy = self._best_rate(XRP, currency)   # XRP buys currency
            sell = self._best_rate(currency, XRP)  # currency buys XRP
            if buy is None or sell is None:
                continue
            buy_rate, buy_depth = buy
            sell_rate, sell_depth = sell
            rate = buy_rate * sell_rate
            capacity = min(buy_depth / max(buy_rate, 1e-12), sell_depth / max(rate, 1e-12))
            quotes.append(
                CycleQuote(
                    legs=(("XRP", currency.code), (currency.code, "XRP")),
                    rate=rate,
                    capacity_xrp=capacity,
                )
            )
        return quotes

    def triangular_quotes(self, currencies: Sequence[Currency]) -> List[CycleQuote]:
        """XRP -> X -> Y -> XRP cycles across three books."""
        quotes: List[CycleQuote] = []
        candidates = [c for c in currencies if c != XRP]
        for first, second in itertools.permutations(candidates, 2):
            leg1 = self._best_rate(XRP, first)
            leg2 = self._best_rate(first, second)
            leg3 = self._best_rate(second, XRP)
            if leg1 is None or leg2 is None or leg3 is None:
                continue
            rate = leg1[0] * leg2[0] * leg3[0]
            capacity = min(
                leg1[1] / max(leg1[0], 1e-12),
                leg2[1] / max(leg1[0] * leg2[0], 1e-12),
                leg3[1] / max(rate, 1e-12),
            )
            quotes.append(
                CycleQuote(
                    legs=(
                        ("XRP", first.code),
                        (first.code, second.code),
                        (second.code, "XRP"),
                    ),
                    rate=rate,
                    capacity_xrp=capacity,
                )
            )
        return quotes

    def find_opportunities(
        self, currencies: Sequence[Currency], include_triangular: bool = True
    ) -> List[CycleQuote]:
        """All profitable cycles, best first."""
        quotes = self.two_leg_quotes(currencies)
        if include_triangular:
            quotes.extend(self.triangular_quotes(currencies))
        profitable = [quote for quote in quotes if quote.profitable]
        profitable.sort(key=lambda quote: -quote.rate)
        return profitable

    # Execution ---------------------------------------------------------------------

    def execute(self, quote: CycleQuote, xrp_budget: float) -> ArbitrageResult:
        """Run one cycle atomically; raises on any shortfall.

        The bot's own XRP pays the first leg; each book leg is filled
        against the best offer; the final leg returns XRP.  Everything is
        journaled: a failure rolls the whole cycle back.
        """
        volume = min(xrp_budget, quote.capacity_xrp)
        if volume <= 0:
            raise PaymentError("no executable volume for this cycle")
        executor = Executor(self.state)
        try:
            holding = volume  # in the currency of the current leg
            for pays_code, gets_code in quote.legs:
                pays = Currency(pays_code)
                gets = Currency(gets_code)
                offers = self.state.book_offers(pays, gets)
                if not offers:
                    raise OfferError(f"book {pays_code}/{gets_code} vanished")
                best = offers[0]
                gets_amount = best.max_gets_for(Amount.from_value(pays, holding))
                if gets_amount.to_float() <= 0:
                    raise OfferError("offer too small for the cycle volume")
                pays_amount = executor.fill(best, gets_amount)
                # Settle the legs against the offer owner's balances: XRP
                # legs move real XRP; IOU legs are book-internal here (the
                # bot holds value as book credit between legs).
                if pays == XRP:
                    executor.xrp(
                        self.account,
                        best.owner,
                        int(round(pays_amount.to_float() * DROPS_PER_XRP)),
                    )
                if gets == XRP:
                    executor.xrp(
                        best.owner,
                        self.account,
                        int(round(gets_amount.to_float() * DROPS_PER_XRP)),
                    )
                holding = gets_amount.to_float()
        except (OfferError, PaymentError, Exception):
            executor.rollback()
            raise
        executor.commit()
        return ArbitrageResult(quote=quote, xrp_in=volume, xrp_out=holding)

    def harvest(
        self,
        currencies: Sequence[Currency],
        xrp_budget: float,
        max_cycles: int = 10,
    ) -> List[ArbitrageResult]:
        """Repeatedly execute the best opportunity until the market is
        efficient (no profitable cycle) or ``max_cycles`` is hit."""
        results: List[ArbitrageResult] = []
        for _ in range(max_cycles):
            opportunities = self.find_opportunities(currencies)
            if not opportunities:
                break
            try:
                result = self.execute(opportunities[0], xrp_budget)
            except (OfferError, PaymentError):
                break
            if result.profit_xrp <= 0:
                break
            results.append(result)
        return results
