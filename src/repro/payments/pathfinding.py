"""Payment path finding over the trust graph.

Ripple's path finder looks for short trust-line routes with enough liquidity
and may split one payment across several *parallel paths* — the structure
the paper quantifies in Fig. 6 (most payments use ≤5 intermediate hops and
1–4 parallel paths; the MTL spam deliberately forced 8 hops / 6 paths).

We implement the classic max-flow-by-shortest-augmenting-paths scheme,
bounded by Ripple-like limits: a maximum path length and a maximum number of
parallel paths per payment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ledger.accounts import AccountID
from repro.payments.graph import DUST, TrustGraph
from repro.obs.metrics import METRICS

#: Ripple rejects pathologically long paths; the ledger data in Fig. 6 shows
#: organic paths up to ~11 intermediate hops, spam up to 44.
DEFAULT_MAX_INTERMEDIATE_HOPS = 8
#: Maximum number of parallel paths a payment may be split into.
DEFAULT_MAX_PARALLEL_PATHS = 6


@dataclass
class PathPlan:
    """The outcome of planning one payment: paths and per-path amounts."""

    paths: List[List[AccountID]] = field(default_factory=list)
    amounts: List[float] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(self.amounts)

    @property
    def parallel_paths(self) -> int:
        return len(self.paths)

    @property
    def max_intermediate_hops(self) -> int:
        """Intermediate-hop count of the longest path in the plan."""
        if not self.paths:
            return 0
        return max(len(path) - 2 for path in self.paths)

    def is_complete_for(self, amount: float, tolerance: float = 1e-6) -> bool:
        return self.total >= amount * (1 - tolerance)


def shortest_path(
    graph: TrustGraph,
    source: AccountID,
    target: AccountID,
    max_intermediate_hops: int = DEFAULT_MAX_INTERMEDIATE_HOPS,
    residual: Optional[Dict] = None,
) -> Optional[List[AccountID]]:
    """BFS for the shortest usable path, honouring residual capacities.

    ``residual`` maps (payer, payee) to capacity already consumed by earlier
    paths of the same payment plan; hops with no remaining capacity are
    skipped.
    """
    max_nodes = max_intermediate_hops + 2
    parents: Dict[AccountID, AccountID] = {source: source}
    # Depth rides along in the queue instead of a second dict: one fewer
    # hashed write per discovered node in the hottest loop of the system.
    queue = deque([(source, 0)])
    # Hot loop: bind methods once; every payment runs several BFS passes.
    successor_pairs = graph.successor_pairs
    can_relay = graph.can_relay
    # The first BFS of every plan runs with no residual at all (nothing
    # consumed yet); skipping the per-edge residual lookup there removes a
    # tuple allocation and two hashes per expanded edge.
    residual_get = residual.get if residual else None
    while queue:
        node, node_depth = queue.popleft()
        if node_depth + 1 >= max_nodes and node != target:
            continue
        if node != source and not can_relay(node):
            continue
        next_depth = node_depth + 1
        for nxt, capacity in successor_pairs(node):
            if nxt in parents:
                continue
            if residual_get is not None:
                capacity -= residual_get((node, nxt), 0.0)
            if capacity <= DUST:
                continue
            parents[nxt] = node
            if nxt == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append((nxt, next_depth))
    return None


def plan_payment(
    graph: TrustGraph,
    source: AccountID,
    target: AccountID,
    amount: float,
    max_intermediate_hops: int = DEFAULT_MAX_INTERMEDIATE_HOPS,
    max_parallel_paths: int = DEFAULT_MAX_PARALLEL_PATHS,
) -> PathPlan:
    """Split ``amount`` over up to ``max_parallel_paths`` augmenting paths.

    Greedy Edmonds–Karp bounded by Ripple's limits: repeatedly find the
    shortest path with residual liquidity and push the bottleneck (or the
    remaining amount, whichever is smaller).  The plan may be partial; the
    caller decides whether partial delivery fails the payment.
    """
    plan = PathPlan()
    residual: Dict = {}
    remaining = amount
    while remaining > DUST and plan.parallel_paths < max_parallel_paths:
        if METRICS.enabled:
            METRICS.count("pathfinding.bfs_runs")
        path = shortest_path(
            graph, source, target, max_intermediate_hops, residual
        )
        if path is None:
            break
        # One capacity query per hop: the residual-adjusted bottleneck is
        # always <= the raw bottleneck, so the raw pass is redundant.
        capacity = min(
            graph.capacity(path[i], path[i + 1])
            - residual.get((path[i], path[i + 1]), 0.0)
            for i in range(len(path) - 1)
        )
        if capacity <= DUST:
            break
        push = min(capacity, remaining)
        for i in range(len(path) - 1):
            key = (path[i], path[i + 1])
            residual[key] = residual.get(key, 0.0) + push
        plan.paths.append(path)
        plan.amounts.append(push)
        remaining -= push
    if METRICS.enabled:
        METRICS.count("pathfinding.plans")
        METRICS.count("pathfinding.paths_found", plan.parallel_paths)
    return plan


def forced_plan(
    paths: List[List[AccountID]], amounts: List[float]
) -> PathPlan:
    """Build a plan from explicitly supplied paths (spam transactions pin
    their routes; Ripple lets the submitter specify paths)."""
    plan = PathPlan()
    plan.paths = [list(path) for path in paths]
    plan.amounts = list(amounts)
    return plan
