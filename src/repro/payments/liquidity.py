"""Network-liquidity metrics over the credit graph.

Table II shows *connectivity* collapsing without market makers; these
metrics quantify the same fabric continuously instead of binarily:

* **max flow** between two accounts — the largest payment that could
  possibly be delivered (unbounded parallel paths);
* **pairwise deliverability** — the fraction of random account pairs with
  any usable path, and the median max flow among connected pairs;
* **cut analysis** — how deliverability degrades as a given set of
  relayers (e.g. the top market makers) is removed one by one, turning the
  paper's single counterfactual into a curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.ledger.accounts import AccountID
from repro.ledger.currency import Currency
from repro.ledger.state import LedgerState
from repro.payments.engine import FilteredTrustGraph
from repro.payments.graph import DUST, TrustGraph
from repro.payments.pathfinding import shortest_path


def max_flow(
    graph: TrustGraph,
    source: AccountID,
    sink: AccountID,
    max_intermediate_hops: int = 8,
    max_iterations: int = 64,
) -> float:
    """Maximum value deliverable from ``source`` to ``sink``.

    Edmonds-Karp over the live credit graph, without Ripple's parallel-path
    cap — this is capacity, not a routable plan.  Residuals are tracked
    explicitly; the underlying state is never mutated.
    """
    residual: dict = {}
    total = 0.0
    for _ in range(max_iterations):
        path = shortest_path(
            graph, source, sink, max_intermediate_hops, residual
        )
        if path is None:
            break
        bottleneck = float("inf")
        for a, b in zip(path, path[1:]):
            capacity = graph.capacity(a, b) - residual.get((a, b), 0.0)
            bottleneck = min(bottleneck, capacity)
        if bottleneck <= DUST:
            break
        for a, b in zip(path, path[1:]):
            residual[(a, b)] = residual.get((a, b), 0.0) + bottleneck
        total += bottleneck
    return total


@dataclass(frozen=True)
class DeliverabilityReport:
    """Connectivity of random pairs in one currency."""

    currency: str
    pairs_sampled: int
    connected_pairs: int
    median_max_flow: float

    @property
    def deliverability(self) -> float:
        return self.connected_pairs / self.pairs_sampled if self.pairs_sampled else 0.0


def sample_deliverability(
    state: LedgerState,
    currency: Currency,
    accounts: Sequence[AccountID],
    pairs: int = 50,
    seed: int = 0,
    banned: Optional[Set[AccountID]] = None,
) -> DeliverabilityReport:
    """Deliverability over random (sender, receiver) pairs.

    ``banned`` removes accounts from the relay fabric (endpoints stay
    usable), the same knob as the Table II replay.
    """
    rng = np.random.default_rng(seed)
    connected = 0
    flows: List[float] = []
    for _ in range(pairs):
        source, sink = (
            accounts[int(rng.integers(0, len(accounts)))],
            accounts[int(rng.integers(0, len(accounts)))],
        )
        if source == sink:
            continue
        if banned:
            graph: TrustGraph = FilteredTrustGraph(
                state, currency, banned, source, sink
            )
        else:
            graph = TrustGraph(state, currency)
        flow = max_flow(graph, source, sink)
        if flow > DUST:
            connected += 1
            flows.append(flow)
    return DeliverabilityReport(
        currency=currency.code,
        pairs_sampled=pairs,
        connected_pairs=connected,
        median_max_flow=float(np.median(flows)) if flows else 0.0,
    )


def relayer_removal_curve(
    state: LedgerState,
    currency: Currency,
    accounts: Sequence[AccountID],
    relayers: Sequence[AccountID],
    steps: Iterable[int] = (0, 10, 30, 60, 120),
    pairs: int = 40,
    seed: int = 0,
) -> List[Tuple[int, float]]:
    """Deliverability as the first-k ``relayers`` are removed.

    The continuous version of Table II: each point removes the top-k market
    makers (or any relayer ranking) and re-measures pairwise connectivity.
    """
    curve: List[Tuple[int, float]] = []
    for k in steps:
        banned = set(relayers[:k])
        report = sample_deliverability(
            state, currency, accounts, pairs=pairs, seed=seed, banned=banned
        )
        curve.append((k, report.deliverability))
    return curve
