"""The payment engine: route, execute, and report Ripple payments.

``PaymentEngine`` is the top of the payments substrate.  Given a sender, a
receiver, and an amount, it:

1. routes the payment — direct XRP transfer, same-currency trust paths
   (possibly split over parallel paths), a same-currency detour through
   order books, or a cross-currency bridge;
2. executes the chosen route atomically against the ledger state;
3. reports the realized path structure (intermediate hops, parallel paths,
   bridge accounts) — the raw material of the paper's Fig. 6, Fig. 7 and
   Table II analyses.

The engine also supports the two experiment knobs the paper's replay needs:
``banned_intermediaries`` (remove Market Makers from the trust fabric) and
``allow_offers`` (remove their exchange offers), plus ``forced_paths`` for
the spam transactions that pinned their routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    InsufficientBalanceError,
    NoPathError,
    OfferError,
    PathDryError,
    PaymentError,
    TrustLineError,
    UnknownAccountError,
)
from repro.ledger.accounts import AccountID
from repro.ledger.amounts import DROPS_PER_XRP, Amount
from repro.ledger.currency import XRP, Currency
from repro.ledger.state import LedgerState
from repro.ledger.transactions import BASE_FEE_DROPS
from repro.payments.bridging import BridgePlan, plan_bridge, plan_same_currency_detour
from repro.obs.metrics import METRICS
from repro.obs.trace import NULL_SPAN as _NULL_SPAN, TRACER
from repro.payments.execution import ExecutionOutcome, Executor
from repro.payments.graph import Edge, TrustGraph
from repro.payments.pathfinding import (
    DEFAULT_MAX_INTERMEDIATE_HOPS,
    DEFAULT_MAX_PARALLEL_PATHS,
    PathPlan,
    forced_plan,
    plan_payment,
)


class FilteredTrustGraph(TrustGraph):
    """Trust graph with some accounts banned as *intermediaries*.

    Banned accounts may still be payment endpoints; they just cannot relay.
    This is the Table II counterfactual: strip Market Makers out of the
    routing fabric while leaving their own accounts intact.

    When a ``base`` graph is supplied, successor lists are read through it,
    so consecutive filtered views (one per replayed payment) share one
    memoized edge cache instead of each rebuilding it.
    """

    def __init__(
        self,
        state: LedgerState,
        currency: Currency,
        banned: Set[AccountID],
        source: AccountID,
        target: AccountID,
        base: Optional[TrustGraph] = None,
    ):
        super().__init__(state, currency)
        self._banned = banned
        self._source = source
        self._target = target
        self._base = base if base is not None else TrustGraph(state, currency)

    def successors(self, payer: AccountID):
        if payer in self._banned and payer not in (self._source, self._target):
            return
        for edge in self._base.successors(payer):
            if edge.payee in self._banned and edge.payee != self._target:
                continue
            yield edge

    def successor_pairs(self, payer: AccountID):
        # The path finder's hot interface must apply the same ban filter as
        # successors(); reading through the base graph keeps its line cache
        # shared across the consecutive filtered views of a replay.
        if payer in self._banned and payer not in (self._source, self._target):
            return []
        banned = self._banned
        target = self._target
        return [
            (payee, capacity)
            for payee, capacity in self._base.successor_pairs(payer)
            if payee not in banned or payee == target
        ]


@dataclass
class PaymentResult:
    """Outcome of one submitted payment."""

    success: bool
    sender: AccountID
    receiver: AccountID
    amount: Amount
    error: Optional[str] = None
    outcome: ExecutionOutcome = field(default_factory=ExecutionOutcome)
    is_cross_currency: bool = False
    fee_drops: int = 0

    @property
    def intermediate_hops(self) -> int:
        return self.outcome.intermediate_hops

    @property
    def parallel_paths(self) -> int:
        return self.outcome.parallel_paths

    @property
    def intermediaries(self) -> List[AccountID]:
        """Every account that relayed value (excluding the endpoints)."""
        seen: List[AccountID] = []
        for path in self.outcome.paths:
            for node in path[1:-1]:
                if node not in seen:
                    seen.append(node)
        return seen


class PaymentEngine:
    """Routes and executes payments against a :class:`LedgerState`."""

    def __init__(
        self,
        state: LedgerState,
        enforce_fees: bool = True,
        max_intermediate_hops: int = DEFAULT_MAX_INTERMEDIATE_HOPS,
        max_parallel_paths: int = DEFAULT_MAX_PARALLEL_PATHS,
    ):
        self.state = state
        self.enforce_fees = enforce_fees
        self.max_intermediate_hops = max_intermediate_hops
        self.max_parallel_paths = max_parallel_paths
        #: Memoized per-currency graph views; safe to reuse across payments
        #: because TrustGraph revalidates against the ledger's trust
        #: versions on every successors() query.
        self._graph_cache: Dict[str, TrustGraph] = {}

    # Public API -----------------------------------------------------------------

    def submit(
        self,
        sender: AccountID,
        receiver: AccountID,
        amount: Amount,
        send_max: Optional[Amount] = None,
        forced_paths: Optional[Sequence[Tuple[List[AccountID], float]]] = None,
        banned_intermediaries: Optional[Set[AccountID]] = None,
        allow_offers: bool = True,
    ) -> PaymentResult:
        """Route and atomically execute one payment.

        Returns a :class:`PaymentResult`; on failure the ledger state is
        unchanged except for the burned fee (as in Ripple, where failed
        transactions still cost their fee once they claim a ledger slot).
        """
        if METRICS.enabled or TRACER.verbose:
            # Per-payment spans only under REPRO_TRACE_VERBOSE — at 12k+
            # payments a span each would swamp the default trace.
            with METRICS.timer("engine.submit"), (
                TRACER.span("payments.submit")
                if TRACER.verbose else _NULL_SPAN
            ):
                result = self._submit(
                    sender,
                    receiver,
                    amount,
                    send_max,
                    forced_paths,
                    banned_intermediaries,
                    allow_offers,
                )
            METRICS.count("engine.payments")
            if not result.success:
                METRICS.count("engine.failures")
            return result
        return self._submit(
            sender,
            receiver,
            amount,
            send_max,
            forced_paths,
            banned_intermediaries,
            allow_offers,
        )

    def submit_batch(
        self,
        payments: Sequence[Tuple[AccountID, AccountID, Amount]],
        banned_intermediaries: Optional[Set[AccountID]] = None,
        allow_offers: bool = True,
    ) -> List[PaymentResult]:
        """Route and execute many payments in one call, in order.

        Semantically identical to calling :meth:`submit` once per
        ``(sender, receiver, amount)`` tuple, but the per-payment overhead
        is amortized across the batch: one metrics timer and one counter
        flush for the whole call instead of one per payment, and endpoint
        validation is a direct dictionary membership test instead of two
        exception-guarded lookups.  The replay loops (Table II, bench)
        submit tens of thousands of payments back to back; this is their
        entry point.
        """
        if METRICS.enabled or TRACER.verbose:
            with METRICS.timer("engine.submit_batch"), (
                TRACER.span("payments.submit_batch")
                if TRACER.verbose else _NULL_SPAN
            ):
                results = self._submit_batch(
                    payments, banned_intermediaries, allow_offers
                )
            METRICS.count("engine.payments", len(results))
            failures = sum(1 for r in results if not r.success)
            if failures:
                METRICS.count("engine.failures", failures)
            return results
        return self._submit_batch(payments, banned_intermediaries, allow_offers)

    def _submit_batch(
        self,
        payments: Sequence[Tuple[AccountID, AccountID, Amount]],
        banned_intermediaries: Optional[Set[AccountID]],
        allow_offers: bool,
    ) -> List[PaymentResult]:
        accounts = self.state.accounts
        results: List[PaymentResult] = []
        for sender, receiver, amount in payments:
            if sender not in accounts or receiver not in accounts:
                missing = sender if sender not in accounts else receiver
                results.append(
                    PaymentResult(
                        success=False,
                        sender=sender,
                        receiver=receiver,
                        amount=amount,
                        error=f"unknown account {missing.short()}",
                    )
                )
                continue
            results.append(
                self._submit_validated(
                    sender,
                    receiver,
                    amount,
                    None,
                    None,
                    banned_intermediaries,
                    allow_offers,
                )
            )
        return results

    def _submit(
        self,
        sender: AccountID,
        receiver: AccountID,
        amount: Amount,
        send_max: Optional[Amount],
        forced_paths: Optional[Sequence[Tuple[List[AccountID], float]]],
        banned_intermediaries: Optional[Set[AccountID]],
        allow_offers: bool,
    ) -> PaymentResult:
        try:
            self.state.account(sender)
            self.state.account(receiver)
        except UnknownAccountError as exc:
            result = PaymentResult(
                success=False, sender=sender, receiver=receiver, amount=amount
            )
            spend = send_max.currency if send_max is not None else amount.currency
            result.is_cross_currency = spend != amount.currency
            result.error = str(exc)
            return result
        return self._submit_validated(
            sender,
            receiver,
            amount,
            send_max,
            forced_paths,
            banned_intermediaries,
            allow_offers,
        )

    def _submit_validated(
        self,
        sender: AccountID,
        receiver: AccountID,
        amount: Amount,
        send_max: Optional[Amount],
        forced_paths: Optional[Sequence[Tuple[List[AccountID], float]]],
        banned_intermediaries: Optional[Set[AccountID]],
        allow_offers: bool,
    ) -> PaymentResult:
        """Routing and execution after endpoint validation has passed."""
        result = PaymentResult(
            success=False, sender=sender, receiver=receiver, amount=amount
        )
        spend_currency = send_max.currency if send_max is not None else amount.currency
        result.is_cross_currency = spend_currency != amount.currency

        result.fee_drops = self._burn_fee(sender)

        executor = Executor(self.state)
        try:
            if forced_paths is not None:
                outcome = self._execute_forced(executor, amount, forced_paths)
            elif amount.currency == XRP and not result.is_cross_currency:
                outcome = self._execute_xrp_direct(executor, sender, receiver, amount)
            elif not result.is_cross_currency:
                outcome = self._execute_same_currency(
                    executor,
                    sender,
                    receiver,
                    amount,
                    banned_intermediaries or set(),
                    allow_offers,
                )
            else:
                outcome = self._execute_cross_currency(
                    executor,
                    sender,
                    receiver,
                    amount,
                    spend_currency,
                    banned_intermediaries or set(),
                    allow_offers,
                )
        except (PaymentError, TrustLineError, InsufficientBalanceError, OfferError) as exc:
            executor.rollback()
            result.error = str(exc)
            return result
        executor.commit()
        result.success = True
        result.outcome = outcome
        return result

    # Routing strategies ------------------------------------------------------------

    def _execute_xrp_direct(
        self,
        executor: Executor,
        sender: AccountID,
        receiver: AccountID,
        amount: Amount,
    ) -> ExecutionOutcome:
        drops = int(round(amount.to_float() * DROPS_PER_XRP))
        executor.xrp(sender, receiver, drops)
        return ExecutionOutcome(
            delivered=amount.to_float(),
            paths=[[sender, receiver]],
            intermediate_hops=0,
            parallel_paths=1,
        )

    def _graph_for(
        self,
        currency: Currency,
        banned: Set[AccountID],
        source: AccountID,
        target: AccountID,
    ) -> TrustGraph:
        base = self._graph_cache.get(currency.code)
        if base is None:
            base = TrustGraph(self.state, currency)
            self._graph_cache[currency.code] = base
        if banned:
            return FilteredTrustGraph(
                self.state, currency, banned, source, target, base=base
            )
        return base

    def _execute_same_currency(
        self,
        executor: Executor,
        sender: AccountID,
        receiver: AccountID,
        amount: Amount,
        banned: Set[AccountID],
        allow_offers: bool,
    ) -> ExecutionOutcome:
        graph = self._graph_for(amount.currency, banned, sender, receiver)
        plan = plan_payment(
            graph,
            sender,
            receiver,
            amount.to_float(),
            self.max_intermediate_hops,
            self.max_parallel_paths,
        )
        if plan.is_complete_for(amount.to_float()):
            executor.apply_plan(plan, amount.currency)
            return ExecutionOutcome(
                delivered=plan.total,
                paths=plan.paths,
                intermediate_hops=plan.max_intermediate_hops,
                parallel_paths=plan.parallel_paths,
            )
        if allow_offers:
            detour = plan_same_currency_detour(
                self.state, amount.currency, amount.to_float()
            )
            if detour is not None and not (
                banned and any(owner in banned for owner in detour.owners)
            ):
                return self._execute_bridge(
                    executor, sender, receiver, amount, amount.currency, detour, banned
                )
        if plan.parallel_paths == 0:
            raise NoPathError(
                f"no {amount.currency} path from {sender.short()} to {receiver.short()}"
            )
        raise PathDryError(
            f"paths carry only {plan.total:g} of {amount.to_float():g} "
            f"{amount.currency}"
        )

    def _execute_cross_currency(
        self,
        executor: Executor,
        sender: AccountID,
        receiver: AccountID,
        amount: Amount,
        spend_currency: Currency,
        banned: Set[AccountID],
        allow_offers: bool,
    ) -> ExecutionOutcome:
        if not allow_offers:
            raise NoPathError(
                "cross-currency payments require exchange offers (none allowed)"
            )
        bridge = plan_bridge(
            self.state, spend_currency, amount.currency, amount.to_float()
        )
        if bridge is None or bridge.is_empty:
            raise NoPathError(
                f"no bridge from {spend_currency} to {amount.currency}"
            )
        if banned and any(owner in banned for owner in bridge.owners):
            raise NoPathError("all bridge offers belong to banned market makers")
        return self._execute_bridge(
            executor, sender, receiver, amount, spend_currency, bridge, banned
        )

    def _execute_bridge(
        self,
        executor: Executor,
        sender: AccountID,
        receiver: AccountID,
        amount: Amount,
        spend_currency: Currency,
        bridge: BridgePlan,
        banned: Set[AccountID],
    ) -> ExecutionOutcome:
        """Run a bridged payment: spend leg, book crossings, delivery leg."""
        first_owner = bridge.steps[0].owner
        last_owner = bridge.steps[-1].owner
        spend_total = bridge.steps[0].pays
        deliver_total = bridge.steps[-1].gets

        spine: List[AccountID] = [sender]
        parallel = 1

        # Leg 1: sender -> first offer owner, in the spend currency.
        if spend_currency == XRP:
            executor.xrp(
                sender, first_owner, int(round(spend_total.to_float() * DROPS_PER_XRP))
            )
            spine.append(first_owner)
        else:
            leg = self._trust_leg(
                executor, sender, first_owner, spend_total, banned
            )
            spine.extend(leg.paths[0][1:])
            parallel = max(parallel, leg.parallel_paths)

        # Book crossings, moving intermediate XRP between owners if needed.
        for step in bridge.steps:
            executor.fill(step.offer, step.gets)
        if len(bridge.steps) == 2:
            middle = bridge.steps[0].gets  # XRP out of the first book
            if bridge.steps[0].owner != bridge.steps[1].owner:
                executor.xrp(
                    bridge.steps[0].owner,
                    bridge.steps[1].owner,
                    int(round(middle.to_float() * DROPS_PER_XRP)),
                )
                spine.append(last_owner)

        # Leg 2: last offer owner -> receiver, in the delivery currency.
        if amount.currency == XRP:
            executor.xrp(
                last_owner, receiver, int(round(deliver_total.to_float() * DROPS_PER_XRP))
            )
            spine.append(receiver)
        else:
            leg = self._trust_leg(
                executor, last_owner, receiver, deliver_total, banned
            )
            spine.extend(leg.paths[0][1:])
            parallel = max(parallel, leg.parallel_paths)

        return ExecutionOutcome(
            delivered=amount.to_float(),
            paths=[spine],
            intermediate_hops=len(spine) - 2,
            parallel_paths=parallel,
            bridge_account=first_owner,
            offers_consumed=len(bridge.steps),
        )

    def _trust_leg(
        self,
        executor: Executor,
        payer: AccountID,
        payee: AccountID,
        amount: Amount,
        banned: Set[AccountID],
    ) -> PathPlan:
        """Complete a same-currency trust segment or raise."""
        if payer == payee:
            plan = PathPlan()
            plan.paths = [[payer]]
            plan.amounts = [amount.to_float()]
            return plan
        graph = self._graph_for(amount.currency, banned, payer, payee)
        plan = plan_payment(
            graph,
            payer,
            payee,
            amount.to_float(),
            self.max_intermediate_hops,
            self.max_parallel_paths,
        )
        if not plan.is_complete_for(amount.to_float()):
            raise PathDryError(
                f"bridge leg {payer.short()} -> {payee.short()} is dry "
                f"({plan.total:g}/{amount.to_float():g} {amount.currency})"
            )
        executor.apply_plan(plan, amount.currency)
        return plan

    def _execute_forced(
        self,
        executor: Executor,
        amount: Amount,
        forced_paths: Sequence[Tuple[List[AccountID], float]],
    ) -> ExecutionOutcome:
        """Execute explicitly pinned paths (spam transactions)."""
        plan = forced_plan(
            [path for path, _ in forced_paths],
            [value for _, value in forced_paths],
        )
        executor.apply_plan(plan, amount.currency)
        return ExecutionOutcome(
            delivered=plan.total,
            paths=plan.paths,
            intermediate_hops=plan.max_intermediate_hops,
            parallel_paths=plan.parallel_paths,
        )

    # Internals --------------------------------------------------------------------

    def _burn_fee(self, sender: AccountID) -> int:
        if not self.enforce_fees:
            return 0
        root = self.state.account(sender)
        if root.balance_drops < BASE_FEE_DROPS:
            # Accounts with no XRP at all cannot even submit; the synthetic
            # economy always funds accounts, so this path only trips in
            # hand-built test states where fee accounting is not the point.
            return 0
        self.state.burn_fee(sender, BASE_FEE_DROPS)
        return BASE_FEE_DROPS
