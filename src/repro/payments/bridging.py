"""Cross-currency bridging through Market-Maker offers.

A payment that delivers a different currency than the sender spends must
cross at least one order book (Section III-C of the paper).  Two bridge
shapes cover the cases Ripple's path finder uses:

* **direct** — one book ``X -> Y``;
* **auto-bridge** — two books via XRP, ``X -> XRP`` then ``XRP -> Y``,
  exploiting XRP's role as the universal intermediate asset.

Planning picks the complete option with the best effective rate.  To keep
path semantics explicit (and the hop accounting of Fig. 6 exact), each book
step is served by a single offer — the best-priced offer deep enough for the
step — so a bridge pins down concrete Market-Maker accounts that become part
of the payment path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.ledger.accounts import AccountID
from repro.ledger.amounts import Amount
from repro.ledger.currency import XRP, Currency
from repro.ledger.offers import Offer
from repro.ledger.state import LedgerState


@dataclass
class BridgeStep:
    """One book crossing: consume ``gets`` from ``offer`` paying ``pays``."""

    offer: Offer
    pays: Amount
    gets: Amount

    @property
    def owner(self) -> AccountID:
        return self.offer.owner


@dataclass
class BridgePlan:
    """An executable conversion: ordered steps from spend to delivery."""

    steps: List[BridgeStep] = field(default_factory=list)
    source_cost: float = 0.0

    @property
    def owners(self) -> List[AccountID]:
        return [step.owner for step in self.steps]

    @property
    def is_empty(self) -> bool:
        return not self.steps


def _best_single_offer(
    state: LedgerState, pays: Currency, gets: Currency, gets_needed: float
) -> Optional[Offer]:
    """Cheapest live offer that can serve ``gets_needed`` alone."""
    for offer in state.book_offers(pays, gets):
        if offer.taker_gets.to_float() + 1e-9 >= gets_needed:
            return offer
    return None


def _step_for(
    state: LedgerState, pays: Currency, gets: Currency, gets_needed: float
) -> Optional[BridgeStep]:
    offer = _best_single_offer(state, pays, gets, gets_needed)
    if offer is None:
        return None
    pays_needed = gets_needed * offer.quality
    return BridgeStep(
        offer=offer,
        pays=Amount.from_value(pays, pays_needed),
        gets=Amount.from_value(gets, gets_needed),
    )


def plan_bridge(
    state: LedgerState,
    spend: Currency,
    deliver: Currency,
    deliver_amount: float,
) -> Optional[BridgePlan]:
    """Plan the conversion of ``spend`` into ``deliver_amount`` of ``deliver``.

    Returns None when no bridge (direct or via XRP) has the liquidity.
    """
    if spend == deliver:
        return BridgePlan()
    candidates: List[BridgePlan] = []

    direct = _step_for(state, spend, deliver, deliver_amount)
    if direct is not None:
        candidates.append(
            BridgePlan(steps=[direct], source_cost=direct.pays.to_float())
        )

    if spend != XRP and deliver != XRP:
        # Auto-bridge: plan backwards — how much XRP buys the delivery, then
        # how much of the spend currency buys that XRP.
        leg2 = _step_for(state, XRP, deliver, deliver_amount)
        if leg2 is not None:
            leg1 = _step_for(state, spend, XRP, leg2.pays.to_float())
            if leg1 is not None:
                candidates.append(
                    BridgePlan(
                        steps=[leg1, leg2], source_cost=leg1.pays.to_float()
                    )
                )

    if not candidates:
        return None
    return min(candidates, key=lambda plan: plan.source_cost)


def plan_same_currency_detour(
    state: LedgerState, currency: Currency, amount: float
) -> Optional[BridgePlan]:
    """Same-currency conversion detour: ``X -> XRP -> X``.

    The paper finds that Market Makers enable ~63 % of *single-currency*
    payments too — when the parties lack a common trust path, the payment
    exits to XRP through one offer and re-enters the currency through
    another, with the offer owners supplying the connectivity.
    """
    if currency == XRP:
        return None
    leg2 = _step_for(state, XRP, currency, amount)
    if leg2 is None:
        return None
    leg1 = _step_for(state, currency, XRP, leg2.pays.to_float())
    if leg1 is None or leg1.owner == leg2.owner and leg1.offer is leg2.offer:
        return None
    return BridgePlan(steps=[leg1, leg2], source_cost=leg1.pays.to_float())
