"""The credit-network payment substrate.

Routing (trust graph + path finding), currency exchange (order books +
bridging), and atomic execution of payments against ledger state.
"""

from repro.payments.arbitrage import ArbitrageBot, ArbitrageResult, CycleQuote
from repro.payments.bridging import BridgePlan, BridgeStep, plan_bridge, plan_same_currency_detour
from repro.payments.engine import (
    FilteredTrustGraph,
    PaymentEngine,
    PaymentResult,
)
from repro.payments.execution import ExecutionOutcome, Executor
from repro.payments.graph import Edge, TrustGraph, path_bottleneck
from repro.payments.liquidity import (
    DeliverabilityReport,
    max_flow,
    relayer_removal_curve,
    sample_deliverability,
)
from repro.payments.orderbook import BookQuote, Fill, OrderBook
from repro.payments.pathfinding import (
    DEFAULT_MAX_INTERMEDIATE_HOPS,
    DEFAULT_MAX_PARALLEL_PATHS,
    PathPlan,
    plan_payment,
    shortest_path,
)

__all__ = [
    "ArbitrageBot",
    "ArbitrageResult",
    "BookQuote",
    "CycleQuote",
    "DeliverabilityReport",
    "max_flow",
    "relayer_removal_curve",
    "sample_deliverability",
    "BridgePlan",
    "BridgeStep",
    "DEFAULT_MAX_INTERMEDIATE_HOPS",
    "DEFAULT_MAX_PARALLEL_PATHS",
    "Edge",
    "ExecutionOutcome",
    "Executor",
    "Fill",
    "FilteredTrustGraph",
    "OrderBook",
    "PathPlan",
    "PaymentEngine",
    "PaymentResult",
    "TrustGraph",
    "path_bottleneck",
    "plan_bridge",
    "plan_payment",
    "plan_same_currency_detour",
    "shortest_path",
]
