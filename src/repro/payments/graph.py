"""Trust-graph view over ledger state, as seen by the path finder.

For a fixed currency, the credit network induces a directed *payment graph*:
an edge ``X -> Y`` with positive capacity means X can push IOU value to Y in
one hop.  Capacity combines the unused limit of Y's trust towards X (new
debt X can take on towards Y... precisely: debt X takes on *towards Y* is
recorded on the line where Y is the truster) with any debt Y already owes X
(which a payment can settle).  This is the structure payments of Fig. 1
traverse, and what the market-maker-removal study of Table II perturbs.

Performance: successor lists are served from the ledger's incremental
per-currency adjacency index (:meth:`LedgerState.currency_lines`) and
memoized per node against the ledger's per-(account, currency) trust
versions.  A BFS that expands the same hub hundreds of times per payment —
and a payment plan that runs several BFS passes — recomputes each node's
edges at most once per mutation of its incident lines.  Set
``REPRO_DISABLE_GRAPH_INDEX=1`` (or ``USE_INDEX = False``) to fall back to
the reference full-scan implementation; both produce identical edges in
identical order, which the equivalence suite enforces.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.ledger.accounts import AccountID
from repro.ledger.currency import Currency
from repro.ledger.state import LedgerState

#: Capacities below this many currency units are treated as dry.
DUST = 1e-9

#: Serve successors from the incremental index (the reference scan remains
#: available for equivalence testing and as documentation of the semantics).
USE_INDEX = os.environ.get("REPRO_DISABLE_GRAPH_INDEX", "") in ("", "0")


@dataclass(frozen=True)
class Edge:
    """A usable payment hop with its current liquidity."""

    payer: AccountID
    payee: AccountID
    capacity: float


class TrustGraph:
    """Read-only payment-graph adapter for one currency.

    The graph is *live*: capacities reflect the underlying
    :class:`~repro.ledger.state.LedgerState` at query time, so interleaved
    payments see each other's balance changes — essential for the Table II
    replay, where earlier payments drain liquidity for later ones.  The
    per-node successor cache is transparent: entries are revalidated against
    the ledger's trust versions on every query.
    """

    def __init__(self, state: LedgerState, currency: Currency):
        self.state = state
        self.currency = currency
        #: node -> (#ins lines, #outs lines, ins triples, outs pairs): the
        #: *topology* of the node's incident lines.  Lines are only ever
        #: appended (set_trust updates existing objects in place), so the
        #: two list lengths fully identify the line set and the cached
        #: reverse-line resolutions stay valid until a new line appears.
        self._line_cache: Dict[AccountID, tuple] = {}

    def successors(self, payer: AccountID) -> Iterator[Edge]:
        """All accounts ``payer`` can push value to, with capacities."""
        if not USE_INDEX:
            return self._successors_scan(payer)
        return (
            Edge(payer, payee, capacity)
            for payee, capacity in self.successor_pairs(payer)
        )

    def successor_pairs(self, payer: AccountID) -> List[Tuple[AccountID, float]]:
        """``(payee, capacity)`` pairs — the path finder's hot interface.

        Capacities are always read live from the trust lines' float caches
        (balances change every payment); only the *line topology* — which
        lines are incident and which reverse line pairs with each — is
        cached, so the per-query cost is one float add per edge instead of
        a keyed dictionary lookup and an :class:`Edge` allocation.  Edge
        order is identical to the reference scan's: ins lines first, then
        settle-only outs lines, each in line-creation order.
        """
        if not USE_INDEX:
            return [
                (edge.payee, edge.capacity)
                for edge in self._successors_scan(payer)
            ]
        ins, outs = self._edge_lines(payer)
        pairs: List[Tuple[AccountID, float]] = []
        if outs:
            seen: Set[AccountID] = set()
            for payee, line, reverse in ins:
                capacity = line._available_float
                if reverse is not None:
                    capacity += reverse._balance_float
                if capacity > DUST:
                    seen.add(payee)
                    pairs.append((payee, capacity))
            for payee, line in outs:
                if payee in seen:
                    continue
                capacity = line._balance_float
                if capacity > DUST:
                    pairs.append((payee, capacity))
        else:  # no settle-only edges: skip the seen-set bookkeeping
            for payee, line, reverse in ins:
                capacity = line._available_float
                if reverse is not None:
                    capacity += reverse._balance_float
                if capacity > DUST:
                    pairs.append((payee, capacity))
        return pairs

    def _edge_lines(self, payer: AccountID) -> tuple:
        """Cached ``(ins triples, outs pairs)`` for ``payer``.

        ``ins`` is ``(truster, line, reverse-or-None)`` per line trusting
        ``payer``; ``outs`` is ``(trustee, line)`` per line ``payer``
        extends.  Revalidated against the index list lengths: a new line
        incident to ``payer`` (including a reverse line appearing later)
        grows one of them, forcing a rebuild.
        """
        code = self.currency.code
        index = self.state.currency_lines(code)
        in_lines = index.ins.get(payer, ())
        out_lines = index.outs.get(payer, ())
        cached = self._line_cache.get(payer)
        if (
            cached is not None
            and cached[0] == len(in_lines)
            and cached[1] == len(out_lines)
        ):
            return cached[2], cached[3]
        trustlines = self.state.trustlines
        ins = [
            (line.truster, line, trustlines.get((payer, line.truster, code)))
            for line in in_lines
        ]
        outs = [(line.trustee, line) for line in out_lines]
        self._line_cache[payer] = (len(in_lines), len(out_lines), ins, outs)
        return ins, outs

    def _successors_scan(self, payer: AccountID) -> Iterator[Edge]:
        """Reference implementation: full scan of the payer's line lists."""
        seen: Set[AccountID] = set()
        for line in self.state.lines_trusting(payer):
            if line.currency != self.currency:
                continue
            capacity = line.available_credit().to_float()
            reverse = self.state.trust_line(payer, line.truster, self.currency)
            if reverse is not None:
                capacity += reverse.balance.to_float()
            if capacity > DUST:
                seen.add(line.truster)
                yield Edge(payer, line.truster, capacity)
        for line in self.state.lines_trusted_by(payer):
            if line.currency != self.currency or line.trustee in seen:
                continue
            capacity = line.balance.to_float()
            if capacity > DUST:
                yield Edge(payer, line.trustee, capacity)

    def capacity(self, payer: AccountID, payee: AccountID) -> float:
        """Liquidity of the single hop ``payer -> payee``."""
        return self.state.hop_capacity(payer, payee, self.currency)

    def can_relay(self, account: AccountID) -> bool:
        """Whether value may ripple *through* this account.

        Regular users keep the NoRipple posture: they can be payment
        endpoints, never intermediaries.  This is what confines routing to
        the gateway/hub/maker fabric the paper's Fig. 7 profiles.
        """
        root = self.state.accounts.get(account)
        return root is None or root.allows_rippling

    def degree_out(self, account: AccountID) -> int:
        return sum(1 for _ in self.successors(account))

    def reachable_within(self, source: AccountID, max_hops: int) -> Set[AccountID]:
        """Accounts reachable from ``source`` in at most ``max_hops`` hops."""
        frontier = {source}
        visited = {source}
        for _ in range(max_hops):
            nxt: Set[AccountID] = set()
            for node in frontier:
                for edge in self.successors(node):
                    if edge.payee not in visited:
                        visited.add(edge.payee)
                        nxt.add(edge.payee)
            if not nxt:
                break
            frontier = nxt
        visited.discard(source)
        return visited


def path_bottleneck(graph: TrustGraph, path: List[AccountID]) -> float:
    """Minimum hop capacity along ``path`` (a list of accounts)."""
    if len(path) < 2:
        return 0.0
    return min(
        graph.capacity(path[i], path[i + 1]) for i in range(len(path) - 1)
    )


def edges_of(path: List[AccountID]) -> List[Tuple[AccountID, AccountID]]:
    """Consecutive (payer, payee) pairs of a node path."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def adjacency_snapshot(
    graph: TrustGraph, nodes: List[AccountID]
) -> Dict[AccountID, List[Edge]]:
    """Materialize successors for ``nodes`` (used by analysis, not routing)."""
    return {node: list(graph.successors(node)) for node in nodes}
