"""Atomic application of payment plans to ledger state.

A multi-hop, multi-path, possibly cross-currency payment touches many trust
lines, XRP balances, and offers.  Ripple applies a payment atomically: it
either fully delivers or leaves no trace.  ``Executor`` reproduces that by
journaling every primitive mutation and rolling the journal back when any
later step fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import PaymentError
from repro.ledger.accounts import AccountID
from repro.ledger.amounts import Amount
from repro.ledger.currency import Currency
from repro.ledger.offers import Offer
from repro.ledger.state import LedgerState
from repro.payments.pathfinding import PathPlan


@dataclass
class _HopOp:
    payer: AccountID
    payee: AccountID
    amount: Amount


@dataclass
class _XrpOp:
    sender: AccountID
    receiver: AccountID
    drops: int


@dataclass
class _FillOp:
    offer: Offer
    pays: Amount
    gets: Amount


class Executor:
    """Journaled mutator: apply primitives, commit or roll back."""

    def __init__(self, state: LedgerState):
        self.state = state
        self._journal: List[object] = []

    # Primitives ----------------------------------------------------------------

    def hop(self, payer: AccountID, payee: AccountID, amount: Amount) -> None:
        self.state.apply_hop(payer, payee, amount)
        self._journal.append(_HopOp(payer, payee, amount))

    def xrp(self, sender: AccountID, receiver: AccountID, drops: int) -> None:
        self.state.transfer_xrp(sender, receiver, drops)
        self._journal.append(_XrpOp(sender, receiver, drops))

    def fill(self, offer: Offer, gets: Amount) -> Amount:
        pays = offer.fill(gets)
        self.state.note_offer_fill()
        self._journal.append(_FillOp(offer, pays, gets))
        return pays

    # Composites -----------------------------------------------------------------

    def apply_plan(self, plan: PathPlan, currency: Currency) -> None:
        """Push every planned path's amount hop by hop."""
        for path, value in zip(plan.paths, plan.amounts):
            amount = Amount.from_value(currency, value)
            for i in range(len(path) - 1):
                self.hop(path[i], path[i + 1], amount)

    # Transaction control -----------------------------------------------------------

    def rollback(self) -> None:
        """Undo every journaled mutation, newest first."""
        while self._journal:
            op = self._journal.pop()
            if isinstance(op, _HopOp):
                # The reverse hop exactly undoes the net credit movement:
                # capacity for it was freed by the forward hop.
                self.state.apply_hop(op.payee, op.payer, op.amount)
            elif isinstance(op, _XrpOp):
                self.state.transfer_xrp(op.receiver, op.sender, op.drops)
            elif isinstance(op, _FillOp):
                op.offer.taker_pays = op.offer.taker_pays + op.pays
                op.offer.taker_gets = op.offer.taker_gets + op.gets
                self.state.note_offer_fill()
                # The lazy book pruning may have dropped a fully consumed
                # offer; restore it if so.
                if op.offer.offer_id() not in self.state.offers:
                    self.state.place_offer(op.offer)
            else:  # pragma: no cover - defensive
                raise PaymentError(f"unknown journal entry {op!r}")

    def commit(self) -> None:
        """Accept all journaled mutations (drops undo information)."""
        self._journal.clear()

    @property
    def pending_ops(self) -> int:
        return len(self._journal)


@dataclass
class ExecutionOutcome:
    """What a payment execution did, for analytics and ledger metadata."""

    delivered: float = 0.0
    paths: List[List[AccountID]] = field(default_factory=list)
    intermediate_hops: int = 0
    parallel_paths: int = 0
    bridge_account: Optional[AccountID] = None
    offers_consumed: int = 0
