"""Order-book matching on top of the ledger's offer directory.

A book holds the live offers exchanging one asset pair, sorted by quality
(taker price).  Consuming a book walks offers best-first with partial fills,
which is how Ripple's payment engine turns Market-Maker inventory into
cross-currency liquidity.  The concentration of this inventory in very few
hands (50 % of offers from 10 market makers) is what makes Table II's
removal experiment so devastating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import OfferError
from repro.ledger.accounts import AccountID
from repro.ledger.amounts import Amount
from repro.ledger.currency import Currency
from repro.ledger.offers import Offer
from repro.ledger.state import LedgerState


@dataclass
class Fill:
    """One partial or full offer consumption."""

    offer_owner: AccountID
    offer_sequence: int
    pays: Amount
    gets: Amount

    @property
    def rate(self) -> float:
        return self.pays.to_float() / self.gets.to_float() if self.gets.to_float() else 0.0


@dataclass
class BookQuote:
    """Result of asking a book for liquidity: fills plus totals."""

    fills: List[Fill] = field(default_factory=list)
    total_pays: float = 0.0
    total_gets: float = 0.0

    @property
    def average_rate(self) -> Optional[float]:
        if self.total_gets <= 0:
            return None
        return self.total_pays / self.total_gets


class OrderBook:
    """Matching view of the (pays, gets) book of a ledger state."""

    def __init__(self, state: LedgerState, pays: Currency, gets: Currency):
        if pays == gets:
            raise OfferError("a book must exchange two distinct currencies")
        self.state = state
        self.pays = pays
        self.gets = gets

    def live_offers(self) -> List[Offer]:
        """Offers sorted by quality, best (cheapest for the taker) first."""
        return self.state.book_offers(self.pays, self.gets)

    def best_quality(self) -> Optional[float]:
        offers = self.live_offers()
        return offers[0].quality if offers else None

    def depth_gets(self) -> float:
        """Total *gets*-side liquidity currently on the book."""
        return sum(offer.taker_gets.to_float() for offer in self.live_offers())

    def quote_gets(self, gets_needed: float) -> BookQuote:
        """Price ``gets_needed`` units of the gets asset without consuming.

        Walks the book best-first; the quote may be partial if the book is
        too shallow.
        """
        quote = BookQuote()
        remaining = gets_needed
        for offer in self.live_offers():
            if remaining <= 1e-12:
                break
            take = min(remaining, offer.taker_gets.to_float())
            pays = take * offer.quality
            quote.fills.append(
                Fill(
                    offer_owner=offer.owner,
                    offer_sequence=offer.sequence,
                    pays=Amount.from_value(self.pays, pays),
                    gets=Amount.from_value(self.gets, take),
                )
            )
            quote.total_pays += pays
            quote.total_gets += take
            remaining -= take
        return quote

    def consume_gets(self, gets_needed: float) -> BookQuote:
        """Actually consume ``gets_needed`` from the book (mutates offers).

        Returns the realized fills; raises :class:`OfferError` when the book
        cannot provide the full amount (callers pre-check with
        :meth:`quote_gets` or catch the error).
        """
        quote = BookQuote()
        remaining = gets_needed
        for offer in self.live_offers():
            if remaining <= 1e-12:
                break
            # Round the take *down* to the ledger's 1e-6 precision so the
            # quantized amount can never exceed the offer's remaining size.
            raw_take = min(remaining, offer.taker_gets.to_float())
            take = int(raw_take * 10 ** 6) / 10 ** 6
            if take <= 0:
                continue
            take_amt = Amount.from_value(self.gets, take)
            pays_amt = offer.fill(take_amt)
            quote.fills.append(
                Fill(
                    offer_owner=offer.owner,
                    offer_sequence=offer.sequence,
                    pays=pays_amt,
                    gets=take_amt,
                )
            )
            quote.total_pays += pays_amt.to_float()
            quote.total_gets += take_amt.to_float()
            remaining -= take_amt.to_float()
        # Sub-precision residue (below one millionth) counts as filled —
        # the ledger cannot represent it anyway.
        if remaining > max(2e-6, gets_needed * 1e-9):
            raise OfferError(
                f"book {self.pays.code}/{self.gets.code} short by {remaining:g} "
                f"{self.gets.code}"
            )
        return quote


def book_pair(state: LedgerState, pays: Currency, gets: Currency) -> Tuple[OrderBook, OrderBook]:
    """Both directions of a market (bid/ask views)."""
    return OrderBook(state, pays, gets), OrderBook(state, gets, pays)
