"""repro.api — the artifact registry and renderers.

One table, :data:`ARTIFACTS`, maps every reproducible artifact name to a
``(compute, render)`` pair; the CLI dispatches exclusively through it.
Importing this package registers the paper's figures and tables
(:mod:`repro.api.artifacts`); extension packages add their own entries by
calling :func:`register` at import time (see :mod:`repro.chaos.report`).
"""

from repro.api.registry import (
    ARTIFACTS,
    Artifact,
    ArtifactError,
    ArtifactResult,
    ResultEnvelope,
    ShardedCompute,
    artifact,
    names,
    register,
)
from repro.api.request import ArtifactRequest, RequestError
from repro.api import artifacts as _artifacts  # noqa: F401  (populates ARTIFACTS)
from repro.api.artifacts import dataset_for, economy_config, history_for
from repro.api.render import (
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_population,
    render_table2,
)

__all__ = [
    "ARTIFACTS",
    "Artifact",
    "ArtifactError",
    "ArtifactRequest",
    "ArtifactResult",
    "RequestError",
    "ResultEnvelope",
    "ShardedCompute",
    "artifact",
    "dataset_for",
    "economy_config",
    "history_for",
    "names",
    "register",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_population",
    "render_table2",
]
