"""Plain-text rendering of the paper's tables and figures.

Benchmarks print these so a terminal run shows the same rows/series the
paper reports — counts per validator (Fig. 2), IG bars (Fig. 3), currency
rankings (Fig. 4), survival samples (Fig. 5), path histograms (Fig. 6),
hub profiles (Fig. 7), and Table II.

(Renderers lived in ``repro.analysis.report`` before the artifact
registry existed; the deprecation shim there completed its cycle and was
removed — import from here.)
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.gateways import HubProfile
from repro.analysis.market_makers import ReplayResult
from repro.analysis.paths import PathStructure
from repro.analysis.survival import SurvivalCurve
from repro.core.deanonymizer import InformationGain
from repro.core.robustness import PeriodReport


def _bar(fraction: float, width: int = 40) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_figure2(report: PeriodReport, scale_note: bool = True) -> str:
    lines = [f"Figure 2 — {report.period.label}"]
    if scale_note:
        lines.append(
            f"  (simulated {report.rounds} rounds = {report.scale:.4f} of the "
            f"two-week period; counts scale by ~{1 / report.scale:.0f}x)"
        )
    lines.append(f"  {'validator':26s} {'total':>8s} {'valid':>8s}")
    for obs in report.observations:
        lines.append(
            f"  {obs.name:26s} {obs.total_pages:8d} {obs.valid_pages:8d}"
        )
    return "\n".join(lines)


def render_figure3(results: Sequence[InformationGain]) -> str:
    lines = ["Figure 3 — information gain per feature list"]
    for ig in results:
        lines.append(
            f"  {ig.feature_list.label():24s} {ig.percent:6.2f}%  {_bar(ig.fraction)}"
        )
    return "\n".join(lines)


def render_figure4(ranking, top: int = 25) -> str:
    lines = ["Figure 4 — most used currencies (payments, log scale in paper)"]
    for usage in ranking[:top]:
        flag = "" if usage.is_recognized else "  [unrecognized]"
        lines.append(
            f"  {usage.code:4s} {usage.payments:9d}  ({usage.share * 100:5.2f}%){flag}"
        )
    return "\n".join(lines)


def render_figure5(curves: Dict[str, SurvivalCurve], points: Sequence[float]) -> str:
    lines = ["Figure 5 — survival of payment amounts  P(amount > x)"]
    header = "  " + "x".rjust(12) + "".join(label.rjust(9) for label in curves)
    lines.append(header)
    for x in points:
        row = f"  {x:12g}"
        for curve in curves.values():
            row += f"{curve.at(x):9.3f}"
        lines.append(row)
    return "\n".join(lines)


def render_figure6(structure: PathStructure) -> str:
    lines = [
        "Figure 6(a) — payments per intermediate-hop count "
        f"(multi-hop total: {structure.multi_hop_payments})"
    ]
    for hops in sorted(structure.hops_histogram):
        count = structure.hops_histogram[hops]
        lines.append(f"  {hops:3d} hops  {count:9d}  ({structure.hop_share(hops) * 100:5.1f}%)")
    lines.append("Figure 6(b) — payments per parallel-path count")
    for paths in sorted(structure.parallel_histogram):
        count = structure.parallel_histogram[paths]
        lines.append(
            f"  {paths:3d} paths {count:9d}  ({structure.parallel_share(paths) * 100:5.1f}%)"
        )
    return "\n".join(lines)


def render_figure7(profiles: Sequence[HubProfile], top: int = 50) -> str:
    lines = [
        "Figure 7 — top intermediaries: relay count, trust (EUR), balance (EUR)",
        f"  {'label':26s} {'relays':>8s} {'in-trust':>12s} {'out-trust':>12s} "
        f"{'balance':>12s}  gateway",
    ]
    for profile in profiles[:top]:
        lines.append(
            f"  {profile.label[:26]:26s} {profile.times_intermediate:8d} "
            f"{profile.incoming_trust_eur:12.3g} {profile.outgoing_trust_eur:12.3g} "
            f"{profile.balance_eur:12.3g}  {'yes' if profile.is_gateway else 'no'}"
        )
    return "\n".join(lines)


def render_table2(result: ReplayResult) -> str:
    lines = [
        "Table II — delivery without Market Makers",
        f"  {'Category':16s} {'Submitted':>10s} {'Delivered':>10s} {'Rate':>8s}",
    ]
    for row in result.rows():
        lines.append(
            f"  {row.category:16s} {row.submitted:10d} {row.delivered:10d} "
            f"{row.delivery_rate * 100:7.1f}%"
        )
    return "\n".join(lines)


def render_population(stats, monthly) -> str:
    """Appendix D population statistics plus the monthly growth curve."""
    lines = [
        "Population — accounts, activity, growth (appendix D)",
        f"  accounts seen              {stats.accounts_seen:12,d}",
        f"  active senders             {stats.active_senders:12,d}"
        f"  ({stats.active_share * 100:5.1f}% of seen)",
        f"  payments / active sender   {stats.payments_per_active_sender:12.2f}",
        f"  activity concentration     {stats.activity_concentration:12.4f}  (Gini)",
        "  monthly volume:",
    ]
    for month, count in monthly:
        lines.append(f"    month {month:4d}  {count:9d}")
    return "\n".join(lines)
