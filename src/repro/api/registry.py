"""The artifact registry: one table from artifact name to (compute, render).

Every reproducible artifact — the paper's figures and tables plus
extensions like the chaos report — registers itself here as a
:class:`Artifact`: a ``compute`` callable that builds the artifact's
payload from parsed CLI arguments, and a ``render`` callable that turns
the payload into the terminal text.  The CLI dispatches exclusively
through this table, so adding an artifact is one :func:`register` call —
no new subcommand plumbing.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.errors import AnalysisError

Compute = Callable[[argparse.Namespace], Any]
Render = Callable[[Any, argparse.Namespace], str]


class ArtifactError(AnalysisError):
    """An artifact cannot be computed with the given arguments."""


@dataclass(frozen=True)
class Artifact:
    """One reproducible artifact: how to compute it and how to show it."""

    name: str
    description: str
    compute: Compute
    render: Render

    def run(self, args: argparse.Namespace) -> str:
        """Compute the payload and render it for the terminal."""
        return self.render(self.compute(args), args)


#: name -> Artifact, in registration order (figures list order).
ARTIFACTS: Dict[str, Artifact] = {}


def register(
    name: str,
    description: str,
    compute: Compute,
    render: Render,
) -> Artifact:
    """Register an artifact; later registrations replace earlier ones."""
    artifact = Artifact(
        name=name, description=description, compute=compute, render=render
    )
    ARTIFACTS[name] = artifact
    return artifact


def artifact(name: str) -> Artifact:
    try:
        return ARTIFACTS[name]
    except KeyError:
        raise ArtifactError(
            f"unknown artifact {name!r}; known: {', '.join(sorted(ARTIFACTS))}"
        ) from None


def names() -> List[str]:
    return list(ARTIFACTS)
