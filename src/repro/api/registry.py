"""The artifact registry: one table from artifact name to (compute, render).

Every reproducible artifact — the paper's figures and tables plus
extensions like the chaos report — registers itself here as a
:class:`Artifact`: a ``compute`` callable that builds the artifact's
payload from a typed :class:`~repro.api.request.ArtifactRequest`, and a
``render`` callable that turns the payload into the terminal text.  The
CLI and the serve daemon both dispatch exclusively through this table,
so adding an artifact is one :func:`register` call — no new subcommand
or endpoint plumbing.

The request is the single currency: the CLI builds one from parsed
flags, ``repro serve`` builds one from a JSON body, and tests build one
directly.  :meth:`Artifact.compute_payload` lifts a raw
``argparse.Namespace`` through :meth:`ArtifactRequest.of` at the
boundary, so embedding callers that still hold a namespace keep
working — but nothing past this module ever sees one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.api.request import ArtifactRequest
from repro.errors import AnalysisError
from repro.obs.trace import TRACER

Compute = Callable[[ArtifactRequest], Any]
Render = Callable[[Any, ArtifactRequest], str]


class ArtifactError(AnalysisError):
    """An artifact cannot be computed with the given arguments."""


@dataclass
class ArtifactResult:
    """The typed payload every artifact computation produces.

    ``compute`` entries return one of these (or a bare value, which
    :meth:`wrap` lifts) instead of ad-hoc dicts and tuples:

    * ``data`` — the artifact's payload, whatever ``render`` consumes.
    * ``metrics`` — artifact-specific scalar facts worth surfacing in the
      run manifest (row counts, failure tallies); optional.
    * ``manifest`` — extra annotations merged into the run manifest's
      ``artifact_extra`` section; optional.
    * ``output_paths`` — files the computation itself wrote (beyond the
      CLI's ``--out``), so the manifest can hash them; optional.
    """

    data: Any
    metrics: Dict[str, Any] = field(default_factory=dict)
    manifest: Dict[str, Any] = field(default_factory=dict)
    output_paths: List[str] = field(default_factory=list)

    @classmethod
    def wrap(cls, value: Any) -> "ArtifactResult":
        """Lift a bare payload; already-typed results pass through."""
        if isinstance(value, cls):
            return value
        return cls(data=value)


#: Envelope schema version; bump when the envelope layout changes.
ENVELOPE_VERSION = 1


@dataclass
class ResultEnvelope:
    """The serializable outcome of one artifact request.

    This is the one response schema shared by the serve daemon (its wire
    responses and its cache entries *are* envelope dicts) and the run
    manifest (which records the same ``fingerprint`` and
    ``rendered_sha256``).  The **core** — everything except the
    transport annotations ``cache`` and ``detail`` — is deterministic:
    equivalent requests produce byte-identical :meth:`core` JSON no
    matter which process computed them, when, or whether the bytes came
    from the cache.
    """

    status: str  # "ok" | "error"
    artifact: str
    fingerprint: Optional[str]
    rendered_text: Optional[str] = None
    rendered_sha256: Optional[str] = None
    output_sha256s: List[str] = field(default_factory=list)
    error: Optional[str] = None
    #: Transport annotation: "hit" | "miss" (never part of the core).
    cache: Optional[str] = None
    #: Volatile extras (timings, span rollups); never part of the core.
    detail: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def ok(
        cls,
        artifact: str,
        fingerprint: Optional[str],
        rendered_text: str,
        output_sha256s: Sequence[str] = (),
    ) -> "ResultEnvelope":
        return cls(
            status="ok",
            artifact=artifact,
            fingerprint=fingerprint,
            rendered_text=rendered_text,
            rendered_sha256=hashlib.sha256(
                rendered_text.encode("utf-8")
            ).hexdigest(),
            output_sha256s=sorted(output_sha256s),
        )

    @classmethod
    def failure(
        cls, artifact: str, fingerprint: Optional[str], error: str
    ) -> "ResultEnvelope":
        return cls(
            status="error",
            artifact=artifact,
            fingerprint=fingerprint,
            error=str(error),
        )

    def core(self) -> Dict[str, Any]:
        """The deterministic payload: what gets cached and hashed."""
        payload: Dict[str, Any] = {
            "envelope_version": ENVELOPE_VERSION,
            "status": self.status,
            "artifact": self.artifact,
            "fingerprint": self.fingerprint,
            "rendered_text": self.rendered_text,
            "rendered_sha256": self.rendered_sha256,
            "output_sha256s": sorted(self.output_sha256s),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload

    def to_dict(self) -> Dict[str, Any]:
        payload = self.core()
        if self.cache is not None:
            payload["cache"] = self.cache
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload

    def core_sha256(self) -> str:
        """sha256 of the canonical core JSON (response-equivalence checks)."""
        import json

        canonical = json.dumps(
            self.core(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ResultEnvelope":
        """Decode an envelope dict (wire response or cache entry)."""
        if not isinstance(payload, dict) or "status" not in payload \
                or "artifact" not in payload:
            raise ArtifactError("malformed result envelope")
        return cls(
            status=payload["status"],
            artifact=payload["artifact"],
            fingerprint=payload.get("fingerprint"),
            rendered_text=payload.get("rendered_text"),
            rendered_sha256=payload.get("rendered_sha256"),
            output_sha256s=list(payload.get("output_sha256s") or ()),
            error=payload.get("error"),
            cache=payload.get("cache"),
            detail=dict(payload.get("detail") or {}),
        )


@dataclass(frozen=True)
class ShardedCompute:
    """Optional map/reduce contract of an artifact.

    An artifact that registers one can run across a worker pool
    (:mod:`repro.parallel`): ``prepare`` builds the shared input in the
    parent (e.g. the columnar dataset), ``shards`` splits it into at most
    ``n`` contiguous, picklable shard payloads, ``compute_shard`` — a
    *module-level* function, so it pickles by reference into workers —
    maps one shard to a partial, and ``merge`` reduces the partials.

    The contract every implementation must honour: ``merge`` is
    **order-independent** over shard partials and its result is
    **bit-for-bit identical** to the serial ``compute`` for any contiguous
    partition of the input — the golden-equivalence suite enforces this.
    """

    prepare: Callable[[ArtifactRequest], Any]
    shards: Callable[[Any, int], List[Any]]
    compute_shard: Callable[[Any], Any]
    merge: Callable[[List[Any], Any], Any]


@dataclass(frozen=True)
class Artifact:
    """One reproducible artifact: how to compute it and how to show it."""

    name: str
    description: str
    compute: Compute
    render: Render
    #: Optional map/reduce contract; ``compute`` stays the serial fallback.
    sharded: Optional[ShardedCompute] = None

    def compute_payload(self, request: Any) -> "ArtifactResult":
        """Compute the typed result, sharding across workers when asked to.

        ``request`` is an :class:`ArtifactRequest`; a raw
        ``argparse.Namespace`` (or any attribute bag) is lifted through
        :meth:`ArtifactRequest.of` at this boundary.  Serial
        (``compute``) unless the artifact has a sharded contract *and*
        the request asks for more than one worker; the execution engine
        itself falls back to serial when parallelism is disabled via
        ``REPRO_DISABLE_PARALLEL=1``.  Sharded merges return bare
        payloads; :meth:`ArtifactResult.wrap` lifts either form, so
        callers always get an :class:`ArtifactResult`.
        """
        from repro.parallel.engine import run_compute

        request = ArtifactRequest.of(request, name=self.name)
        with TRACER.span(f"{self.name}.compute", kind="phase"):
            return ArtifactResult.wrap(run_compute(self, request))

    def render_text(self, result: "ArtifactResult", request: Any) -> str:
        """Render a result for the terminal (accepts bare payloads too)."""
        request = ArtifactRequest.of(request, name=self.name)
        result = ArtifactResult.wrap(result)
        with TRACER.span(f"{self.name}.render", kind="phase"):
            return self.render(result.data, request)

    def run(self, request: Any) -> str:
        """Compute the payload and render it for the terminal."""
        request = ArtifactRequest.of(request, name=self.name)
        return self.render_text(self.compute_payload(request), request)


#: name -> Artifact, in registration order (figures list order).
ARTIFACTS: Dict[str, Artifact] = {}


def register(
    name: str,
    description: str,
    compute: Compute,
    render: Render,
    sharded: Optional[ShardedCompute] = None,
) -> Artifact:
    """Register an artifact; later registrations replace earlier ones."""
    artifact = Artifact(
        name=name, description=description, compute=compute, render=render,
        sharded=sharded,
    )
    ARTIFACTS[name] = artifact
    return artifact


def artifact(name: str) -> Artifact:
    try:
        return ARTIFACTS[name]
    except KeyError:
        raise ArtifactError(
            f"unknown artifact {name!r}; known: {', '.join(sorted(ARTIFACTS))}"
        ) from None


def names() -> List[str]:
    return list(ARTIFACTS)
