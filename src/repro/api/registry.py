"""The artifact registry: one table from artifact name to (compute, render).

Every reproducible artifact — the paper's figures and tables plus
extensions like the chaos report — registers itself here as a
:class:`Artifact`: a ``compute`` callable that builds the artifact's
payload from parsed CLI arguments, and a ``render`` callable that turns
the payload into the terminal text.  The CLI dispatches exclusively
through this table, so adding an artifact is one :func:`register` call —
no new subcommand plumbing.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import AnalysisError
from repro.obs.trace import TRACER

Compute = Callable[[argparse.Namespace], Any]
Render = Callable[[Any, argparse.Namespace], str]


class ArtifactError(AnalysisError):
    """An artifact cannot be computed with the given arguments."""


@dataclass
class ArtifactResult:
    """The typed payload every artifact computation produces.

    ``compute`` entries return one of these (or a bare value, which
    :meth:`wrap` lifts) instead of ad-hoc dicts and tuples:

    * ``data`` — the artifact's payload, whatever ``render`` consumes.
    * ``metrics`` — artifact-specific scalar facts worth surfacing in the
      run manifest (row counts, failure tallies); optional.
    * ``manifest`` — extra annotations merged into the run manifest's
      ``artifact_extra`` section; optional.
    * ``output_paths`` — files the computation itself wrote (beyond the
      CLI's ``--out``), so the manifest can hash them; optional.
    """

    data: Any
    metrics: Dict[str, Any] = field(default_factory=dict)
    manifest: Dict[str, Any] = field(default_factory=dict)
    output_paths: List[str] = field(default_factory=list)

    @classmethod
    def wrap(cls, value: Any) -> "ArtifactResult":
        """Lift a bare payload; already-typed results pass through."""
        if isinstance(value, cls):
            return value
        return cls(data=value)


@dataclass(frozen=True)
class ShardedCompute:
    """Optional map/reduce contract of an artifact.

    An artifact that registers one can run across a worker pool
    (:mod:`repro.parallel`): ``prepare`` builds the shared input in the
    parent (e.g. the columnar dataset), ``shards`` splits it into at most
    ``n`` contiguous, picklable shard payloads, ``compute_shard`` — a
    *module-level* function, so it pickles by reference into workers —
    maps one shard to a partial, and ``merge`` reduces the partials.

    The contract every implementation must honour: ``merge`` is
    **order-independent** over shard partials and its result is
    **bit-for-bit identical** to the serial ``compute`` for any contiguous
    partition of the input — the golden-equivalence suite enforces this.
    """

    prepare: Callable[[argparse.Namespace], Any]
    shards: Callable[[Any, int], List[Any]]
    compute_shard: Callable[[Any], Any]
    merge: Callable[[List[Any], Any], Any]


@dataclass(frozen=True)
class Artifact:
    """One reproducible artifact: how to compute it and how to show it."""

    name: str
    description: str
    compute: Compute
    render: Render
    #: Optional map/reduce contract; ``compute`` stays the serial fallback.
    sharded: Optional[ShardedCompute] = None

    def compute_payload(self, args: argparse.Namespace) -> "ArtifactResult":
        """Compute the typed result, sharding across workers when asked to.

        Serial (``compute``) unless the artifact has a sharded contract
        *and* the parsed arguments request more than one worker; the
        execution engine itself falls back to serial when parallelism is
        disabled via ``REPRO_DISABLE_PARALLEL=1``.  Sharded merges return
        bare payloads; :meth:`ArtifactResult.wrap` lifts either form, so
        callers always get an :class:`ArtifactResult`.
        """
        from repro.parallel.engine import run_compute

        with TRACER.span(f"{self.name}.compute", kind="phase"):
            return ArtifactResult.wrap(run_compute(self, args))

    def render_text(
        self, result: "ArtifactResult", args: argparse.Namespace
    ) -> str:
        """Render a result for the terminal (accepts bare payloads too)."""
        result = ArtifactResult.wrap(result)
        with TRACER.span(f"{self.name}.render", kind="phase"):
            return self.render(result.data, args)

    def run(self, args: argparse.Namespace) -> str:
        """Compute the payload and render it for the terminal."""
        return self.render_text(self.compute_payload(args), args)


#: name -> Artifact, in registration order (figures list order).
ARTIFACTS: Dict[str, Artifact] = {}


def register(
    name: str,
    description: str,
    compute: Compute,
    render: Render,
    sharded: Optional[ShardedCompute] = None,
) -> Artifact:
    """Register an artifact; later registrations replace earlier ones."""
    artifact = Artifact(
        name=name, description=description, compute=compute, render=render,
        sharded=sharded,
    )
    ARTIFACTS[name] = artifact
    return artifact


def artifact(name: str) -> Artifact:
    try:
        return ARTIFACTS[name]
    except KeyError:
        raise ArtifactError(
            f"unknown artifact {name!r}; known: {', '.join(sorted(ARTIFACTS))}"
        ) from None


def names() -> List[str]:
    return list(ARTIFACTS)
