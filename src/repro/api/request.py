"""The typed artifact request: one currency for CLI, server, and tests.

Every artifact computation used to be parameterized by whatever
``argparse.Namespace`` happened to reach it — the CLI's parsed flags,
or a hand-built namespace in tests.  That worked for one caller per
process, but a *server* needs requests that can be decoded from JSON,
compared, hashed, and deduplicated; a namespace can be none of those.

:class:`ArtifactRequest` is the replacement: a frozen dataclass carrying
exactly the fields that parameterize a computation (name, seed, scale,
payments, archive, jobs, resume, trace, ingest mode) plus a sorted
tuple of artifact-specific ``options`` (``period``, ``top``, ``plan``,
``rounds``).  The CLI builds one from parsed flags
(:meth:`ArtifactRequest.from_namespace`), the server builds one from a
JSON body (:meth:`ArtifactRequest.from_dict`), and
``Artifact.run``/``compute_payload`` accept it directly — the namespace
never crosses the API boundary.

Canonicalization is the load-bearing part.  Two requests that differ
only in flag order or in explicit-vs-default values must be *the same
request*: :meth:`canonical_invocation` normalizes away execution
strategy (``jobs``, ``resume``, ``trace`` — guaranteed not to change
the output bytes), drops options at their default values, and sorts
everything — so the manifest fingerprint built over it
(:func:`repro.obs.manifest.request_fingerprint`) is byte-identical for
equivalent requests.  The serve cache and single-flight table key on
that fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import AnalysisError

#: Default semantic parameters, shared with the CLI flag defaults.
DEFAULT_SEED = 20170652
DEFAULT_SCALE = 600
DEFAULT_PAYMENTS = 12_000

#: Artifact-specific option keys a request may carry.
OPTION_KEYS = (
    "amount", "kind", "pairs", "period", "plan", "rounds", "top", "waves",
)

#: Option values considered "not specified": a request carrying one of
#: these explicitly canonicalizes identically to a request omitting it.
CANONICAL_OPTION_DEFAULTS: Dict[str, Any] = {
    "amount": None,
    "kind": "outage",
    "pairs": None,
    "period": None,
    "plan": "partition",
    "rounds": 240,
    "top": None,
    "waves": None,
}


class RequestError(AnalysisError):
    """A request body that cannot become a valid :class:`ArtifactRequest`."""


@dataclass(frozen=True)
class ArtifactRequest:
    """One artifact computation, fully specified and hashable.

    Semantic fields (``seed``, ``scale``, ``payments``, ``archive``,
    ``quarantine``, options) determine the output bytes; execution
    fields (``jobs``, ``resume``, ``trace``, ``strict_ingest``) only
    determine *how* the run executes and are excluded from
    :meth:`canonical_invocation` — sharded, resumed, and traced runs
    are bit-for-bit identical to serial ones by contract.
    """

    name: str
    seed: int = DEFAULT_SEED
    scale: int = DEFAULT_SCALE
    payments: int = DEFAULT_PAYMENTS
    archive: Optional[str] = None
    jobs: Optional[int] = None
    resume: bool = False
    quarantine: bool = False
    strict_ingest: bool = False
    trace: bool = False
    #: Sorted ``(key, value)`` pairs of artifact-specific options.
    options: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise RequestError("request needs a non-empty artifact name")
        raw = self.options
        if isinstance(raw, Mapping):
            raw = tuple(raw.items())
        pairs = []
        for pair in raw:
            key, value = pair
            if key not in OPTION_KEYS:
                raise RequestError(
                    f"unknown option {key!r}; known: {', '.join(OPTION_KEYS)}"
                )
            pairs.append((str(key), value))
        object.__setattr__(self, "options", tuple(sorted(pairs)))
        for int_field in ("seed", "scale", "payments"):
            value = getattr(self, int_field)
            if not isinstance(value, int) or isinstance(value, bool):
                raise RequestError(f"{int_field} must be an integer")
        if self.jobs is not None and (
            not isinstance(self.jobs, int) or isinstance(self.jobs, bool)
        ):
            raise RequestError("jobs must be an integer or null")

    # Attribute surface -------------------------------------------------------

    def __getattr__(self, key: str) -> Any:
        # Options read like attributes (``request.period``) so artifact
        # compute/render code is agnostic about where a flag came from.
        if key.startswith("_"):
            raise AttributeError(key)
        for option, value in object.__getattribute__(self, "options"):
            if option == key:
                return value
        raise AttributeError(key)

    def option(self, key: str, default: Any = None) -> Any:
        for option, value in self.options:
            if option == key:
                return value
        return default

    # Construction ------------------------------------------------------------

    @classmethod
    def of(cls, value: Any, name: Optional[str] = None) -> "ArtifactRequest":
        """Lift any supported request carrier into a typed request.

        Already-typed requests pass through; an ``argparse.Namespace``
        (or any attribute bag) goes through :meth:`from_namespace`.
        """
        if isinstance(value, cls):
            return value
        return cls.from_namespace(value, name=name)

    @classmethod
    def from_namespace(
        cls, args: Any, name: Optional[str] = None
    ) -> "ArtifactRequest":
        """A typed request from parsed CLI flags (or any attribute bag)."""
        if name is None:
            name = getattr(args, "name", None) or getattr(args, "command", None)
        if not name:
            raise RequestError("cannot infer the artifact name from args")
        options = tuple(
            (key, getattr(args, key))
            for key in OPTION_KEYS
            if getattr(args, key, None) is not None
        )
        return cls(
            name=name,
            seed=getattr(args, "seed", DEFAULT_SEED),
            scale=getattr(args, "scale", DEFAULT_SCALE),
            payments=getattr(args, "payments", DEFAULT_PAYMENTS),
            archive=getattr(args, "archive", None),
            jobs=getattr(args, "jobs", None),
            resume=bool(getattr(args, "resume", False)),
            quarantine=bool(getattr(args, "quarantine", False)),
            strict_ingest=bool(getattr(args, "strict_ingest", False)),
            trace=bool(getattr(args, "trace", None)),
            options=options,
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArtifactRequest":
        """A typed request from a decoded JSON body (the serve wire shape).

        The body names the artifact under ``"artifact"`` (or ``"name"``);
        every other key must be a known field or option — unknown keys
        are rejected so a typo'd parameter fails loudly instead of
        silently computing the default.
        """
        if not isinstance(payload, Mapping):
            raise RequestError("request body must be a JSON object")
        body = dict(payload)
        name = body.pop("artifact", None) or body.pop("name", None)
        body.pop("name", None)
        if not name:
            raise RequestError('request body needs an "artifact" key')
        known = {f.name for f in fields(cls)} - {"name", "options"}
        kwargs: Dict[str, Any] = {}
        options = []
        for key, value in body.items():
            if key in known:
                kwargs[key] = value
            elif key in OPTION_KEYS:
                if value is not None:
                    options.append((key, value))
            else:
                raise RequestError(
                    f"unknown request field {key!r}; known: "
                    f"{', '.join(sorted(known | set(OPTION_KEYS)))}"
                )
        return cls(name=str(name), options=tuple(options), **kwargs)

    # Serialization and canonicalization --------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The full wire shape (round-trips through :meth:`from_dict`)."""
        payload: Dict[str, Any] = {
            "artifact": self.name,
            "seed": self.seed,
            "scale": self.scale,
            "payments": self.payments,
            "archive": self.archive,
            "jobs": self.jobs,
            "resume": self.resume,
            "quarantine": self.quarantine,
            "strict_ingest": self.strict_ingest,
            "trace": self.trace,
        }
        payload.update(dict(self.options))
        return payload

    def canonical_options(self) -> Dict[str, Any]:
        """Options with defaults dropped: explicit-default == omitted.

        Integral floats normalize to ints (``--amount 10.0`` on the CLI
        and ``"amount": 10`` in a JSON body are the same request), the
        same spelling-invariance rule as explicit-vs-omitted defaults.
        """
        canonical: Dict[str, Any] = {}
        for key, value in self.options:
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            if value is None or value == CANONICAL_OPTION_DEFAULTS.get(key):
                continue
            canonical[key] = value
        return canonical

    def canonical_invocation(self) -> Dict[str, Any]:
        """The semantic parameters of this request, defaults normalized.

        Excludes execution strategy (``jobs``, ``resume``, ``trace``)
        and redundant spellings (``strict_ingest`` is the default
        behaviour; the archive *path* is excluded because the input
        content hash, not its location, identifies the input — see
        :func:`repro.obs.manifest.request_fingerprint`).
        """
        return {
            "seed": int(self.seed),
            "scale": int(self.scale),
            "payments": int(self.payments),
            "quarantine": bool(self.quarantine),
            "options": self.canonical_options(),
        }

    def fingerprint(self) -> str:
        """The manifest fingerprint of this request (computed pre-run)."""
        from repro.obs.manifest import request_fingerprint

        return request_fingerprint(self)

    def replace(self, **changes: Any) -> "ArtifactRequest":
        from dataclasses import replace as _replace

        return _replace(self, **changes)


# Re-exported for introspection/tests.
__all__ = [
    "ArtifactRequest",
    "RequestError",
    "OPTION_KEYS",
    "CANONICAL_OPTION_DEFAULTS",
    "DEFAULT_SEED",
    "DEFAULT_SCALE",
    "DEFAULT_PAYMENTS",
]
