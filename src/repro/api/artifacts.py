"""Built-in artifacts: the paper's figures and tables, registered.

Each artifact is a ``(compute, render)`` pair over a typed
:class:`~repro.api.request.ArtifactRequest`; ``compute`` returns a typed
:class:`~repro.api.registry.ArtifactResult`
(``data`` plus optional manifest-bound ``metrics``).  Importing this
module populates :data:`repro.api.registry.ARTIFACTS` with fig2–fig7 and
table2; extension artifacts (e.g. the chaos report in
:mod:`repro.chaos.report`) register themselves the same way from their own
packages.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis import (
    TransactionDataset,
    currency_ranking,
    figure5_curves,
    offer_concentration,
    path_structure,
    table2,
    top_intermediaries,
)
from repro.analysis.archive import load_archive
from repro.analysis.health import (
    DEFAULT_PAIR_SAMPLE,
    DEFAULT_TARGET_AMOUNT,
    HealthReport,
    IssuerConcentration,
    LiquidityDistribution,
    SettlabilityProbe,
    UtilizationProfile,
    issuer_concentration,
    liquidity_distribution,
    render_health,
    settlability_outcomes,
    utilization_profile,
)
from repro.durability import IngestStats
from repro.analysis.market_makers import (
    merge_replay_results,
    replay_outcomes,
    tally_outcomes,
)
from repro.analysis.population import (
    merge_population_partials,
    monthly_volume,
    population_shard_partial,
    population_stats,
)
from repro.analysis.survival import (
    figure5_shard_partial,
    merge_figure5_partials,
)
from repro.api.registry import (
    ArtifactError,
    ArtifactResult,
    ShardedCompute,
    register,
)
from repro.api.request import ArtifactRequest
from repro.api.render import (
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_population,
    render_table2,
)
from repro.core.deanonymizer import (
    Deanonymizer,
    figure3_shard_partial,
    merge_figure3_partials,
)
from repro.core.robustness import PeriodReport, run_period
from repro.obs.manifest import RUN
from repro.obs.trace import TRACER
from repro.parallel.sharding import shard_ranges
from repro.parallel.shm import shard_fn, shared_shards
from repro.stream.periods import PERIODS, period
from repro.synthetic.config import EconomyConfig
from repro.synthetic.generator import generate_history

#: Sample points of the Fig. 5 survival curves (log-spaced like the paper).
FIGURE5_POINTS = (1e-4, 1e-2, 1.0, 1e2, 1e4, 1e6, 1e8, 1e10)


def economy_config(args: ArtifactRequest) -> EconomyConfig:
    """The synthetic-economy configuration encoded in the shared CLI flags."""
    return EconomyConfig(
        seed=args.seed,
        n_payments=args.payments,
        n_users=max(10, args.payments // 33),
        n_offers=args.payments * 4,
    )


def dataset_for(args: ArtifactRequest):
    """(history, dataset) for the shared flags; history is None for archives.

    Archive ingest honours the shared durability flags: strict by default
    (first bad line is a typed error), lenient with ``--quarantine``
    (bad lines diverted to a ``<archive>.quarantine.jsonl`` sidecar, with
    a summary on stderr).  ``--strict-ingest`` and ``--quarantine``
    together are contradictory and rejected.
    """
    if getattr(args, "archive", None):
        lenient = bool(getattr(args, "quarantine", False))
        if lenient and getattr(args, "strict_ingest", False):
            raise ArtifactError(
                "--strict-ingest and --quarantine are mutually exclusive"
            )
        with TRACER.span("artifact.dataset", kind="phase", source="archive"):
            stats = IngestStats()
            records = load_archive(
                args.archive, strict=not lenient, stats=stats
            )
            if stats.quarantined:
                print(
                    f"ingest: {stats.summary()} -> "
                    f"{args.archive}.quarantine.jsonl",
                    file=sys.stderr,
                )
            RUN.note(ingest=stats.as_manifest_dict())
            return None, TransactionDataset.from_records(records)
    with TRACER.span("artifact.dataset", kind="phase", source="synthetic"):
        history = generate_history(economy_config(args))
        return history, TransactionDataset.from_records(history.records)


def history_for(args: ArtifactRequest):
    """A full ledger history; rejects archive input (no ledger state)."""
    history, _ = dataset_for(args)
    if history is None:
        raise ArtifactError(
            "this artifact needs ledger state; run without --archive"
        )
    return history


# Shared sharding helpers ----------------------------------------------------


def _dataset_context(args: ArtifactRequest) -> TransactionDataset:
    """Parent-side prepare for dataset-based sharded artifacts."""
    return dataset_for(args)[1]


def dataset_shards(dataset: TransactionDataset, n_shards: int) -> List:
    """Contiguous row shards sharing the dataset's global factorization.

    Multi-shard plans are published once into shared memory and returned
    as zero-copy :class:`~repro.parallel.shm.ShardDescriptor` handles
    (workers attach instead of unpickling arrays); single-shard plans and
    publish failures fall back to in-process row slices.
    """
    return shared_shards(dataset, n_shards)


def _sequence_shards(items, n_shards: int) -> List:
    """Contiguous slices of a plain sequence (e.g. replay outcomes)."""
    return [
        items[start:stop] for start, stop in shard_ranges(len(items), n_shards)
    ]


# fig2 ----------------------------------------------------------------------


def _compute_fig2(args: ArtifactRequest) -> ArtifactResult:
    keys = [args.period] if getattr(args, "period", None) else [
        spec.key for spec in PERIODS
    ]
    reports = [
        run_period(period(key), scale=1.0 / args.scale, seed=args.seed)
        for key in keys
    ]
    return ArtifactResult(
        data=reports,
        metrics={
            "periods": len(reports),
            "rounds_run": sum(report.rounds for report in reports),
        },
    )


def _render_fig2(reports: List[PeriodReport], _args: ArtifactRequest) -> str:
    return "\n\n".join(render_figure2(report) for report in reports)


register(
    "fig2",
    "validator activity over the three collection periods",
    _compute_fig2,
    _render_fig2,
)


# fig3 ----------------------------------------------------------------------


def _compute_fig3(args: ArtifactRequest) -> ArtifactResult:
    gains = Deanonymizer(dataset_for(args)[1]).figure3()
    return ArtifactResult(data=gains, metrics={"feature_lists": len(gains)})


register(
    "fig3",
    "information gain per feature list",
    _compute_fig3,
    lambda gains, args: render_figure3(gains),
    sharded=ShardedCompute(
        prepare=_dataset_context,
        shards=dataset_shards,
        compute_shard=shard_fn(figure3_shard_partial),
        merge=lambda partials, dataset: merge_figure3_partials(partials),
    ),
)


# fig4 ----------------------------------------------------------------------


def _compute_fig4(args: ArtifactRequest) -> ArtifactResult:
    ranking = currency_ranking(dataset_for(args)[1])
    return ArtifactResult(data=ranking, metrics={"currencies": len(ranking)})


register(
    "fig4",
    "most used currencies",
    _compute_fig4,
    lambda ranking, args: render_figure4(
        ranking, top=getattr(args, "top", None) or 25
    ),
)


# fig5 ----------------------------------------------------------------------


def _compute_fig5(args: ArtifactRequest) -> ArtifactResult:
    curves = figure5_curves(dataset_for(args)[1])
    return ArtifactResult(data=curves, metrics={"curves": len(curves)})


register(
    "fig5",
    "survival functions of payment amounts",
    _compute_fig5,
    lambda curves, args: render_figure5(curves, FIGURE5_POINTS),
    sharded=ShardedCompute(
        prepare=_dataset_context,
        shards=dataset_shards,
        compute_shard=shard_fn(figure5_shard_partial),
        merge=lambda partials, dataset: merge_figure5_partials(partials),
    ),
)


# fig6 ----------------------------------------------------------------------


def _compute_fig6(args: ArtifactRequest) -> ArtifactResult:
    return ArtifactResult(data=path_structure(dataset_for(args)[1]))


register(
    "fig6",
    "payment path structure",
    _compute_fig6,
    lambda structure, args: render_figure6(structure),
)


# fig7 ----------------------------------------------------------------------


def _compute_fig7(args: ArtifactRequest) -> ArtifactResult:
    history = history_for(args)
    profiles = top_intermediaries(history, getattr(args, "top", None) or 50)
    concentration = offer_concentration(history.offer_records)
    return ArtifactResult(
        data=(profiles, dict(concentration.shares)),
        metrics={"intermediaries": len(profiles)},
    )


def _render_fig7(payload, _args: ArtifactRequest) -> str:
    profiles, shares = payload
    rounded = {code: round(value, 3) for code, value in shares.items()}
    return (
        render_figure7(profiles)
        + f"\n\noffer concentration: {rounded}"
    )


register(
    "fig7",
    "top-50 intermediaries",
    _compute_fig7,
    _render_fig7,
)


# table2 --------------------------------------------------------------------


def _compute_table2(args: ArtifactRequest) -> ArtifactResult:
    return ArtifactResult(data=table2(history_for(args)))


register(
    "table2",
    "delivery without market makers",
    _compute_table2,
    lambda result, args: render_table2(result),
    # The replay itself is stateful and runs serially in prepare; only the
    # outcome tally shards.  The contract still buys determinism coverage:
    # any partition of the outcome stream merges to the same fractions.
    sharded=ShardedCompute(
        prepare=lambda args: replay_outcomes(history_for(args)),
        shards=_sequence_shards,
        compute_shard=tally_outcomes,
        merge=lambda partials, outcomes: merge_replay_results(partials),
    ),
)


# population ----------------------------------------------------------------


def _compute_population(args: ArtifactRequest) -> ArtifactResult:
    dataset = _dataset_context(args)
    return ArtifactResult(
        data=(population_stats(dataset), monthly_volume(dataset)),
        metrics={"rows": len(dataset)},
    )


register(
    "population",
    "appendix D population statistics (accounts, activity, growth)",
    _compute_population,
    lambda payload, args: render_population(*payload),
    sharded=ShardedCompute(
        prepare=_dataset_context,
        shards=dataset_shards,
        compute_shard=shard_fn(population_shard_partial),
        merge=lambda partials, dataset: merge_population_partials(partials),
    ),
)


# health ---------------------------------------------------------------------


@dataclass
class HealthContext:
    """Tally-independent health dimensions plus the probe outcome stream."""

    liquidity: LiquidityDistribution
    issuers: IssuerConcentration
    utilization: UtilizationProfile
    amount: float
    outcomes: List[bool]


def _health_context(args: ArtifactRequest) -> HealthContext:
    history = history_for(args)
    wallets = [user.account for user in history.cast.users]
    pairs = int(args.option("pairs") or DEFAULT_PAIR_SAMPLE)
    amount = float(args.option("amount") or DEFAULT_TARGET_AMOUNT)
    state = history.state
    return HealthContext(
        liquidity=liquidity_distribution(state, wallets),
        issuers=issuer_concentration(state),
        utilization=utilization_profile(state),
        amount=amount,
        outcomes=settlability_outcomes(
            state, wallets, pairs=pairs, amount=amount, seed=args.seed
        ),
    )


def tally_settlability(outcomes: Sequence[bool]) -> Tuple[int, int]:
    """(pairs, settlable) over a slice of probe outcomes (pure, shardable)."""
    return len(outcomes), sum(1 for settlable in outcomes if settlable)


def _finish_health(
    context: HealthContext, pairs: int, settlable: int
) -> ArtifactResult:
    report = HealthReport(
        liquidity=context.liquidity,
        issuers=context.issuers,
        utilization=context.utilization,
        settlability=SettlabilityProbe(
            pairs=pairs, settlable=settlable, amount=context.amount
        ),
    )
    return ArtifactResult(
        data=report,
        metrics={
            "settlability_pairs": pairs,
            "settlable_fraction": report.settlability.fraction,
        },
        manifest={"health": report.as_dict()},
    )


def _compute_health(args: ArtifactRequest) -> ArtifactResult:
    context = _health_context(args)
    return _finish_health(context, *tally_settlability(context.outcomes))


def _merge_health(partials, context: HealthContext) -> ArtifactResult:
    pairs = sum(partial[0] for partial in partials)
    settlable = sum(partial[1] for partial in partials)
    return _finish_health(context, pairs, settlable)


register(
    "health",
    "credit-network health: liquidity, concentration, utilization, "
    "settlability",
    _compute_health,
    lambda report, args: render_health(report),
    # The ledger walk runs serially in prepare; the settlability tally
    # shards (any contiguous partition merges identically to serial).
    sharded=ShardedCompute(
        prepare=_health_context,
        shards=lambda context, n: _sequence_shards(context.outcomes, n),
        compute_shard=tally_settlability,
        merge=_merge_health,
    ),
)
