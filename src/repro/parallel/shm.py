"""Zero-copy dataset shards over ``multiprocessing.shared_memory``.

The sharded executor used to pickle a sliced :class:`TransactionDataset`
into every worker — megabytes of numpy arrays plus a Python object per
account, serialized once per shard per artifact.  This module replaces
that with a publish/attach protocol:

* the parent **publishes** the dataset once: every numeric column is
  packed into a single shared-memory segment using the same
  :func:`~repro.analysis.dataset.column_layout` that backs the in-process
  dataset, followed by the account table as packed 20-byte IDs;
* each shard travels as a :class:`ShardDescriptor` — segment name, row
  range, and the (tiny) string vocabularies.  Pickling a descriptor costs
  a few hundred bytes no matter how many rows the shard covers;
* a worker **materializes** a descriptor by attaching to the segment
  (cached per process — a warm worker attaches once per artifact, not
  once per shard) and building numpy views at the layout's offsets.  No
  row bytes are ever copied; the views are marked read-only so a buggy
  shard function cannot corrupt its siblings' input.

Lifecycle mirrors :mod:`repro.durability`'s stale-temp discipline: the
owning process unlinks its segments after the merge (or at exit, via
``atexit``/SIGTERM handlers), and :func:`sweep_stale_segments` removes
segments whose owner pid is dead — the shared-memory analogue of sweeping
``*.tmp.*`` leftovers, so a ``kill -9`` mid-run never leaks ``/dev/shm``
space past the next publish.
"""

from __future__ import annotations

import atexit
import itertools
import os
import signal
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.dataset import (
    NUMERIC_COLUMNS,
    TransactionDataset,
    column_layout,
    consolidate_columns,
)
from repro.ledger.accounts import AccountID
from repro.obs.metrics import METRICS
from repro.parallel.sharding import shard_ranges

#: Segment names look like ``repro-shm-<owner pid>-<counter>``; the pid is
#: what lets the sweep decide whether a leftover segment is orphaned.
SEGMENT_PREFIX = "repro-shm"

#: Where POSIX shared memory appears as files (Linux).  The sweep is a
#: no-op on platforms without it.
SHM_DIR = "/dev/shm"

#: Raw byte width of one packed :class:`AccountID`.
ACCOUNT_BYTES = 20

#: Attached-segment cache bound per worker process.  Eviction only
#: succeeds once no views into the segment remain (BufferError otherwise),
#: so a long-lived warm worker cannot accumulate unbounded mappings.
MAX_ATTACHED = 8

_COUNTER = itertools.count()

#: name -> DatasetSegment published (and still owned) by this process.
_LIVE: Dict[str, "DatasetSegment"] = {}

#: name -> SharedMemory attached (not owned) by this process, LRU order.
_ATTACHED: Dict[str, object] = {}

_CLEANUP_INSTALLED = False


# Cleanup -------------------------------------------------------------------


def _cleanup_live_segments(*_args) -> None:
    """Unlink every segment this process still owns (idempotent)."""
    for segment in list(_LIVE.values()):
        segment.close()


def _on_signal(signum, frame) -> None:  # pragma: no cover - signal path
    _cleanup_live_segments()
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_cleanup() -> None:
    """Register the exit sweep once: ``atexit`` for normal exits, a
    chaining SIGTERM handler for polite kills (``kill -9`` is covered by
    the next process's stale sweep instead)."""
    global _CLEANUP_INSTALLED
    if _CLEANUP_INSTALLED:
        return
    _CLEANUP_INSTALLED = True
    atexit.register(_cleanup_live_segments)
    try:
        if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
            signal.signal(signal.SIGTERM, _on_signal)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True
    return True


def sweep_stale_segments() -> List[str]:
    """Remove ``/dev/shm`` segments owned by dead processes (best effort).

    Runs opportunistically before every publish — the same pattern as
    :func:`repro.durability.atomic._sweep_stale_temps` — so segments
    orphaned by a ``kill -9`` are reclaimed by the next run that shares
    memory, without any daemon.  Returns the names it removed.
    """
    removed: List[str] = []
    if not os.path.isdir(SHM_DIR):
        return removed
    marker = SEGMENT_PREFIX + "-"
    for entry in os.listdir(SHM_DIR):
        if not entry.startswith(marker):
            continue
        fields = entry[len(marker):].split("-")
        if not fields or not fields[0].isdigit():
            continue
        owner = int(fields[0])
        if owner == os.getpid() or _pid_alive(owner):
            continue
        try:
            os.remove(os.path.join(SHM_DIR, entry))
        except OSError:  # pragma: no cover - raced another sweeper
            continue
        removed.append(entry)
    if removed:
        METRICS.count("shm.stale_swept", len(removed))
    return removed


# Worker-side attachment ----------------------------------------------------


def _attach(name: str):
    """A (cached) ``SharedMemory`` attachment for ``name``.

    The resource tracker registers *every* open — owner and attacher
    alike (CPython < 3.13) — but pool workers share the parent's tracker
    process, whose per-name cache is a set: the duplicate registration is
    a no-op, and the owner's ``unlink`` clears the single entry for
    everyone.  (Unregistering here instead would *remove* that shared
    entry and make the owner's unlink trip a tracker KeyError.)
    """
    from multiprocessing import shared_memory

    cached = _ATTACHED.pop(name, None)
    if cached is not None:
        _ATTACHED[name] = cached  # refresh LRU position
        return cached
    segment = shared_memory.SharedMemory(name=name, create=False)
    while len(_ATTACHED) >= MAX_ATTACHED:
        stale_name = next(iter(_ATTACHED))
        stale = _ATTACHED.pop(stale_name)
        try:
            stale.close()
        except BufferError:
            # Views into it are still alive somewhere; keep the mapping.
            _ATTACHED[stale_name] = stale
            break
    _ATTACHED[name] = segment
    METRICS.count("shm.attached")
    return segment


def _segment_buffer(name: str):
    """The raw buffer for ``name`` — owned mapping if we published it."""
    owned = _LIVE.get(name)
    if owned is not None:
        return owned.shm.buf
    return _attach(name).buf


# Descriptors ---------------------------------------------------------------


class PackedAccounts(Sequence[AccountID]):
    """Account table decoded lazily from packed 20-byte IDs.

    Shard computations rarely touch account *objects* (they work on the
    factorized integer ids); this keeps ``len(dataset.accounts)`` and
    occasional ``accounts[i]`` working in workers without constructing —
    or pickling — one Python object per account up front.
    """

    __slots__ = ("_raw", "_cache")

    def __init__(self, raw: np.ndarray):
        self._raw = raw
        self._cache: Dict[int, AccountID] = {}

    def __len__(self) -> int:
        return len(self._raw) // ACCOUNT_BYTES

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        found = self._cache.get(index)
        if found is None:
            start = index * ACCOUNT_BYTES
            raw = bytes(self._raw[start:start + ACCOUNT_BYTES])
            found = self._cache[index] = AccountID(raw)
        return found


@dataclass(frozen=True)
class ShardDescriptor:
    """One shard as an address, not a payload.

    ``(segment, start, stop)`` plus the string vocabularies is everything
    a worker needs to rebuild a read-only :class:`TransactionDataset`
    view over the shared columns.  ``__len__`` is the shard's row count,
    so resume-journal plan fingerprints are identical to the ones the
    pickled-slice strategy produced — checkpoints stay interchangeable.
    """

    segment: str
    n_rows: int
    start: int
    stop: int
    n_accounts: int
    accounts_offset: int
    currencies: Tuple[str, ...]
    kind_vocab: Tuple[str, ...]

    def __len__(self) -> int:
        return self.stop - self.start

    def materialize(self) -> TransactionDataset:
        """Reconstruct the shard as zero-copy views into the segment."""
        buf = _segment_buffer(self.segment)
        layout, _total = column_layout(self.n_rows)
        arrays: Dict[str, np.ndarray] = {}
        for name, dtype, offset in layout:
            column = np.frombuffer(
                buf, dtype=dtype, count=self.n_rows, offset=offset
            )
            column.flags.writeable = False
            arrays[name] = column[self.start:self.stop]
        raw = np.frombuffer(
            buf,
            dtype=np.uint8,
            count=self.n_accounts * ACCOUNT_BYTES,
            offset=self.accounts_offset,
        )
        raw.flags.writeable = False
        return TransactionDataset(
            accounts=PackedAccounts(raw),
            currencies=list(self.currencies),
            kind_vocab=list(self.kind_vocab),
            **arrays,
        )


def materialize_shard(shard):
    """Descriptor -> dataset; any other shard payload passes through."""
    if isinstance(shard, ShardDescriptor):
        return shard.materialize()
    return shard


class _DescriptorCall:
    """Picklable adapter making any dataset shard function descriptor-aware.

    ``shard_fn(figure3_shard_partial)`` is what the registry pickles to
    workers: a couple hundred bytes referencing the module-level function,
    materializing each shard on the worker side before applying it.
    """

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, shard):
        return self.fn(materialize_shard(shard))


def shard_fn(fn) -> _DescriptorCall:
    return _DescriptorCall(fn)


# Parent-side publishing ----------------------------------------------------


class DatasetSegment:
    """An owned shared-memory copy of one dataset's columns.

    Created by :func:`publish`; hands out :class:`ShardDescriptor` row
    ranges and unlinks the segment on :meth:`close` (idempotent, owner
    process only — forked workers inherit the object but never the
    responsibility to destroy it).
    """

    def __init__(self, dataset: TransactionDataset):
        from multiprocessing import shared_memory

        n = len(dataset)
        layout, columns_bytes = column_layout(n)
        accounts = dataset.accounts
        accounts_offset = columns_bytes
        total = columns_bytes + len(accounts) * ACCOUNT_BYTES
        self.owner_pid = os.getpid()
        self.name = f"{SEGMENT_PREFIX}-{self.owner_pid}-{next(_COUNTER)}"
        self.shm = shared_memory.SharedMemory(
            name=self.name, create=True, size=max(total, 1)
        )
        consolidate_columns(
            {name: getattr(dataset, name) for name, _ in NUMERIC_COLUMNS},
            n,
            out=self.shm.buf,
        )
        packed = b"".join(account.raw for account in accounts)
        self.shm.buf[accounts_offset:accounts_offset + len(packed)] = packed
        self.n_rows = n
        self.n_accounts = len(accounts)
        self.accounts_offset = accounts_offset
        self.currencies = tuple(dataset.currencies)
        self.kind_vocab = tuple(dataset.kind_vocab)
        self.nbytes = total
        self._closed = False

    def descriptor(self, start: int, stop: int) -> ShardDescriptor:
        return ShardDescriptor(
            segment=self.name,
            n_rows=self.n_rows,
            start=start,
            stop=stop,
            n_accounts=self.n_accounts,
            accounts_offset=self.accounts_offset,
            currencies=self.currencies,
            kind_vocab=self.kind_vocab,
        )

    def close(self) -> None:
        """Unlink and forget the segment (owner process only, idempotent)."""
        if self._closed or os.getpid() != self.owner_pid:
            return
        self._closed = True
        _LIVE.pop(self.name, None)
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - caller kept a view alive
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - swept concurrently
            pass


def publish(dataset: TransactionDataset) -> DatasetSegment:
    """Copy ``dataset`` into a fresh shared segment owned by this process."""
    sweep_stale_segments()
    _install_cleanup()
    with METRICS.timer("shm.publish"):
        segment = DatasetSegment(dataset)
    _LIVE[segment.name] = segment
    METRICS.count("shm.published")
    METRICS.count("shm.bytes", segment.nbytes)
    return segment


def shared_shards(dataset: TransactionDataset, n_shards: int) -> List:
    """Shard ``dataset`` for the worker pool, zero-copy when possible.

    The fallback ladder: a single-shard plan never publishes (the parent
    computes it in process); a publish failure — no ``/dev/shm``, size
    limits, permissions — degrades to the historical pickled-slice shards
    with a counter, never an error.  Descriptors and slices merge
    identically, so the ladder is invisible to results.
    """
    ranges = shard_ranges(len(dataset), n_shards)
    if len(ranges) <= 1:
        return [dataset.slice_rows(start, stop) for start, stop in ranges]
    try:
        segment = publish(dataset)
    except (OSError, ValueError, MemoryError) as exc:
        # No /dev/shm, segment size limits, permissions: environmental,
        # and the pickled-slice shards are a correct (slower) substitute.
        METRICS.count("shm.publish_failures")
        print(
            f"shm: falling back to pickled shards: {exc}", file=sys.stderr
        )
        return [dataset.slice_rows(start, stop) for start, stop in ranges]
    return [segment.descriptor(start, stop) for start, stop in ranges]


def release_shards(shards: Sequence) -> None:
    """Unlink the segments behind ``shards`` (parent side, after merge)."""
    names = {
        shard.segment
        for shard in shards
        if isinstance(shard, ShardDescriptor)
    }
    for name in names:
        segment = _LIVE.get(name)
        if segment is not None:
            segment.close()
