"""The sharded execution engine: worker pool, retries, serial fallback.

Execution model for an artifact with a :class:`ShardedCompute` contract:

1. ``prepare(request)`` runs in the parent (dataset build, replay, …);
2. ``shards(context, jobs)`` splits the context into contiguous shards —
   for dataset artifacts these are :class:`repro.parallel.shm.ShardDescriptor`
   handles over one shared-memory segment, a few hundred pickled bytes
   per shard instead of the shard's arrays;
3. each shard is submitted to the **persistent warm worker pool**
   (:mod:`repro.parallel.pool` — spawned lazily once per process, reused
   by every later artifact) whose worker applies ``compute_shard`` and
   returns ``(partial, seconds, perf_snapshot)``;
4. ``merge(partials, context)`` reduces in the parent, in shard order,
   and the parent unlinks the shared segment.

Failure handling reuses the PR 2 retry policy: a shard whose worker
raises — or whose pool dies underneath it — is resubmitted up to
``RetryPolicy.max_retries`` times (the policy's simulated-seconds backoff
is applied as real *milliseconds* here; resubmission needs spacing, not
ledger-scale waits).  A shard that still fails is computed in the parent
process, so a broken pool degrades to the serial path instead of losing
the artifact.  ``REPRO_DISABLE_PARALLEL=1`` short-circuits everything to
the serial ``compute``.

Durability extensions (PR 4):

* **Watchdog** — ``REPRO_SHARD_TIMEOUT`` (seconds) bounds each shard's
  wall time in a worker.  A shard that overruns is treated as failed: its
  worker pool is torn down (processes terminated), in-flight sibling
  shards are resubmitted without an attempt penalty, and the overrunning
  shard re-enters the normal retry → serial-fallback ladder.  A hung
  worker therefore costs one pool rebuild, not the whole run.
* **Checkpoint/resume** — pass a :class:`repro.durability.ResumeJournal`
  and every completed shard partial is checkpointed (atomic pickle +
  sha256); on a rerun, verified checkpoints are loaded and only
  missing/corrupt shards recompute.  Shard plans are deterministic, so a
  resumed run is bit-for-bit identical to a cold one.

Per-shard wall times are mirrored into :data:`repro.obs.metrics.METRICS` as
``parallel.<artifact>.shard`` timers; worker-side perf snapshots are
absorbed into the parent registry when profiling is enabled, so
``--profile fig3 --jobs 4`` still reports the familiar timer names.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.node import RetryPolicy
from repro.obs.manifest import RUN
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.parallel import pool as warm_pool
from repro.parallel.shm import ShardDescriptor, release_shards

#: Environment kill switch: any non-empty value other than "0" forces serial.
DISABLE_ENV = "REPRO_DISABLE_PARALLEL"

#: Per-shard watchdog timeout in (real) seconds; unset/empty/0 disables.
SHARD_TIMEOUT_ENV = "REPRO_SHARD_TIMEOUT"

#: Default bounded-resubmit policy for crashed/failed shards.  Backoff
#: fields are read as milliseconds by :func:`map_shards`.
SHARD_RETRY_POLICY = RetryPolicy(
    max_retries=2, base_backoff=20.0, multiplier=2.0, max_backoff=200.0
)


def parallel_disabled() -> bool:
    return os.environ.get(DISABLE_ENV, "") not in ("", "0")


def shard_timeout() -> Optional[float]:
    """The watchdog timeout from the environment, or None when disabled."""
    raw = os.environ.get(SHARD_TIMEOUT_ENV, "")
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def effective_jobs(
    args: Optional[Any] = None, jobs: Optional[int] = None
) -> int:
    """Worker count after applying the kill switch and request defaults.

    ``args`` is any request carrier with a ``jobs`` attribute — a typed
    :class:`~repro.api.request.ArtifactRequest` on the production path,
    or any attribute bag in tests/embeddings.
    """
    if parallel_disabled():
        return 1
    if jobs is None:
        jobs = getattr(args, "jobs", None)
    if not jobs:
        return 1
    return max(1, int(jobs))


def _journal_for(artifact_name: str, args: Any, shards):
    """The resume journal for this run, when ``--resume`` asked for one."""
    if not getattr(args, "resume", False):
        return None
    from repro.durability import ResumeJournal

    return ResumeJournal.for_run(
        artifact_name,
        shards,
        seed=getattr(args, "seed", None),
        scale=getattr(args, "scale", None),
        payments=getattr(args, "payments", None),
        archive=getattr(args, "archive", None),
    )


def run_compute(artifact, args: Any) -> Any:
    """Compute an artifact's payload, sharding when possible and asked.

    The serial ``compute`` runs when the artifact has no sharded contract,
    when fewer than two workers are requested, or when the kill switch is
    set — those paths never touch multiprocessing at all.  With
    ``--resume`` the shard results are journaled under
    ``$REPRO_RESUME_DIR`` and a rerun recomputes only what is missing.
    """
    jobs = effective_jobs(args)
    sharded = artifact.sharded
    if sharded is None or jobs <= 1:
        return artifact.compute(args)
    with METRICS.timer(f"parallel.{artifact.name}.prepare"), \
            TRACER.span(f"parallel.{artifact.name}.prepare"):
        context = sharded.prepare(args)
    shards = sharded.shards(context, jobs)
    if not shards:
        return artifact.compute(args)
    from repro.durability.journal import plan_fingerprint

    RUN.note(
        plan_fingerprint=plan_fingerprint(shards),
        shards=len(shards),
        jobs=jobs,
        zero_copy=any(isinstance(s, ShardDescriptor) for s in shards),
    )
    journal = _journal_for(artifact.name, args, shards)
    try:
        if len(shards) == 1 and journal is None:
            partials = [sharded.compute_shard(shards[0])]
        else:
            partials = map_shards(
                artifact.name, sharded.compute_shard, shards, jobs,
                journal=journal,
            )
        with METRICS.timer(f"parallel.{artifact.name}.merge"), \
                TRACER.span(f"parallel.{artifact.name}.merge"):
            return sharded.merge(partials, context)
    finally:
        # Partials hold no views into the segment (they are reductions),
        # so the shared columns can be unlinked as soon as the merge is
        # done — artifact invocations never accumulate /dev/shm space.
        release_shards(shards)


# Worker side ---------------------------------------------------------------


def _call_shard(
    payload: Tuple[Callable[[Any], Any], Any, bool, bool, str, int]
):
    """Apply one shard function; runs in the worker (or as the parent's
    last-resort fallback).  Returns (partial, seconds, metrics snapshot,
    trace snapshot)."""
    fn, shard, profile, trace, name, index = payload
    if profile:
        # Forked workers inherit the parent's live registry; reset it so
        # the snapshot covers exactly this shard's work and absorbing it
        # never double-counts parent-side timers (spawn starts empty, so
        # the reset makes both start methods report identically).
        METRICS.reset()
        METRICS.enable()
    if trace:
        # Same inheritance story for the tracer: reset so the shipped
        # spans cover exactly this shard, then wrap the shard in its own
        # span so the absorbed trace shows where each shard ran.
        TRACER.reset()
        TRACER.enable()
    start = time.perf_counter()
    # TRACER.span is a cheap no-op when tracing is off in this process.
    with TRACER.span(f"parallel.{name}.shard", shard=index):
        partial = fn(shard)
    elapsed = time.perf_counter() - start
    snapshot = METRICS.snapshot() if profile else None
    spans = TRACER.snapshot() if trace else None
    return partial, elapsed, snapshot, spans


def _start_method() -> str:
    """Fork when the platform has it (cheap), else spawn.

    ``REPRO_MP_START`` overrides for debugging; shard functions are
    module-level, so both start methods can unpickle them.
    """
    override = os.environ.get("REPRO_MP_START", "")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# Parent side ---------------------------------------------------------------


def map_shards(
    name: str,
    fn: Callable[[Any], Any],
    shards: Sequence[Any],
    jobs: int,
    policy: RetryPolicy = SHARD_RETRY_POLICY,
    journal=None,
    timeout: Optional[float] = None,
) -> List[Any]:
    """Run ``fn`` over every shard in a worker pool; partials in shard order.

    Each failed shard is resubmitted up to ``policy.max_retries`` times
    (fresh pool if the old one broke), then computed in the parent as the
    final fallback — an exception surviving *that* is a real bug in ``fn``
    and propagates.  A shard exceeding ``timeout`` real seconds (default:
    ``REPRO_SHARD_TIMEOUT``) counts as failed and enters the same ladder.

    With a ``journal``, previously checkpointed partials are loaded
    (hash-verified) instead of computed, and every fresh partial is
    checkpointed the moment it arrives — a killed run resumes from its
    last completed shard.
    """
    if not shards:
        return []
    if timeout is None:
        timeout = shard_timeout()
    profile = METRICS.enabled
    trace = TRACER.enabled
    #: shard index -> worker trace snapshot, absorbed in index order once
    #: the pool drains so the combined trace ordering is deterministic.
    trace_snaps: Dict[int, Any] = {}
    rng = np.random.default_rng(0)
    results: Dict[int, Any] = {}
    pending = list(range(len(shards)))
    if journal is not None:
        for index in list(pending):
            partial = journal.load(index)
            if partial is not None:
                results[index] = partial
                pending.remove(index)
                METRICS.count(f"parallel.{name}.resumed")
                RUN.count("shards_resumed")
        if not pending:
            return [results[index] for index in range(len(shards))]

    def record(index: int, partial: Any, elapsed: float) -> None:
        results[index] = partial
        METRICS.add_time(f"parallel.{name}.shard", elapsed)
        if journal is not None:
            journal.store(index, partial)

    jobs = max(1, jobs)
    attempts = [0] * len(shards)
    context = multiprocessing.get_context(_start_method())
    # The pool comes from the warm cache: within one process, startup is
    # paid on the first sharded call only.  Any pool this loop breaks
    # (crash, hang) is discarded and replaced; a healthy pool goes back
    # to the cache in the finally below.
    executor = warm_pool.acquire(jobs, context)
    try:
        while pending:
            futures = {}
            deadlines: Dict[Any, float] = {}
            broken = False
            hung = False
            for index in pending:
                try:
                    future = executor.submit(
                        _call_shard,
                        (fn, shards[index], profile, trace, name, index),
                    )
                except BrokenProcessPool:
                    broken = True
                    break
                futures[future] = index
                if timeout is not None:
                    deadlines[future] = time.monotonic() + timeout
            failed = [index for index in pending if index not in futures.values()]
            victims: List[int] = []  # shards lost to a sibling's teardown
            remaining = set(futures)
            while remaining:
                if timeout is None:
                    patience = None
                else:
                    patience = max(
                        0.0,
                        min(deadlines[f] for f in remaining) - time.monotonic(),
                    )
                done, remaining = wait(
                    remaining, timeout=patience, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index = futures[future]
                    try:
                        partial, elapsed, snapshot, spans = future.result()
                    except Exception as exc:  # worker raise or pool death
                        broken = broken or isinstance(exc, BrokenProcessPool)
                        failed.append(index)
                        continue
                    record(index, partial, elapsed)
                    METRICS.count(f"parallel.{name}.shards")
                    if snapshot:
                        METRICS.absorb(snapshot)
                    if spans:
                        trace_snaps[index] = spans
                if timeout is not None and remaining:
                    now = time.monotonic()
                    expired = [f for f in remaining if now >= deadlines[f]]
                    if expired:
                        # The overrunning shards failed; everything else
                        # still in flight is a victim of the pool teardown
                        # and is requeued without an attempt penalty.
                        hung = True
                        broken = True
                        for future in expired:
                            failed.append(futures[future])
                            METRICS.count(f"parallel.{name}.timeouts")
                            RUN.count("shard_timeouts")
                        victims = [
                            futures[f] for f in remaining if f not in expired
                        ]
                        remaining = set()
            if hung:
                warm_pool.discard(executor)
                executor = warm_pool.acquire(jobs, context)
                broken = False
            pending = []
            for index in sorted(failed):
                attempts[index] += 1
                if attempts[index] > policy.max_retries:
                    # Graceful degradation: the parent computes the shard
                    # itself — same function, same partial, just serial.
                    # The shard span lands in the live parent tracer, so
                    # profile/trace stay False here.
                    METRICS.count(f"parallel.{name}.serial_fallbacks")
                    RUN.count("shard_serial_fallbacks")
                    partial, elapsed, _snapshot, _spans = _call_shard(
                        (fn, shards[index], False, False, name, index)
                    )
                    record(index, partial, elapsed)
                else:
                    METRICS.count(f"parallel.{name}.resubmits")
                    RUN.count("shard_resubmits")
                    pending.append(index)
            if pending:
                # Policy backoff is defined in simulated seconds; spacing
                # real resubmits wants milliseconds, not ledger-scale waits.
                delay_ms = policy.backoff_seconds(
                    max(attempts[index] for index in pending) - 1, rng
                )
                time.sleep(delay_ms / 1000.0)
                if broken:
                    warm_pool.discard(executor)
                    executor = warm_pool.acquire(jobs, context)
            pending.extend(victims)
    finally:
        # A pool that broke on the very last round must not go back to
        # the warm cache; everything healthy does, workers still hot.
        if getattr(executor, "_broken", False):
            warm_pool.discard(executor)
        else:
            warm_pool.release(executor, jobs, context)
    # Worker span snapshots are buffered as shards complete (arbitrary
    # order) and absorbed here in shard order: the --jobs N trace is
    # complete and its ordering deterministic.
    for index in sorted(trace_snaps):
        TRACER.absorb(trace_snaps[index])
    return [results[index] for index in range(len(shards))]
