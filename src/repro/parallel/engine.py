"""The sharded execution engine: worker pool, retries, serial fallback.

Execution model for an artifact with a :class:`ShardedCompute` contract:

1. ``prepare(args)`` runs in the parent (dataset build, replay, …);
2. ``shards(context, jobs)`` splits the context into contiguous shards;
3. each shard is pickled to a worker process which applies
   ``compute_shard`` and returns ``(partial, seconds, perf_snapshot)``;
4. ``merge(partials, context)`` reduces in the parent, in shard order.

Failure handling reuses the PR 2 retry policy: a shard whose worker
raises — or whose pool dies underneath it — is resubmitted up to
``RetryPolicy.max_retries`` times (the policy's simulated-seconds backoff
is applied as real *milliseconds* here; resubmission needs spacing, not
ledger-scale waits).  A shard that still fails is computed in the parent
process, so a broken pool degrades to the serial path instead of losing
the artifact.  ``REPRO_DISABLE_PARALLEL=1`` short-circuits everything to
the serial ``compute``.

Per-shard wall times are mirrored into :data:`repro.perf.PERF` as
``parallel.<artifact>.shard`` timers; worker-side perf snapshots are
absorbed into the parent registry when profiling is enabled, so
``--profile fig3 --jobs 4`` still reports the familiar timer names.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.node import RetryPolicy
from repro.perf import PERF

#: Environment kill switch: any non-empty value other than "0" forces serial.
DISABLE_ENV = "REPRO_DISABLE_PARALLEL"

#: Default bounded-resubmit policy for crashed/failed shards.  Backoff
#: fields are read as milliseconds by :func:`map_shards`.
SHARD_RETRY_POLICY = RetryPolicy(
    max_retries=2, base_backoff=20.0, multiplier=2.0, max_backoff=200.0
)


def parallel_disabled() -> bool:
    return os.environ.get(DISABLE_ENV, "") not in ("", "0")


def effective_jobs(
    args: Optional[argparse.Namespace] = None, jobs: Optional[int] = None
) -> int:
    """Worker count after applying the kill switch and flag defaults."""
    if parallel_disabled():
        return 1
    if jobs is None:
        jobs = getattr(args, "jobs", None)
    if not jobs:
        return 1
    return max(1, int(jobs))


def run_compute(artifact, args: argparse.Namespace) -> Any:
    """Compute an artifact's payload, sharding when possible and asked.

    The serial ``compute`` runs when the artifact has no sharded contract,
    when fewer than two workers are requested, or when the kill switch is
    set — those paths never touch multiprocessing at all.
    """
    jobs = effective_jobs(args)
    sharded = artifact.sharded
    if sharded is None or jobs <= 1:
        return artifact.compute(args)
    with PERF.timer(f"parallel.{artifact.name}.prepare"):
        context = sharded.prepare(args)
    shards = sharded.shards(context, jobs)
    if not shards:
        return artifact.compute(args)
    if len(shards) == 1:
        partials = [sharded.compute_shard(shards[0])]
    else:
        partials = map_shards(
            artifact.name, sharded.compute_shard, shards, jobs
        )
    with PERF.timer(f"parallel.{artifact.name}.merge"):
        return sharded.merge(partials, context)


# Worker side ---------------------------------------------------------------


def _call_shard(payload: Tuple[Callable[[Any], Any], Any, bool]):
    """Apply one shard function; runs in the worker (or as the parent's
    last-resort fallback).  Returns (partial, seconds, perf snapshot)."""
    fn, shard, profile = payload
    if profile:
        # Forked workers inherit the parent's live registry; reset it so
        # the snapshot covers exactly this shard's work and absorbing it
        # never double-counts parent-side timers (spawn starts empty, so
        # the reset makes both start methods report identically).
        PERF.reset()
        PERF.enable()
    start = time.perf_counter()
    partial = fn(shard)
    elapsed = time.perf_counter() - start
    snapshot = PERF.snapshot() if profile else None
    return partial, elapsed, snapshot


def _start_method() -> str:
    """Fork when the platform has it (cheap), else spawn.

    ``REPRO_MP_START`` overrides for debugging; shard functions are
    module-level, so both start methods can unpickle them.
    """
    override = os.environ.get("REPRO_MP_START", "")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# Parent side ---------------------------------------------------------------


def map_shards(
    name: str,
    fn: Callable[[Any], Any],
    shards: Sequence[Any],
    jobs: int,
    policy: RetryPolicy = SHARD_RETRY_POLICY,
) -> List[Any]:
    """Run ``fn`` over every shard in a worker pool; partials in shard order.

    Each failed shard is resubmitted up to ``policy.max_retries`` times
    (fresh pool if the old one broke), then computed in the parent as the
    final fallback — an exception surviving *that* is a real bug in ``fn``
    and propagates.
    """
    if not shards:
        return []
    jobs = max(1, min(jobs, len(shards)))
    profile = PERF.enabled
    rng = np.random.default_rng(0)
    context = multiprocessing.get_context(_start_method())
    results: Dict[int, Any] = {}
    pending = list(range(len(shards)))
    attempts = [0] * len(shards)
    executor = ProcessPoolExecutor(max_workers=jobs, mp_context=context)
    try:
        while pending:
            futures = {}
            broken = False
            for index in pending:
                try:
                    future = executor.submit(
                        _call_shard, (fn, shards[index], profile)
                    )
                except BrokenProcessPool:
                    broken = True
                    break
                futures[future] = index
            failed = [index for index in pending if index not in futures.values()]
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    try:
                        partial, elapsed, snapshot = future.result()
                    except Exception as exc:  # worker raise or pool death
                        broken = broken or isinstance(exc, BrokenProcessPool)
                        failed.append(index)
                        continue
                    results[index] = partial
                    PERF.add_time(f"parallel.{name}.shard", elapsed)
                    PERF.count(f"parallel.{name}.shards")
                    if snapshot:
                        PERF.absorb(snapshot)
            pending = []
            for index in sorted(failed):
                attempts[index] += 1
                if attempts[index] > policy.max_retries:
                    # Graceful degradation: the parent computes the shard
                    # itself — same function, same partial, just serial.
                    PERF.count(f"parallel.{name}.serial_fallbacks")
                    partial, elapsed, snapshot = _call_shard(
                        (fn, shards[index], False)
                    )
                    results[index] = partial
                    PERF.add_time(f"parallel.{name}.shard", elapsed)
                else:
                    PERF.count(f"parallel.{name}.resubmits")
                    pending.append(index)
            if pending:
                # Policy backoff is defined in simulated seconds; spacing
                # real resubmits wants milliseconds, not ledger-scale waits.
                delay_ms = policy.backoff_seconds(
                    max(attempts[index] for index in pending) - 1, rng
                )
                time.sleep(delay_ms / 1000.0)
                if broken:
                    executor.shutdown(wait=True, cancel_futures=True)
                    executor = ProcessPoolExecutor(
                        max_workers=jobs, mp_context=context
                    )
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    return [results[index] for index in range(len(shards))]
