"""A persistent warm worker pool, reused across artifact invocations.

Spawning a ``ProcessPoolExecutor`` costs fork/exec, interpreter start
(under spawn), and importing the repro package in every worker — for the
small shard counts our artifacts use, pool startup dominated the parallel
path (`figure3_parallel_x` ~0.1x).  This module keeps **one** pool alive
per process and hands it to every :func:`repro.parallel.engine.map_shards`
call:

* :func:`acquire` returns the warm pool when the requested ``(start
  method, jobs)`` matches, else tears the old one down and spawns fresh;
* :func:`release` returns the pool to the warm cache — workers stay up,
  the next artifact pays zero startup;
* :func:`discard` destroys a pool the caller saw break (crashed or hung
  worker).  Teardown is atomic with respect to the cache — the cache is
  emptied *before* any process is signalled, so no later ``acquire`` can
  see a dying pool — and finishes with a shared-memory stale-segment
  sweep, mirroring the durability layer's stale-temp sweep: a watchdog
  kill reclaims orphaned ``/dev/shm`` segments on the spot.

An ``atexit`` hook shuts the warm pool down on interpreter exit; a
``kill -9`` of the whole process is covered by the OS reaping the worker
children and by the next run's stale-segment sweep.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Tuple

from repro.obs.metrics import METRICS

#: (start method, max workers) -> live executor; at most one entry.
_WARM: Optional[Tuple[Tuple[str, int], ProcessPoolExecutor]] = None

#: Serializes cache mutations: the serve daemon acquires/releases from
#: concurrent request threads, and the check-then-take in :func:`acquire`
#: must be atomic (two threads must never both take the same executor).
_CACHE_LOCK = threading.Lock()

_ATEXIT_INSTALLED = False


def _install_atexit() -> None:
    global _ATEXIT_INSTALLED
    if not _ATEXIT_INSTALLED:
        _ATEXIT_INSTALLED = True
        atexit.register(shutdown)


def acquire(jobs: int, mp_context) -> ProcessPoolExecutor:
    """The warm pool for ``jobs`` workers, spawning only on a miss.

    A pool with a different worker count or start method is not reusable
    (determinism and capacity both key on the request); it is shut down
    and replaced.  The returned executor stays owned by this module —
    callers must hand it back through :func:`release` or :func:`discard`,
    never ``shutdown()`` it themselves.
    """
    global _WARM
    key = (mp_context.get_start_method(), jobs)
    with _CACHE_LOCK:
        if _WARM is not None:
            warm_key, executor = _WARM
            if warm_key == key:
                _WARM = None
                METRICS.count("parallel.pool.reused")
                return executor
    shutdown()
    _install_atexit()
    METRICS.count("parallel.pool.spawned")
    with METRICS.timer("parallel.pool.spawn"):
        return ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context)


def release(executor: ProcessPoolExecutor, jobs: int, mp_context) -> None:
    """Return a healthy pool to the warm cache for the next artifact."""
    global _WARM
    with _CACHE_LOCK:
        if _WARM is None:
            _WARM = ((mp_context.get_start_method(), jobs), executor)
            return
    # Another pool was cached while this one was out (nested or
    # concurrent use); keep the cached one, retire this one.
    executor.shutdown(wait=True, cancel_futures=True)


def discard(executor: ProcessPoolExecutor) -> None:
    """Destroy a broken or hung pool and reclaim what it may have leaked.

    Hung workers never join, so the processes are terminated first
    (best effort over CPython's ``_processes`` bookkeeping), then reaped;
    the stale shared-memory sweep runs last, after the killers above, so
    segments orphaned by the dead workers' parent runs are reclaimed.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except OSError:  # pragma: no cover - already dead
            pass
    executor.shutdown(wait=True, cancel_futures=True)
    METRICS.count("parallel.pool.discarded")
    from repro.parallel.shm import sweep_stale_segments

    sweep_stale_segments()


def shutdown() -> None:
    """Tear down the warm pool (idempotent; used by atexit and tests)."""
    global _WARM
    with _CACHE_LOCK:
        if _WARM is None:
            return
        _warm, _WARM = _WARM, None
    _warm[1].shutdown(wait=True, cancel_futures=True)


def warm_pool_alive() -> bool:
    """Whether a warm pool is currently cached (introspection/tests)."""
    return _WARM is not None
