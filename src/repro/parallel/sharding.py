"""Deterministic contiguous shard partitioning.

A shard plan depends only on ``(n, n_shards)``: the first ``n % n_shards``
shards take one extra record, so every partition is reproducible across
runs, machines, and worker counts — the precondition for the engine's
bit-for-bit guarantee (merges are order-independent, but identical shard
boundaries make per-shard partials themselves reproducible artifacts).
"""

from __future__ import annotations

from typing import List, Tuple


def shard_ranges(n: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, non-empty ``[start, stop)`` ranges covering ``range(n)``.

    At most ``n_shards`` ranges are returned (fewer when ``n < n_shards``);
    sizes differ by at most one record, larger shards first.
    """
    if n <= 0 or n_shards <= 0:
        return []
    n_shards = min(n_shards, n)
    base, extra = divmod(n, n_shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(n_shards):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges
