"""repro.parallel — deterministic sharded execution of registered artifacts.

The paper's headline sweep (23M payments at many feature resolutions) is
embarrassingly parallel; this package runs any artifact that registers a
:class:`repro.api.registry.ShardedCompute` contract across a
``multiprocessing`` worker pool.  Datasets are split into *contiguous*
record shards, each worker computes an order-independently mergeable
partial, and the reduce is bit-for-bit identical to the serial path —
``--jobs 4`` and ``--jobs 1`` print the same bytes.

Serial fallbacks, in precedence order: ``REPRO_DISABLE_PARALLEL=1``
(environment kill switch), ``--jobs 1`` / no ``--jobs`` flag, an artifact
without a sharded contract.  Worker crashes resubmit the failed shard a
bounded number of times (the PR 2 :class:`repro.node.RetryPolicy`) before
the parent computes the shard itself.
"""

from repro.parallel.engine import (
    DISABLE_ENV,
    effective_jobs,
    map_shards,
    run_compute,
)
from repro.parallel.sharding import shard_ranges

__all__ = [
    "DISABLE_ENV",
    "effective_jobs",
    "map_shards",
    "run_compute",
    "shard_ranges",
]
