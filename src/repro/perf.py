"""Deprecated shim: ``repro.perf`` became :mod:`repro.obs.metrics`.

The opt-in perf registry grew into the unified observability metrics
registry — same recording API (``count``/``add_time``/``timer``/
``absorb``/``snapshot``/``report``), same ``REPRO_PROFILE``/``--profile``
activation, plus gauges, histograms, and Prometheus/JSON expositions.

``PERF`` *is* :data:`repro.obs.metrics.METRICS` (one shared registry, so
legacy callers and migrated callers see the same numbers) and
``PerfRegistry`` *is* :class:`repro.obs.metrics.MetricsRegistry`.
Importing this module emits a :class:`DeprecationWarning`; in-tree code
imports the new names directly, and CI fails if any in-tree module
triggers this shim.
"""

from __future__ import annotations

import warnings

from repro.obs.metrics import METRICS as PERF, MetricsRegistry as PerfRegistry

warnings.warn(
    "repro.perf is deprecated; use repro.obs.metrics "
    "(METRICS / MetricsRegistry) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["PERF", "PerfRegistry"]
