"""Opt-in performance instrumentation: named counters and wall timers.

The paper-scale ambition (23M payments) makes hot-path visibility a
first-class concern, but instrumentation must not tax the hot paths it
observes.  The registry is therefore *disabled by default* and every
instrumented site guards on ``PERF.enabled`` — one attribute check when
profiling is off.  Enable with the ``REPRO_PROFILE=1`` environment
variable or the CLI's ``--profile`` flag; the CLI prints the report to
stderr when the command finishes.

Instrumented sites (all coarse-grained — nothing inside BFS inner loops):

* ``engine.submit`` — wall time and payment/failure counts;
* ``pathfinding.*`` — plans, BFS passes, paths found;
* ``generator.generate`` — whole-history wall time and slot count;
* ``etl.from_records`` — dataset build wall time;
* ``deanon.information_gain`` — per-feature-list IG wall time.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List


class PerfRegistry:
    """Accumulates named counters and wall-clock timers.

    Counters are plain integer sums.  Timers accumulate total seconds and
    call counts, so the report can show both totals and per-call costs.
    All methods are no-ops while ``enabled`` is False.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.counters: Dict[str, int] = {}
        #: name -> [total_seconds, calls]
        self._timers: Dict[str, List[float]] = {}

    # Control ----------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.counters.clear()
        self._timers.clear()

    # Recording --------------------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + delta

    def add_time(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        slot = self._timers.get(name)
        if slot is None:
            self._timers[name] = [seconds, 1]
        else:
            slot[0] += seconds
            slot[1] += 1

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block; free (single boolean check) when disabled."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def absorb(self, snapshot: Dict[str, object]) -> None:
        """Merge a :meth:`snapshot` from another process into this registry.

        The parallel engine ships each worker's snapshot back with its
        shard partial; absorbing them keeps ``--profile --jobs 4`` reports
        shaped like the serial ones (counter sums, timer totals and call
        counts accumulate across processes).
        """
        if not self.enabled or not isinstance(snapshot, dict):
            return
        for name, delta in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(delta)
        for name, info in snapshot.get("timers", {}).items():
            slot = self._timers.get(name)
            if slot is None:
                slot = self._timers[name] = [0.0, 0]
            slot[0] += float(info["seconds"])
            slot[1] += int(info["calls"])

    # Reporting --------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Machine-readable dump of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "timers": {
                name: {
                    "seconds": total,
                    "calls": int(calls),
                    "per_call": total / calls if calls else 0.0,
                }
                for name, (total, calls) in self._timers.items()
            },
        }

    def report(self) -> str:
        """Human-readable table, one line per counter/timer."""
        lines = ["-- perf report --"]
        for name in sorted(self._timers):
            total, calls = self._timers[name]
            per_call = total / calls if calls else 0.0
            lines.append(
                f"  {name:32s} {total:10.4f} s  {int(calls):>9d} calls"
                f"  {per_call * 1e6:12.2f} us/call"
            )
        for name in sorted(self.counters):
            lines.append(f"  {name:32s} {self.counters[name]:>12d}")
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)


#: Process-wide registry; honours ``REPRO_PROFILE`` at import time.
PERF = PerfRegistry(
    enabled=os.environ.get("REPRO_PROFILE", "") not in ("", "0")
)
