"""The paper's primary contribution.

* De-anonymization: Table I resolutions, payment fingerprints, information
  gain (Fig. 3), the side-channel attack, and financial-history profiling.
* Consensus robustness: the per-validator page accounting of Fig. 2 over
  the three collection periods, plus cross-period churn and concentration.
"""

from repro.core.attack import AttackResult, Observation, SideChannelAttack
from repro.core.clustering import (
    activation_clusters,
    activation_edges,
    behavioural_clusters,
    expand_dossier,
)
from repro.core.defenses import (
    DefenseReport,
    amount_padding,
    evaluate_defense,
    per_payment_wallets,
    settlement_batching,
    standard_defense_suite,
)
from repro.core.deanonymizer import Deanonymizer, InformationGain
from repro.core.fingerprint import (
    FingerprintMatrix,
    build_fingerprints,
    unique_sender_mask,
)
from repro.core.history import FinancialProfile, net_worth_eur, profile_account
from repro.core.resolution import (
    FIGURE3_FEATURE_LISTS,
    AmountResolution,
    FeatureList,
    TimeResolution,
    coarsen_timestamps,
    granularity_exponent,
    round_amount,
)
from repro.core.robustness import (
    PeriodReport,
    RobustnessStudy,
    ValidatorObservation,
    run_period,
)

__all__ = [
    "AmountResolution",
    "DefenseReport",
    "activation_clusters",
    "activation_edges",
    "amount_padding",
    "behavioural_clusters",
    "evaluate_defense",
    "expand_dossier",
    "per_payment_wallets",
    "settlement_batching",
    "standard_defense_suite",
    "AttackResult",
    "Deanonymizer",
    "FIGURE3_FEATURE_LISTS",
    "FeatureList",
    "FinancialProfile",
    "FingerprintMatrix",
    "InformationGain",
    "Observation",
    "PeriodReport",
    "RobustnessStudy",
    "SideChannelAttack",
    "TimeResolution",
    "ValidatorObservation",
    "build_fingerprints",
    "coarsen_timestamps",
    "granularity_exponent",
    "net_worth_eur",
    "profile_account",
    "round_amount",
    "run_period",
    "unique_sender_mask",
]
