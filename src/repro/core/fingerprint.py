"""Building payment fingerprints from a transaction dataset.

A *fingerprint* is the concatenation of the selected ⟨A, T, C, D⟩ features
at their chosen resolutions.  Two payments with equal fingerprints are
indistinguishable to an observer holding only that side-channel
information; the de-anonymizer asks how often a fingerprint pins down a
single sender.

Everything here is vectorized: fingerprints are rows of an integer matrix,
grouped with ``np.unique(axis=0)`` — O(n log n) over the whole history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.dataset import TransactionDataset
from repro.core.resolution import (
    AmountResolution,
    FeatureList,
    TimeResolution,
    coarsen_timestamps,
    granularity_exponent,
    half_up,
    round_amounts_vector,
)
from repro.errors import AnalysisError
from repro.ledger.currency import Currency


def max_exponent_per_currency(dataset: TransactionDataset) -> np.ndarray:
    """Per-currency Table I max-resolution exponent, aligned to the
    dataset's currency factorization."""
    return np.array(
        [
            granularity_exponent(Currency(code), AmountResolution.MAX)
            for code in dataset.currencies
        ],
        dtype=np.int64,
    )


class FeatureColumnCache:
    """Coarsened feature columns for one dataset, shared across lists.

    Fig. 3 evaluates ten feature lists over the same history; most pairs of
    lists share coarsened columns (four lists use ``Tsc`` timestamps, five
    use ``Am`` amount buckets...).  The cache computes each distinct column
    once, with exactly the same functions the uncached path uses, so cached
    and uncached fingerprints are bit-identical.
    """

    def __init__(self, dataset: TransactionDataset):
        self.dataset = dataset
        self._currency_exponents: Optional[np.ndarray] = None
        self._per_row_exponents: Optional[np.ndarray] = None
        self._time: dict = {}
        self._amount: dict = {}

    def currency_exponents(self) -> np.ndarray:
        """Max-resolution exponent per currency (dataset currency order)."""
        if self._currency_exponents is None:
            self._currency_exponents = max_exponent_per_currency(self.dataset)
        return self._currency_exponents

    def per_row_exponents(self) -> np.ndarray:
        """Max-resolution exponent of each row's currency."""
        if self._per_row_exponents is None:
            self._per_row_exponents = self.currency_exponents()[
                self.dataset.currency_ids
            ]
        return self._per_row_exponents

    def time_column(self, resolution: TimeResolution) -> np.ndarray:
        found = self._time.get(resolution)
        if found is None:
            found = coarsen_timestamps(self.dataset.timestamps, resolution)
            self._time[resolution] = found
        return found

    def amount_column(
        self, resolution: AmountResolution, use_currency: bool
    ) -> np.ndarray:
        # HIGH shares MAX's granularity (Table I gives it no row), so the
        # buckets coincide; key on the effective exponent offset instead of
        # the enum to share that work too.
        key = (resolution.exponent_offset(), use_currency)
        found = self._amount.get(key)
        if found is None:
            per_row = self.per_row_exponents()
            found = round_amounts_vector(self.dataset.amounts, per_row, resolution)
            if not use_currency:
                # Without the currency feature, amounts in different
                # currencies may still collide numerically; but the rounding
                # granularity depends on the currency, so we must NOT leak
                # currency identity through the bucket scale.  Re-express
                # buckets in absolute value terms: bucket * 10^exponent,
                # quantized at the finest granularity of any currency in the
                # dataset's factorization (not merely the rows at hand, so
                # that a contiguous row shard rescales exactly like the full
                # dataset — uniform rescaling preserves the grouping either
                # way).  ``half_up`` snaps the integral-valued products back
                # to exact integers with the same tie rule the bucketing
                # itself uses.
                finest = int(self.currency_exponents().min())
                scale = np.power(10.0, (per_row - finest).astype(np.float64))
                found = half_up(found * scale).astype(np.int64)
            self._amount[key] = found
        return found


@dataclass
class FingerprintMatrix:
    """Fingerprint columns for one feature list over one dataset."""

    columns: np.ndarray  # (n, k) int64; k >= 1
    feature_list: FeatureList

    @property
    def n(self) -> int:
        return self.columns.shape[0]

    def group_inverse(self) -> np.ndarray:
        """Group id per row (equal fingerprints share an id).

        Column-at-a-time factorization instead of ``np.unique(axis=0)``:
        each column is compressed to dense ranks, then folded into a
        running mixed-radix key that is re-compressed after every column.
        Per-column ranks preserve value order, so the running key's numeric
        order is the rows' lexicographic order — the final labels are
        exactly the ``np.unique(axis=0)`` inverse, at the cost of k cheap
        1-D sorts instead of one structured row sort.  Re-compression keeps
        every key below n * max-column-cardinality, so int64 never
        overflows.
        """
        cols = self.columns
        if cols.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        _, keys = np.unique(cols[:, 0], return_inverse=True)
        keys = keys.ravel()
        for j in range(1, cols.shape[1]):
            _, ranks = np.unique(cols[:, j], return_inverse=True)
            ranks = ranks.ravel()
            radix = int(ranks.max()) + 1
            _, keys = np.unique(keys * radix + ranks, return_inverse=True)
            keys = keys.ravel()
        return keys


def build_fingerprints(
    dataset: TransactionDataset,
    feature_list: FeatureList,
    cache: Optional[FeatureColumnCache] = None,
) -> FingerprintMatrix:
    """Assemble the integer fingerprint matrix for ``feature_list``.

    ``cache`` shares coarsened columns across calls for the same dataset
    (the :class:`Deanonymizer` holds one); without it a transient cache is
    used, computing every column the same way.

    Raises :class:`AnalysisError` when every feature is dropped — an empty
    fingerprint identifies nothing and the caller should treat IG as 0.
    """
    if cache is None:
        cache = FeatureColumnCache(dataset)
    elif cache.dataset is not dataset:
        raise AnalysisError("column cache belongs to a different dataset")
    columns: List[np.ndarray] = []

    if feature_list.amount is not AmountResolution.NONE:
        columns.append(
            cache.amount_column(feature_list.amount, feature_list.use_currency)
        )

    if feature_list.time is not TimeResolution.NONE:
        columns.append(cache.time_column(feature_list.time))

    if feature_list.use_currency:
        columns.append(dataset.currency_ids)

    if feature_list.use_destination:
        columns.append(dataset.destination_ids)

    if not columns:
        raise AnalysisError("feature list selects no features at all")

    matrix = np.column_stack(columns).astype(np.int64)
    return FingerprintMatrix(columns=matrix, feature_list=feature_list)


def unique_fingerprint_mask(fingerprints: FingerprintMatrix) -> np.ndarray:
    """Boolean per payment: is its fingerprint unique in the history?

    This is Fig. 3's measure ("percentage of Ripple payments producing a
    unique fingerprint"): the fingerprint occurs exactly once, so the
    payment — and hence its sender — is pinned down with certainty.
    """
    groups = fingerprints.group_inverse()
    counts = np.bincount(groups)
    return counts[groups] == 1


def unique_sender_mask(
    fingerprints: FingerprintMatrix, sender_ids: np.ndarray
) -> np.ndarray:
    """Boolean per payment: does its fingerprint identify a single sender?

    A fingerprint group identifies the sender when *all* payments in the
    group come from the same account — even if the group has several
    payments (the paper's IG is about identifying S, not the payment).
    """
    groups = fingerprints.group_inverse()
    order = np.argsort(groups, kind="stable")
    sorted_groups = groups[order]
    sorted_senders = sender_ids[order]
    boundaries = np.flatnonzero(np.diff(sorted_groups)) + 1
    starts = np.concatenate(([0], boundaries))
    # A group pins the sender iff its min and max sender id coincide.
    group_min = np.minimum.reduceat(sorted_senders, starts)
    group_max = np.maximum.reduceat(sorted_senders, starts)
    group_identified = group_min == group_max
    segment_ids = np.zeros(len(groups), dtype=np.int64)
    segment_ids[boundaries] = 1
    segment_ids = np.cumsum(segment_ids)
    identified_sorted = group_identified[segment_ids]
    mask = np.empty(len(groups), dtype=bool)
    mask[order] = identified_sorted
    return mask
