"""The de-anonymization study itself: information gain over feature lists.

The paper defines the *information gain* ``IG(LT)`` of a feature list as
the percentage of payments whose sender can be uniquely identified from the
list's features at their resolutions.  This module computes IG for any
feature list, reproduces the ten rows of Fig. 3, and exposes the query
interface an attacker would use (given observed features, return the
candidate senders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.dataset import TransactionDataset
from repro.core.fingerprint import (
    FeatureColumnCache,
    FingerprintMatrix,
    build_fingerprints,
    unique_fingerprint_mask,
    unique_sender_mask,
)
from repro.core.resolution import (
    FIGURE3_FEATURE_LISTS,
    AmountResolution,
    FeatureList,
    TimeResolution,
    half_up,
)
from repro.errors import AnalysisError
from repro.ledger.accounts import AccountID
from repro.obs.metrics import METRICS


@dataclass(frozen=True)
class InformationGain:
    """IG result for one feature list."""

    feature_list: FeatureList
    identified: int
    total: int

    @property
    def fraction(self) -> float:
        return self.identified / self.total if self.total else 0.0

    @property
    def percent(self) -> float:
        return 100.0 * self.fraction

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.feature_list.label():28s} IG = {self.percent:6.2f}%"


@dataclass(frozen=True)
class Figure3Partial:
    """One shard's contribution to Fig. 3: fingerprint histograms.

    ``per_list[i]`` holds ``(rows, counts)`` for feature list ``i``:
    ``rows`` are the shard's distinct fingerprints (one int64 row each)
    and ``counts`` their multiplicities.  Identifiers inside the rows are
    the parent dataset's global factorization (contiguous shards share the
    factorization dictionaries), so partials from any shard partition
    merge by exact row equality.
    """

    n: int
    per_list: Tuple[Tuple[np.ndarray, np.ndarray], ...]


def figure3_shard_partial(
    dataset: TransactionDataset,
    feature_lists: Sequence[FeatureList] = FIGURE3_FEATURE_LISTS,
) -> Figure3Partial:
    """Map step of the sharded Fig. 3 (runs inside a worker process)."""
    with METRICS.timer("deanon.figure3_shard"):
        cache = FeatureColumnCache(dataset)
        per_list = []
        for feature_list in feature_lists:
            matrix = build_fingerprints(dataset, feature_list, cache=cache)
            rows, counts = np.unique(
                matrix.columns, axis=0, return_counts=True
            )
            per_list.append((rows, counts.astype(np.int64)))
        return Figure3Partial(n=len(dataset), per_list=tuple(per_list))


def merge_figure3_partials(
    partials: Sequence[Figure3Partial],
    feature_lists: Sequence[FeatureList] = FIGURE3_FEATURE_LISTS,
) -> List[InformationGain]:
    """Order-independent reduce of shard partials to the Fig. 3 rows.

    A payment is identified iff its fingerprint's summed multiplicity
    across all shards is exactly one — the same integer count the serial
    :func:`unique_fingerprint_mask` produces, so the merged result is
    bit-for-bit identical to the unsharded run.
    """
    if not partials:
        raise AnalysisError("no shard partials to merge")
    total = sum(partial.n for partial in partials)
    gains: List[InformationGain] = []
    for index, feature_list in enumerate(feature_lists):
        rows = np.concatenate([p.per_list[index][0] for p in partials])
        counts = np.concatenate([p.per_list[index][1] for p in partials])
        _, inverse = np.unique(rows, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        summed = np.zeros(
            int(inverse.max()) + 1 if len(inverse) else 0, dtype=np.int64
        )
        np.add.at(summed, inverse, counts)
        gains.append(
            InformationGain(
                feature_list=feature_list,
                identified=int((summed == 1).sum()),
                total=total,
            )
        )
    return gains


class Deanonymizer:
    """Computes IG and answers attacker queries over one dataset."""

    def __init__(self, dataset: TransactionDataset):
        if len(dataset) == 0:
            raise AnalysisError("empty dataset")
        self.dataset = dataset
        self._cache: Dict[FeatureList, FingerprintMatrix] = {}
        self._columns = FeatureColumnCache(dataset)

    def _fingerprints(self, feature_list: FeatureList) -> FingerprintMatrix:
        found = self._cache.get(feature_list)
        if found is None:
            found = build_fingerprints(
                self.dataset, feature_list, cache=self._columns
            )
            self._cache[feature_list] = found
        return found

    def information_gain(
        self, feature_list: FeatureList, strict: bool = True
    ) -> InformationGain:
        """IG of one feature list (one bar of Fig. 3).

        ``strict=True`` is the paper's measure: the payment's fingerprint
        occurs exactly once in the whole history.  ``strict=False`` is the
        stronger attacker model: a fingerprint shared by several payments
        still identifies the sender when all of them come from one account
        (spam campaigns make this mode substantially more powerful).
        """
        with METRICS.timer("deanon.information_gain"):
            fingerprints = self._fingerprints(feature_list)
            if strict:
                mask = unique_fingerprint_mask(fingerprints)
            else:
                mask = unique_sender_mask(fingerprints, self.dataset.sender_ids)
            return InformationGain(
                feature_list=feature_list,
                identified=int(mask.sum()),
                total=len(self.dataset),
            )

    def figure3(
        self, feature_lists: Sequence[FeatureList] = FIGURE3_FEATURE_LISTS
    ) -> List[InformationGain]:
        """All rows of Fig. 3, in the paper's order."""
        return [self.information_gain(fl) for fl in feature_lists]

    # Attacker-facing queries ----------------------------------------------------

    def candidate_rows(
        self,
        feature_list: FeatureList,
        amount: Optional[float] = None,
        currency: Optional[str] = None,
        timestamp: Optional[int] = None,
        destination: Optional[AccountID] = None,
    ) -> np.ndarray:
        """Row indices of payments matching the observed features.

        The observation is coarsened exactly the way the dataset's
        fingerprints were, so matching is bucket-to-bucket.
        """
        dataset = self.dataset
        mask = np.ones(len(dataset), dtype=bool)
        # Both the currency feature and the amount bucketing need the
        # currency's row set; compute it once.
        currency_rows: Optional[np.ndarray] = None
        if currency is not None:
            currency_rows = dataset.rows_for_currency(currency)

        if feature_list.use_currency:
            if currency_rows is None:
                raise AnalysisError("feature list requires a currency observation")
            mask &= currency_rows

        if feature_list.use_destination:
            if destination is None:
                raise AnalysisError("feature list requires a destination observation")
            destination_id = dataset.account_id_of(destination)
            if destination_id is None:
                return np.empty(0, dtype=np.int64)
            mask &= dataset.destination_ids == destination_id

        if feature_list.time is not TimeResolution.NONE:
            if timestamp is None:
                raise AnalysisError("feature list requires a timestamp observation")
            if int(timestamp) < 0:
                raise AnalysisError(
                    "negative (pre-epoch) timestamp observation; timestamps "
                    "are non-negative epoch seconds"
                )
            bucket = feature_list.time.bucket_seconds()
            observed_bucket = (int(timestamp) // bucket) * bucket
            mask &= self._columns.time_column(feature_list.time) == observed_bucket

        if feature_list.amount is not AmountResolution.NONE:
            if amount is None or currency_rows is None:
                raise AnalysisError(
                    "feature list requires amount and currency observations"
                )
            per_row = self._columns.per_row_exponents()
            buckets = self._columns.amount_column(feature_list.amount, True)
            if not currency_rows.any():
                return np.empty(0, dtype=np.int64)
            row_exponent = int(per_row[np.argmax(currency_rows)])
            offset = feature_list.amount.exponent_offset()
            # Same half-up tie rule as the dataset-side bucketing, so an
            # observation exactly on a bucket edge matches its payments.
            observed_bucket = int(
                half_up(amount / 10.0 ** (row_exponent + offset))
            )
            mask &= buckets == observed_bucket

        return np.flatnonzero(mask)

    def candidate_senders(
        self,
        feature_list: FeatureList,
        amount: Optional[float] = None,
        currency: Optional[str] = None,
        timestamp: Optional[int] = None,
        destination: Optional[AccountID] = None,
    ) -> List[AccountID]:
        """Distinct senders compatible with the observation."""
        rows = self.candidate_rows(
            feature_list,
            amount=amount,
            currency=currency,
            timestamp=timestamp,
            destination=destination,
        )
        sender_ids = np.unique(self.dataset.sender_ids[rows])
        return [self.dataset.accounts[int(s)] for s in sender_ids]
