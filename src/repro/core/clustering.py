"""Wallet-linking heuristics (the Moreno-Sanchez et al. related work).

The paper's related-work section ([10]) describes heuristics that cluster
apparently unrelated Ripple accounts owned by the same entity.  This module
implements the two that apply to ledger-only data, plus the observation the
paper itself makes in the appendix (both hyper-central hubs were *activated*
by the same account, ``~akhavr``):

* **Activation clustering** — a Ripple account comes alive with its first
  incoming XRP payment; accounts activated by the same funder are
  candidates for common ownership.
* **Behavioural linking** — accounts that pay the same counterparties with
  the same recurring price points are linked by a similarity score.

These heuristics *compose* with the Section V de-anonymization: once one
payment identifies one wallet, linking expands the dossier to the owner's
other wallets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.dataset import TransactionDataset
from repro.ledger.accounts import AccountID
from repro.synthetic.records import TransactionRecord


@dataclass(frozen=True)
class ActivationEdge:
    """``funder`` sent ``account`` its first XRP (activation)."""

    funder: AccountID
    account: AccountID
    timestamp: int


def activation_edges(
    records: Sequence[TransactionRecord],
) -> List[ActivationEdge]:
    """Who activated whom: the first incoming XRP payment per account.

    Only direct XRP payments can activate an account (IOUs require a
    pre-existing trust line, hence a pre-existing account).
    """
    first_seen: Dict[AccountID, ActivationEdge] = {}
    for record in sorted(records, key=lambda r: (r.timestamp, r.index)):
        if not record.is_xrp_direct or not record.delivered:
            continue
        if record.destination not in first_seen:
            first_seen[record.destination] = ActivationEdge(
                funder=record.sender,
                account=record.destination,
                timestamp=record.timestamp,
            )
    return list(first_seen.values())


def activation_clusters(
    records: Sequence[TransactionRecord],
    min_size: int = 2,
) -> List[Tuple[AccountID, List[AccountID]]]:
    """Group activated accounts by their funder.

    Returns (funder, accounts) pairs for every funder that activated at
    least ``min_size`` accounts — the ``~akhavr`` pattern.
    """
    by_funder: Dict[AccountID, List[AccountID]] = {}
    for edge in activation_edges(records):
        by_funder.setdefault(edge.funder, []).append(edge.account)
    clusters = [
        (funder, accounts)
        for funder, accounts in by_funder.items()
        if len(accounts) >= min_size
    ]
    clusters.sort(key=lambda item: -len(item[1]))
    return clusters


@dataclass
class BehaviouralProfile:
    """The linkable behaviour of one sending account."""

    account: AccountID
    destinations: FrozenSet[int]
    amount_buckets: FrozenSet[int]
    active_days: FrozenSet[int]

    def similarity(self, other: "BehaviouralProfile") -> float:
        """Jaccard-style similarity over destinations and price points.

        Destination overlap dominates (paying the same people is the
        strongest ownership signal); recurring amounts refine it.
        """
        score = 0.0
        weight = 0.0
        for mine, theirs, importance in (
            (self.destinations, other.destinations, 0.6),
            (self.amount_buckets, other.amount_buckets, 0.25),
            (self.active_days, other.active_days, 0.15),
        ):
            union = len(mine | theirs)
            if union:
                score += importance * len(mine & theirs) / union
                weight += importance
        return score / weight if weight else 0.0


def behavioural_profiles(
    dataset: TransactionDataset, min_payments: int = 3
) -> List[BehaviouralProfile]:
    """One profile per sender with at least ``min_payments`` payments."""
    profiles: List[BehaviouralProfile] = []
    day = 86400
    amount_bucket = np.round(np.log10(np.maximum(dataset.amounts, 1e-9)) * 4).astype(int)
    for sender_id in np.unique(dataset.sender_ids):
        rows = dataset.sender_ids == sender_id
        if int(rows.sum()) < min_payments:
            continue
        profiles.append(
            BehaviouralProfile(
                account=dataset.accounts[int(sender_id)],
                destinations=frozenset(
                    int(x) for x in np.unique(dataset.destination_ids[rows])
                ),
                amount_buckets=frozenset(int(x) for x in np.unique(amount_bucket[rows])),
                active_days=frozenset(
                    int(x) for x in np.unique(dataset.timestamps[rows] // day)
                ),
            )
        )
    return profiles


@dataclass
class LinkedCluster:
    """A set of accounts the heuristics attribute to one owner."""

    accounts: List[AccountID]
    evidence: str

    def __len__(self) -> int:
        return len(self.accounts)


def behavioural_clusters(
    dataset: TransactionDataset,
    threshold: float = 0.5,
    min_payments: int = 3,
) -> List[LinkedCluster]:
    """Greedy single-linkage clustering over behavioural similarity.

    O(n^2) over senders with enough history — fine at study scale, where
    active senders number in the tens of thousands (paper: 55k).
    """
    profiles = behavioural_profiles(dataset, min_payments)
    parent = list(range(len(profiles)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    for i in range(len(profiles)):
        for j in range(i + 1, len(profiles)):
            if profiles[i].similarity(profiles[j]) >= threshold:
                union(i, j)

    groups: Dict[int, List[AccountID]] = {}
    for index, profile in enumerate(profiles):
        groups.setdefault(find(index), []).append(profile.account)
    clusters = [
        LinkedCluster(accounts=members, evidence=f"behavioural>= {threshold}")
        for members in groups.values()
        if len(members) >= 2
    ]
    clusters.sort(key=len, reverse=True)
    return clusters


def expand_dossier(
    dataset: TransactionDataset,
    identified: AccountID,
    records: Sequence[TransactionRecord],
    threshold: float = 0.5,
) -> Set[AccountID]:
    """All accounts attributable to the owner of ``identified``.

    Combines both heuristics: the behavioural cluster containing the
    account, plus anything sharing its activation funder.  This is the
    composition step: Section V finds *one* wallet; the heuristics of [10]
    find the rest.
    """
    linked: Set[AccountID] = {identified}
    for cluster in behavioural_clusters(dataset, threshold):
        if identified in cluster.accounts:
            linked.update(cluster.accounts)
    funder_of: Dict[AccountID, AccountID] = {
        edge.account: edge.funder for edge in activation_edges(records)
    }
    my_funder = funder_of.get(identified)
    if my_funder is not None:
        for account, funder in funder_of.items():
            if funder == my_funder:
                linked.add(account)
    return linked
