"""The side-channel attack scenario: Alice de-anonymizes Bob's latte.

Section V opens with Alice standing behind Bob in a bar that accepts
Ripple.  From overhearing one payment she knows: the bar's Ripple address
(the receiver), the currency and amount, and (roughly) the time.  This
module packages the end-to-end attack: observation → candidate senders →
unique identification → full financial dossier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.dataset import TransactionDataset
from repro.core.deanonymizer import Deanonymizer
from repro.core.history import FinancialProfile, profile_account
from repro.core.resolution import FeatureList
from repro.ledger.accounts import AccountID
from repro.ledger.state import LedgerState


@dataclass(frozen=True)
class Observation:
    """What a bystander learns about one payment.

    Any field may be None when unobserved; the chosen feature list decides
    which fields the attack actually uses and at which resolution.
    """

    destination: Optional[AccountID] = None
    currency: Optional[str] = None
    amount: Optional[float] = None
    timestamp: Optional[int] = None


@dataclass
class AttackResult:
    """Outcome of one de-anonymization attempt."""

    observation: Observation
    feature_list: FeatureList
    candidates: List[AccountID]
    profile: Optional[FinancialProfile] = None

    @property
    def succeeded(self) -> bool:
        """True when exactly one sender matches — Bob is identified."""
        return len(self.candidates) == 1

    @property
    def sender(self) -> Optional[AccountID]:
        return self.candidates[0] if self.succeeded else None


class SideChannelAttack:
    """Alice's toolkit: query the public ledger with overheard details."""

    def __init__(
        self, dataset: TransactionDataset, state: Optional[LedgerState] = None
    ):
        self.dataset = dataset
        self.state = state
        self.deanonymizer = Deanonymizer(dataset)

    def run(
        self,
        observation: Observation,
        feature_list: FeatureList = FeatureList(),
        build_profile: bool = True,
    ) -> AttackResult:
        """Execute the attack for one observation.

        When the observation pins down a single sender and
        ``build_profile`` is set, the result includes the sender's full
        financial dossier — past payments, income, merchants, trust.
        """
        candidates = self.deanonymizer.candidate_senders(
            feature_list,
            amount=observation.amount,
            currency=observation.currency,
            timestamp=observation.timestamp,
            destination=observation.destination,
        )
        result = AttackResult(
            observation=observation,
            feature_list=feature_list,
            candidates=candidates,
        )
        if result.succeeded and build_profile:
            result.profile = profile_account(
                result.sender, self.dataset, self.state
            )
        return result

    def success_rate(
        self,
        feature_list: FeatureList,
        sample_rows: Optional[List[int]] = None,
    ) -> float:
        """Fraction of (sampled) payments whose *observation* succeeds.

        Uses each payment's own features as the observation — a Monte Carlo
        check that the closed-form IG matches attack behaviour.
        """
        rows = sample_rows if sample_rows is not None else range(len(self.dataset))
        hits = 0
        total = 0
        for row in rows:
            observation = Observation(
                destination=self.dataset.accounts[int(self.dataset.destination_ids[row])],
                currency=self.dataset.currency_code(int(self.dataset.currency_ids[row])),
                amount=float(self.dataset.amounts[row]),
                timestamp=int(self.dataset.timestamps[row]),
            )
            outcome = self.run(observation, feature_list, build_profile=False)
            total += 1
            if outcome.succeeded:
                hits += 1
        return hits / total if total else 0.0
