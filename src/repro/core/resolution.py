"""Feature resolutions for the de-anonymization study (Table I, Fig. 3).

A transaction fingerprint is the tuple ⟨A, T, C, D⟩ — amount, timestamp,
currency, destination — each taken at some *resolution*:

* the **amount** is rounded to the closest power of ten whose exponent
  depends on the currency's market strength (Table I): a BTC amount at
  maximum resolution rounds to the closest 10⁻³, a USD amount to the
  closest 10¹, an XRP amount to the closest 10⁵;
* the **timestamp** is truncated from seconds down to minutes, hours, or
  whole days;
* **currency** and **destination** are nominal: included or dropped.

Fig. 3 also uses an amount level ``Ah`` ("high") between max and average;
Table I does not give it a separate granularity, so we treat it as the
Table I maximum — the ⟨Ah, Tmn, C, D⟩ row then isolates the effect of
coarsening the timestamp to minutes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.ledger.currency import Currency, Strength, strength_of

#: Granularity exponents per strength group: 10^x at (max, average, low).
#: These are exactly the Table I rows.
GRANULARITY_EXPONENTS: Dict[Strength, Tuple[int, int, int]] = {
    Strength.POWERFUL: (-3, -2, -1),
    Strength.MEDIUM: (1, 2, 3),
    Strength.WEAK: (5, 6, 7),
}


class AmountResolution(enum.Enum):
    """Resolution of the amount feature (subscripts of Fig. 3)."""

    MAX = "m"
    HIGH = "h"  # Table I gives no separate granularity; treated as MAX.
    AVERAGE = "a"
    LOW = "l"
    NONE = "-"

    def exponent_offset(self) -> Optional[int]:
        """Offset into the Table I triplet, or None when dropped."""
        if self is AmountResolution.NONE:
            return None
        if self in (AmountResolution.MAX, AmountResolution.HIGH):
            return 0
        if self is AmountResolution.AVERAGE:
            return 1
        return 2


class TimeResolution(enum.Enum):
    """Resolution of the timestamp feature."""

    SECONDS = "sc"
    MINUTES = "mn"
    HOURS = "hr"
    DAYS = "dy"
    NONE = "-"

    def bucket_seconds(self) -> Optional[int]:
        if self is TimeResolution.NONE:
            return None
        return {
            TimeResolution.SECONDS: 1,
            TimeResolution.MINUTES: 60,
            TimeResolution.HOURS: 3600,
            TimeResolution.DAYS: 86400,
        }[self]


def granularity_exponent(currency: Currency, resolution: AmountResolution) -> Optional[int]:
    """The Table I rounding exponent for ``currency`` at ``resolution``."""
    offset = resolution.exponent_offset()
    if offset is None:
        return None
    return GRANULARITY_EXPONENTS[strength_of(currency)][offset]


def half_up(values):
    """Round half-up: ``floor(x + 0.5)`` (scalar or ndarray).

    Table I coarsening must put boundary amounts in a *deterministic*
    bucket: ``np.round`` rounds half-to-even (banker's rounding), so 0.5
    and 1.5 land in the same bucket (0 and 2) while 2.5 joins 2 — amounts
    exactly on a bucket edge would split inconsistently.  Half-up matches
    :meth:`repro.ledger.amounts.Amount.round_to` (half-away-from-zero for
    the positive amounts a payment can carry) and keeps the scalar, the
    vectorized, and the attacker-query paths in the same bucket.
    """
    return np.floor(np.asarray(values, dtype=np.float64) + 0.5)


def round_amount(value: float, currency: Currency, resolution: AmountResolution) -> float:
    """Round a single amount per Table I (scalar convenience API)."""
    exponent = granularity_exponent(currency, resolution)
    if exponent is None:
        return float("nan")
    granularity = 10.0 ** exponent
    return float(half_up(value / granularity) * granularity)


def round_amounts_vector(
    amounts: np.ndarray,
    currency_exponents: np.ndarray,
    resolution: AmountResolution,
) -> np.ndarray:
    """Vectorized Table I rounding to integer bucket indices.

    ``currency_exponents`` holds, per row, the *max-resolution* exponent of
    the row's currency; the resolution offset shifts it.  Returns integer
    bucket ids (amount / 10^exponent, rounded half-up), which is what
    fingerprint grouping needs — two amounts are indistinguishable iff they
    share a bucket.
    """
    offset = resolution.exponent_offset()
    if offset is None:
        raise ValueError("cannot round at resolution NONE")
    exponents = currency_exponents + offset
    scale = np.power(10.0, -exponents.astype(np.float64))
    return half_up(amounts * scale).astype(np.int64)


def coarsen_timestamps(timestamps: np.ndarray, resolution: TimeResolution) -> np.ndarray:
    """Truncate timestamps to the resolution's bucket (vectorized).

    Timestamps are epoch seconds and must be non-negative: floor division
    would silently place pre-epoch timestamps in the *earlier* bucket
    (``-1 // 60 == -1``), which is neither the truncation an observer of
    wall-clock times applies nor an error — so negative inputs are
    rejected outright instead of producing shifted buckets.
    """
    bucket = resolution.bucket_seconds()
    if bucket is None:
        raise ValueError("cannot coarsen at resolution NONE")
    timestamps = np.asarray(timestamps)
    if timestamps.size and int(timestamps.min()) < 0:
        raise ValueError(
            "negative (pre-epoch) timestamps are not supported; "
            "shift the history to non-negative epoch seconds first"
        )
    return (timestamps // bucket) * bucket


@dataclass(frozen=True)
class FeatureList:
    """A ⟨A, T, C, D⟩ feature selection — one row of Fig. 3."""

    amount: AmountResolution = AmountResolution.MAX
    time: TimeResolution = TimeResolution.SECONDS
    use_currency: bool = True
    use_destination: bool = True

    def label(self) -> str:
        """Render like the paper: ``⟨Am; Tsc; C; D⟩``."""
        amount = "-" if self.amount is AmountResolution.NONE else f"A{self.amount.value}"
        time = "-" if self.time is TimeResolution.NONE else f"T{self.time.value}"
        currency = "C" if self.use_currency else "-"
        destination = "D" if self.use_destination else "-"
        return f"<{amount}; {time}; {currency}; {destination}>"


#: The ten feature lists of Fig. 3, in the paper's order.
FIGURE3_FEATURE_LISTS: Tuple[FeatureList, ...] = (
    FeatureList(AmountResolution.MAX, TimeResolution.SECONDS, True, True),
    FeatureList(AmountResolution.MAX, TimeResolution.SECONDS, False, True),
    FeatureList(AmountResolution.MAX, TimeResolution.SECONDS, True, False),
    FeatureList(AmountResolution.NONE, TimeResolution.SECONDS, True, True),
    FeatureList(AmountResolution.HIGH, TimeResolution.MINUTES, True, True),
    FeatureList(AmountResolution.AVERAGE, TimeResolution.HOURS, True, True),
    FeatureList(AmountResolution.LOW, TimeResolution.DAYS, True, True),
    FeatureList(AmountResolution.MAX, TimeResolution.NONE, True, True),
    FeatureList(AmountResolution.MAX, TimeResolution.NONE, False, False),
    FeatureList(AmountResolution.LOW, TimeResolution.DAYS, False, False),
)
