"""The consensus-robustness study (Section IV, Fig. 2).

This module is the paper's methodology end to end:

1. stand up a consensus network for a collection period's validator
   population;
2. attach a stream server and a collector (the measurement rig);
3. run the period;
4. cross-reference every observed validation against the main ledger's
   fully validated pages, yielding per-validator *total* vs. *valid*
   signed-page counts;
5. classify validators and compute the robustness findings the paper
   reports (active counts, churn across periods, concentration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.consensus.engine import ConsensusEngine
from repro.consensus.network import NetworkModel
from repro.stream.collector import StreamCollector
from repro.stream.periods import (
    DEFAULT_SCALE,
    PERIODS,
    PeriodSpec,
    rounds_for_scale,
)
from repro.stream.server import StreamServer


@dataclass
class ValidatorObservation:
    """One bar pair of Fig. 2: a validator's total and valid signed pages."""

    name: str
    total_pages: int
    valid_pages: int
    is_ripple_labs: bool = False

    @property
    def valid_fraction(self) -> float:
        return self.valid_pages / self.total_pages if self.total_pages else 0.0


@dataclass
class PeriodReport:
    """Everything the study measures in one collection period."""

    period: PeriodSpec
    rounds: int
    scale: float
    observations: List[ValidatorObservation] = field(default_factory=list)
    rounds_validated: int = 0

    @property
    def availability(self) -> float:
        return self.rounds_validated / self.rounds if self.rounds else 0.0

    def observation(self, name: str) -> Optional[ValidatorObservation]:
        for obs in self.observations:
            if obs.name == name:
                return obs
        return None

    def active_validators(self, threshold: float = 0.5) -> List[str]:
        """Validators whose valid pages are comparable to R1–R5's.

        ``threshold`` is the fraction of the median R1–R5 valid count a
        validator must reach to be called an *active contributor*.
        """
        labs = sorted(
            obs.valid_pages for obs in self.observations if obs.is_ripple_labs
        )
        if not labs:
            return []
        reference = labs[len(labs) // 2]
        return [
            obs.name
            for obs in self.observations
            if obs.valid_pages >= threshold * reference
        ]

    def zero_valid_validators(self) -> List[str]:
        """Observed validators that never signed a main-ledger page."""
        return [
            obs.name
            for obs in self.observations
            if obs.total_pages > 0 and obs.valid_pages == 0
        ]

    def scaled(self, counts: int) -> int:
        """Rescale a simulated count to full two-week magnitude."""
        return int(round(counts / self.scale))


def run_period(
    spec: PeriodSpec,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    sign_pages: bool = False,
    network: Optional[NetworkModel] = None,
) -> PeriodReport:
    """Execute the full measurement pipeline for one collection period."""
    rounds = rounds_for_scale(scale)
    validators = spec.build_validators(rounds)
    engine = ConsensusEngine(
        validators,
        master_unl=spec.master_unl(),
        network=network or NetworkModel(),
        seed=seed,
        sign_pages=sign_pages,
    )
    server = StreamServer(seed=seed + 1)
    collector = StreamCollector()
    server.subscribe(collector)
    server.attach(engine)

    consensus_report = engine.run(rounds)

    # The paper compares stream captures against the public ledger: valid
    # pages are those whose hash appears in the fully validated main chain.
    totals = collector.total_counts()
    valids = collector.valid_counts(consensus_report.main_chain_hashes)
    labs = {v.name for v in validators if v.is_ripple_labs}

    report = PeriodReport(period=spec, rounds=rounds, scale=scale)
    report.rounds_validated = consensus_report.rounds_validated
    for name in spec.validator_names():
        report.observations.append(
            ValidatorObservation(
                name=name,
                total_pages=totals.get(name, 0),
                valid_pages=valids.get(name, 0),
                is_ripple_labs=name in labs,
            )
        )
    return report


@dataclass
class RobustnessStudy:
    """The cross-period synthesis of Section IV."""

    reports: List[PeriodReport]

    @classmethod
    def run(
        cls,
        periods: Sequence[PeriodSpec] = PERIODS,
        scale: float = DEFAULT_SCALE,
        seed: int = 0,
    ) -> "RobustnessStudy":
        return cls(
            reports=[
                run_period(spec, scale=scale, seed=seed + index * 101)
                for index, spec in enumerate(periods)
            ]
        )

    def validators_seen_total(self) -> int:
        """Distinct validators across all periods (the paper counts 70)."""
        names: Set[str] = set()
        for report in self.reports:
            names.update(obs.name for obs in report.observations)
        return len(names)

    def persistent_active(self, threshold: float = 0.5) -> List[str]:
        """Validators active in *every* period (the paper finds 9)."""
        sets = [set(report.active_validators(threshold)) for report in self.reports]
        if not sets:
            return []
        common = set.intersection(*sets)
        return sorted(common)

    def active_counts(self) -> List[Tuple[str, int, int]]:
        """Per period: (key, active non-Ripple validators, observed)."""
        out = []
        for report in self.reports:
            active = [
                name
                for name in report.active_validators()
                if not report.observation(name).is_ripple_labs
            ]
            out.append((report.period.key, len(active), report.period.observed_count()))
        return out

    def takeover_exposure(self, period_key: str) -> Dict[str, float]:
        """How concentrated validation power is in one period.

        Returns the fraction of all *valid* page signatures contributed by
        the top 1, 3, and 5 validators — the DoS/takeover concern of the
        paper ('a malicious party hijacking the majority of these
        validators could endanger the whole Ripple system').
        """
        report = next(r for r in self.reports if r.period.key == period_key)
        valid_counts = sorted(
            (obs.valid_pages for obs in report.observations), reverse=True
        )
        total = sum(valid_counts) or 1
        return {
            "top1": sum(valid_counts[:1]) / total,
            "top3": sum(valid_counts[:3]) / total,
            "top5": sum(valid_counts[:5]) / total,
            "top9": sum(valid_counts[:9]) / total,
        }
