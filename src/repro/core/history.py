"""Financial-history profiling of a de-anonymized account.

Once a single payment reveals Bob's sender address, "anyone ... can easily
get complete and unlimited access to our balance, our previous and future
payments, our monthly income, as well as critical information about the
places where we shop and the people we trust" (paper abstract).  This
module computes exactly that dossier from the public data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.dataset import TransactionDataset
from repro.errors import AnalysisError
from repro.ledger.accounts import AccountID
from repro.ledger.currency import Currency, eur_value
from repro.ledger.state import LedgerState

SECONDS_PER_MONTH = 30 * 86400


@dataclass
class FinancialProfile:
    """The full dossier on one account."""

    account: AccountID
    payments_sent: int = 0
    payments_received: int = 0
    total_spent_eur: float = 0.0
    total_received_eur: float = 0.0
    #: month bucket (Ripple-epoch month index) -> EUR received that month.
    monthly_income_eur: Dict[int, float] = field(default_factory=dict)
    monthly_spending_eur: Dict[int, float] = field(default_factory=dict)
    #: destinations this account pays, by payment count ("where they shop").
    top_merchants: List[Tuple[AccountID, int]] = field(default_factory=list)
    #: counterparties that pay this account.
    top_payers: List[Tuple[AccountID, int]] = field(default_factory=list)
    #: trust lines declared by the account ("the people we trust").
    trusted_parties: List[Tuple[AccountID, str, float]] = field(default_factory=list)
    #: current per-currency net IOU balances plus XRP.
    balances: Dict[str, float] = field(default_factory=dict)
    first_seen: Optional[int] = None
    last_seen: Optional[int] = None

    @property
    def average_monthly_income_eur(self) -> float:
        if not self.monthly_income_eur:
            return 0.0
        return float(np.mean(list(self.monthly_income_eur.values())))

    @property
    def average_monthly_spending_eur(self) -> float:
        if not self.monthly_spending_eur:
            return 0.0
        return float(np.mean(list(self.monthly_spending_eur.values())))


def _eur(amount: float, code: str) -> float:
    return amount * eur_value(Currency(code))


def profile_account(
    account: AccountID,
    dataset: TransactionDataset,
    state: Optional[LedgerState] = None,
    top_k: int = 10,
) -> FinancialProfile:
    """Build the complete financial profile of ``account``.

    ``state`` (when given) adds live balances and declared trust lines —
    information the public ledger exposes to anyone.
    """
    profile = FinancialProfile(account=account)
    account_id = dataset.account_id_of(account)
    if account_id is None and state is None:
        raise AnalysisError(f"account {account.short()} unknown to the dataset")

    if account_id is not None:
        sent_mask = dataset.sender_ids == account_id
        received_mask = dataset.destination_ids == account_id
        profile.payments_sent = int(sent_mask.sum())
        profile.payments_received = int(received_mask.sum())

        merchants: Dict[int, int] = {}
        for row in np.flatnonzero(sent_mask):
            timestamp = int(dataset.timestamps[row])
            month = timestamp // SECONDS_PER_MONTH
            value = _eur(
                float(dataset.amounts[row]), dataset.currency_code(int(dataset.currency_ids[row]))
            )
            profile.total_spent_eur += value
            profile.monthly_spending_eur[month] = (
                profile.monthly_spending_eur.get(month, 0.0) + value
            )
            destination = int(dataset.destination_ids[row])
            merchants[destination] = merchants.get(destination, 0) + 1
            profile.first_seen = (
                timestamp if profile.first_seen is None else min(profile.first_seen, timestamp)
            )
            profile.last_seen = (
                timestamp if profile.last_seen is None else max(profile.last_seen, timestamp)
            )

        payers: Dict[int, int] = {}
        for row in np.flatnonzero(received_mask):
            timestamp = int(dataset.timestamps[row])
            month = timestamp // SECONDS_PER_MONTH
            value = _eur(
                float(dataset.amounts[row]), dataset.currency_code(int(dataset.currency_ids[row]))
            )
            profile.total_received_eur += value
            profile.monthly_income_eur[month] = (
                profile.monthly_income_eur.get(month, 0.0) + value
            )
            sender = int(dataset.sender_ids[row])
            payers[sender] = payers.get(sender, 0) + 1

        profile.top_merchants = [
            (dataset.accounts[idx], count)
            for idx, count in sorted(merchants.items(), key=lambda kv: -kv[1])[:top_k]
        ]
        profile.top_payers = [
            (dataset.accounts[idx], count)
            for idx, count in sorted(payers.items(), key=lambda kv: -kv[1])[:top_k]
        ]

    if state is not None and state.has_account(account):
        profile.balances["XRP"] = state.xrp_balance(account) / 10 ** 6
        currencies = set()
        for line in state.lines_trusted_by(account):
            currencies.add(line.currency)
            profile.trusted_parties.append(
                (line.trustee, line.currency.code, line.limit.to_float())
            )
        for line in state.lines_trusting(account):
            currencies.add(line.currency)
        for currency in currencies:
            profile.balances[currency.code] = state.iou_balance(
                account, currency
            ).to_float()

    return profile


def net_worth_eur(profile: FinancialProfile) -> float:
    """Aggregate the profile's balances into EUR (as Fig. 7(c) does)."""
    return sum(_eur(value, code) for code, value in profile.balances.items())
