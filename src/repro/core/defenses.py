"""Countermeasures against payment de-anonymization, and their price.

The paper closes Section V noting that the Bitcoin fix — one wallet per
transaction — "is difficult to achieve in Ripple due to its underlying
trust backbone".  This module implements and evaluates the candidate
defenses quantitatively:

* **amount padding** — senders round amounts up to coarse price points, so
  the amount feature carries less information;
* **settlement batching** — the ledger publishes payments in settlement
  windows (timestamps quantized to N minutes), blunting the timestamp,
  the paper's most informative feature;
* **per-payment wallets** — every payment originates from a fresh
  pseudonym; the de-anonymization still *matches* the payment, but the
  matched sender links to nothing else.  The cost is what the paper
  predicts: each fresh wallet must be activated with XRP and must open
  trust lines before it can pay.

Each defense maps a dataset to a transformed dataset; ``evaluate_defense``
reports the IG before/after plus the defense's cost metrics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.dataset import TransactionDataset
from repro.core.deanonymizer import Deanonymizer
from repro.core.resolution import FIGURE3_FEATURE_LISTS, FeatureList
from repro.errors import AnalysisError
from repro.ledger.accounts import AccountID


def _clone_with(
    dataset: TransactionDataset,
    timestamps: Optional[np.ndarray] = None,
    amounts: Optional[np.ndarray] = None,
    sender_ids: Optional[np.ndarray] = None,
    accounts: Optional[list] = None,
) -> TransactionDataset:
    return TransactionDataset(
        accounts=accounts if accounts is not None else dataset.accounts,
        currencies=dataset.currencies,
        timestamps=timestamps if timestamps is not None else dataset.timestamps,
        sender_ids=sender_ids if sender_ids is not None else dataset.sender_ids,
        destination_ids=dataset.destination_ids,
        currency_ids=dataset.currency_ids,
        amounts=amounts if amounts is not None else dataset.amounts,
        intermediate_hops=dataset.intermediate_hops,
        parallel_paths=dataset.parallel_paths,
        is_xrp_direct=dataset.is_xrp_direct,
        cross_currency=dataset.cross_currency,
        kind_codes=dataset.kind_codes,
        kind_vocab=dataset.kind_vocab,
    )


@dataclass
class DefenseReport:
    """IG impact and cost of one defense."""

    name: str
    ig_before: Dict[str, float]
    ig_after: Dict[str, float]
    #: defense-specific cost metrics (overpayment, latency, wallets, ...).
    costs: Dict[str, float] = field(default_factory=dict)

    def reduction(self, label: str) -> float:
        """Absolute IG reduction (percentage points) for a feature list."""
        return self.ig_before[label] - self.ig_after[label]


def amount_padding(dataset: TransactionDataset, decades: float = 0.5) -> TransactionDataset:
    """Round every amount *up* to a coarse grid (half-decade by default).

    Rounding up (never down) keeps payments sufficient — the receiver gets
    at least the price — so the cost is overpayment.
    """
    if decades <= 0:
        raise AnalysisError("padding grid must be positive")
    logs = np.log10(np.maximum(dataset.amounts, 1e-9))
    padded = 10.0 ** (np.ceil(logs / decades) * decades)
    return _clone_with(dataset, amounts=np.round(padded, 6))


def settlement_batching(dataset: TransactionDataset, window_seconds: int = 900) -> TransactionDataset:
    """Publish payments only at settlement-window boundaries.

    All payments inside a window share the window's closing timestamp, so
    second-level timing — the paper's strongest feature — disappears.
    """
    if window_seconds <= 0:
        raise AnalysisError("settlement window must be positive")
    batched = (dataset.timestamps // window_seconds + 1) * window_seconds
    return _clone_with(dataset, timestamps=batched)


def per_payment_wallets(dataset: TransactionDataset) -> TransactionDataset:
    """Replace every payment's sender with a fresh pseudonym.

    The fingerprint still matches the payment, but each matched "sender"
    has exactly one payment — identification reveals a throwaway identity
    with no history.
    """
    accounts = list(dataset.accounts)
    fresh_ids = np.empty(len(dataset), dtype=np.int64)
    for row in range(len(dataset)):
        seed = f"fresh-wallet-{row}".encode()
        fresh = AccountID(hashlib.sha256(seed).digest()[:20])
        fresh_ids[row] = len(accounts)
        accounts.append(fresh)
    return _clone_with(dataset, sender_ids=fresh_ids, accounts=accounts)


def _history_exposure(dataset: TransactionDataset, feature_list: FeatureList) -> float:
    """Average number of *other* payments an identified sender leaks.

    This is the quantity the user actually cares about: IG says "the
    payment is matched"; exposure says "and here is how much more of your
    life comes with it".
    """
    deanonymizer = Deanonymizer(dataset)
    from repro.core.fingerprint import unique_fingerprint_mask

    mask = unique_fingerprint_mask(deanonymizer._fingerprints(feature_list))
    if not mask.any():
        return 0.0
    counts = np.bincount(dataset.sender_ids, minlength=len(dataset.accounts))
    exposed = counts[dataset.sender_ids[mask]] - 1
    return float(exposed.mean())


def evaluate_defense(
    dataset: TransactionDataset,
    name: str,
    transform: Callable[[TransactionDataset], TransactionDataset],
    feature_lists: Sequence[FeatureList] = FIGURE3_FEATURE_LISTS[:1],
) -> DefenseReport:
    """Measure a defense: IG before vs. after, plus cost metrics."""
    before = Deanonymizer(dataset)
    transformed = transform(dataset)
    after = Deanonymizer(transformed)

    ig_before = {}
    ig_after = {}
    for feature_list in feature_lists:
        label = feature_list.label()
        ig_before[label] = before.information_gain(feature_list).percent
        ig_after[label] = after.information_gain(feature_list).percent

    costs: Dict[str, float] = {}
    if not np.array_equal(transformed.amounts, dataset.amounts):
        overpay = (transformed.amounts - dataset.amounts) / np.maximum(
            dataset.amounts, 1e-9
        )
        costs["mean_overpayment_fraction"] = float(np.mean(overpay))
    if not np.array_equal(transformed.timestamps, dataset.timestamps):
        delay = transformed.timestamps - dataset.timestamps
        costs["mean_settlement_delay_seconds"] = float(np.mean(delay))
    if not np.array_equal(transformed.sender_ids, dataset.sender_ids):
        costs["fresh_wallets_needed"] = float(len(dataset))
        # Each fresh wallet must open at least one trust line (and be
        # activated with XRP) before it can send an IOU payment — the
        # bootstrapping cost the paper predicts makes this impractical.
        iou_rows = ~dataset.is_xrp_direct
        costs["trust_lines_to_bootstrap"] = float(iou_rows.sum())
        costs["history_exposure_after"] = _history_exposure(
            transformed, feature_lists[0]
        )
        costs["history_exposure_before"] = _history_exposure(
            dataset, feature_lists[0]
        )
    return DefenseReport(name=name, ig_before=ig_before, ig_after=ig_after, costs=costs)


def standard_defense_suite(
    dataset: TransactionDataset,
    feature_lists: Sequence[FeatureList] = FIGURE3_FEATURE_LISTS[:1],
) -> List[DefenseReport]:
    """Evaluate the three canonical defenses on one dataset."""
    return [
        evaluate_defense(dataset, "amount-padding", amount_padding, feature_lists),
        evaluate_defense(
            dataset, "settlement-batching", settlement_batching, feature_lists
        ),
        evaluate_defense(
            dataset, "per-payment-wallets", per_payment_wallets, feature_lists
        ),
    ]
