"""repro — a full reproduction of "Consensus Robustness and Transaction
De-Anonymization in the Ripple Currency Exchange System" (ICDCS 2017).

Subpackages
-----------

``repro.ledger``     distributed-ledger data model (accounts, amounts,
                     trust lines, offers, transactions, pages, signatures)
``repro.payments``   credit-network payment engine (path finding, order
                     books, bridging, atomic execution)
``repro.consensus``  the Ripple consensus protocol (RPCA) simulator
``repro.stream``     the validation stream and the three collection periods
``repro.synthetic``  the calibrated synthetic three-year Ripple economy
``repro.analysis``   ledger analytics (Figs. 4-7, Table II)
``repro.core``       the paper's contributions: transaction
                     de-anonymization (Table I, Fig. 3) and consensus
                     robustness (Fig. 2)

Quickstart
----------

>>> from repro.synthetic import small_config, generate_history
>>> from repro.analysis import TransactionDataset
>>> from repro.core import Deanonymizer
>>> history = generate_history(small_config())
>>> dataset = TransactionDataset.from_records(history.records)
>>> figure3 = Deanonymizer(dataset).figure3()
"""

from repro.errors import ReproError
from repro.node import ClosedLedger, RetryPolicy, RippledNode, default_validators

__version__ = "1.0.0"

__all__ = [
    "ClosedLedger",
    "ReproError",
    "RetryPolicy",
    "RippledNode",
    "default_validators",
    "__version__",
]
