"""Structured span tracing with deterministic ordering.

A *span* is one named, attributed, possibly-nested region of a run::

    from repro.obs.trace import span

    with span("fig3.compute", kind="phase", artifact="fig3"):
        ...

Spans are recorded in **start order** with monotonically increasing
sequence numbers, so a deterministic computation yields a deterministic
span sequence.  Timing is recorded on every span — it is what makes a
trace useful — but it is segregated into the ``VOLATILE_KEYS`` fields so
golden comparisons can strip it: :meth:`Tracer.lines` with
``strip_timing=True`` is byte-stable across runs of the same
computation.  ``wall_ts`` (wall clock at span start) is a pure transport
annotation for humans correlating traces with logs; ``start_s`` and
``duration_s`` come from the monotonic clock, offset from the tracer's
origin, so the deterministic view never depends on the wall clock.

Span *kinds* split the determinism contract:

* ``"phase"`` — logical lifecycle points emitted by parent-side
  orchestration code (the CLI, the artifact registry, ``dataset_for``).
  Phase spans are **execution-strategy independent**: a serial run and a
  ``--jobs 4`` run of the same artifact produce the identical
  :meth:`Tracer.rollup`.  The run manifest records this rollup.
* ``"detail"`` — everything else: engine internals, per-shard worker
  spans, retries.  Complete in the trace file, excluded from the
  deterministic rollup because they legitimately differ by strategy.

Worker processes carry their own tracer; the parallel engine ships each
worker's :meth:`Tracer.snapshot` back with its shard partial and the
parent :meth:`Tracer.absorb`\\ s them *in shard order* after the pool
drains — so a ``--jobs N`` trace is complete and deterministically
ordered even though shards finish in arbitrary order.

Disabled tracing costs one attribute check and returns a shared no-op
context manager — nothing is allocated, nothing recorded.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

#: Span fields that are clock dependent and excluded from golden hashes.
VOLATILE_KEYS = ("wall_ts", "start_s", "duration_s")


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: Shared no-op span, for sites that pick between a real span and none.
NULL_SPAN = _NULL_SPAN


class _SpanContext:
    """Context manager for one live span; records on enter, seals on exit."""

    __slots__ = ("_tracer", "_record", "_t0")

    def __init__(self, tracer: "Tracer", record: Dict[str, Any]):
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> Dict[str, Any]:
        self._t0 = time.perf_counter()
        return self._record

    def __exit__(self, *exc: object) -> bool:
        self._record["duration_s"] = time.perf_counter() - self._t0
        stack = self._tracer._stack
        if stack and stack[-1] == self._record["seq"]:
            stack.pop()
        return False


class Tracer:
    """Collects spans for one process; see the module docstring."""

    def __init__(self, enabled: bool = False, verbose: bool = False):
        self.enabled = enabled
        #: When set, hot-path sites (per-payment submits, per-round
        #: closes) emit spans too; off by default to keep traces small.
        self.verbose = verbose
        self.spans: List[Dict[str, Any]] = []
        self._stack: List[int] = []
        self._next_seq = 0
        #: Monotonic origin for ``start_s`` offsets.
        self._origin = time.perf_counter()

    # Control ----------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._next_seq = 0
        self._origin = time.perf_counter()

    # Recording --------------------------------------------------------------------

    def span(self, name: str, kind: str = "detail", **attrs: Any):
        """Open a span; returns a context manager (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        seq = self._next_seq
        self._next_seq += 1
        record: Dict[str, Any] = {
            "seq": seq,
            "parent": self._stack[-1] if self._stack else None,
            "name": name,
            "kind": kind,
            "attrs": attrs,
            # Transport annotation only — never part of any golden view.
            "wall_ts": time.time(),
            # Monotonic offset from the tracer origin: orders spans on a
            # timeline without importing wall-clock nondeterminism.
            "start_s": time.perf_counter() - self._origin,
            "duration_s": None,
        }
        self.spans.append(record)
        self._stack.append(seq)
        return _SpanContext(self, record)

    # Merging ----------------------------------------------------------------------

    def snapshot(self) -> List[Dict[str, Any]]:
        """This process's spans, for shipping to an absorbing parent."""
        return [dict(record) for record in self.spans]

    def absorb(self, snapshot: Optional[List[Dict[str, Any]]]) -> None:
        """Append another process's spans, re-sequenced into this tracer.

        Relative order and nesting inside the snapshot are preserved;
        snapshot roots are re-parented under the currently open span (or
        become roots).  Call in a deterministic order — the parallel
        engine absorbs buffered worker snapshots in shard-index order —
        and the combined trace ordering is deterministic.
        """
        if not self.enabled or not snapshot:
            return
        base_parent = self._stack[-1] if self._stack else None
        remap: Dict[int, int] = {}
        for record in snapshot:
            if not isinstance(record, dict) or "name" not in record:
                continue
            seq = self._next_seq
            self._next_seq += 1
            remap[record.get("seq")] = seq
            parent = record.get("parent")
            self.spans.append(
                {
                    "seq": seq,
                    "parent": remap.get(parent, base_parent),
                    "name": record["name"],
                    "kind": record.get("kind", "detail"),
                    "attrs": dict(record.get("attrs", {})),
                    "wall_ts": record.get("wall_ts"),
                    # Worker offsets are from the *worker's* origin; they
                    # stay meaningful per process and volatile everywhere.
                    "start_s": record.get("start_s"),
                    "duration_s": record.get("duration_s"),
                }
            )

    # Reporting --------------------------------------------------------------------

    def rollup(self, kind: str = "phase") -> Dict[str, int]:
        """Span count per name for one kind, sorted by name.

        The ``"phase"`` rollup is the deterministic digest the run
        manifest records: identical for serial and ``--jobs N`` runs of
        the same artifact.
        """
        counts: Dict[str, int] = {}
        for record in self.spans:
            if record["kind"] == kind:
                counts[record["name"]] = counts.get(record["name"], 0) + 1
        return dict(sorted(counts.items()))

    def phase_seconds(self) -> Dict[str, float]:
        """Total wall seconds per phase-span name (informational only)."""
        seconds: Dict[str, float] = {}
        for record in self.spans:
            if record["kind"] == "phase" and record["duration_s"] is not None:
                seconds[record["name"]] = (
                    seconds.get(record["name"], 0.0) + record["duration_s"]
                )
        return {name: round(value, 6) for name, value in sorted(seconds.items())}

    def lines(self, strip_timing: bool = False) -> List[str]:
        """One sorted-keys JSON line per span, in deterministic order.

        With ``strip_timing`` the volatile wall-clock fields are dropped —
        this is the form golden tests hash.
        """
        out = []
        for record in self.spans:
            if strip_timing:
                record = {
                    key: value for key, value in record.items()
                    if key not in VOLATILE_KEYS
                }
            out.append(json.dumps(record, sort_keys=True))
        return out

    def write(self, path: str) -> int:
        """Atomically write the JSONL trace (with sha256 sidecar).

        Returns the number of spans written.
        """
        from repro.durability.atomic import atomic_write

        with atomic_write(
            path, manifest=True, records=len(self.spans), fmt="repro-trace/1"
        ) as handle:
            for line in self.lines():
                handle.write(line + "\n")
        return len(self.spans)


#: Process-wide tracer; ``REPRO_TRACE=1`` enables collection at import
#: (the CLI's ``--trace`` flag is the usual entry point) and
#: ``REPRO_TRACE_VERBOSE=1`` additionally turns on hot-path spans.
TRACER = Tracer(
    enabled=os.environ.get("REPRO_TRACE", "") not in ("", "0"),
    verbose=os.environ.get("REPRO_TRACE_VERBOSE", "") not in ("", "0"),
)


def span(name: str, kind: str = "detail", **attrs: Any):
    """Open a span on the process-wide :data:`TRACER`."""
    return TRACER.span(name, kind=kind, **attrs)
