"""repro.obs — the observability layer: tracing, metrics, run manifests.

One subsystem answers "what did this run actually do?":

* :mod:`repro.obs.trace` — structured span tracing
  (``span("fig3.compute", kind="phase")``) with deterministic ordering;
  serial and ``--jobs N`` runs of the same artifact produce identical
  phase-span rollups.
* :mod:`repro.obs.metrics` — the unified :data:`METRICS` registry
  (counters, gauges, timers, histograms) that superseded ``repro.perf``,
  the chaos/node counter mirrors, and the durability ingest tallies;
  exposed as Prometheus text or JSON via ``python -m repro metrics``.
* :mod:`repro.obs.manifest` — run manifests: every CLI artifact run with
  an output emits ``<out>.manifest.json`` (atomic write + sha256
  sidecar) recording the invocation, shard-plan fingerprint, span
  rollups, ingest/degradation events, and output hashes, validated
  against the checked-in ``run_manifest.schema.json``.

Everything is off by default and costs one attribute check per
instrumented site when off; artifact outputs are byte-identical with
observability on or off.

Library modules should import the submodules directly
(``from repro.obs.metrics import METRICS``) rather than this package, to
stay import-cycle safe.
"""

from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import TRACER, Tracer, span
from repro.obs.manifest import (
    RUN,
    RUN_MANIFEST_VERSION,
    RunContext,
    build_manifest,
    deterministic_view,
    load_schema,
    manifest_destination,
    output_entry,
    validate_manifest,
    write_run_manifest,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "RUN",
    "RUN_MANIFEST_VERSION",
    "RunContext",
    "TRACER",
    "Tracer",
    "build_manifest",
    "deterministic_view",
    "load_schema",
    "manifest_destination",
    "output_entry",
    "span",
    "validate_manifest",
    "write_run_manifest",
]
