"""Run manifests: what a CLI artifact run actually did, sealed to disk.

Every artifact run that produces a file (``--out``) or a trace
(``--trace``) emits ``<out>.manifest.json`` — written atomically with a
``.sha256`` sidecar via :mod:`repro.durability` — recording:

* the **invocation**: seed, scale, payments, archive, jobs, resume;
* the **shard plan fingerprint** when the run sharded
  (:func:`repro.durability.journal.plan_fingerprint`);
* the deterministic **phase-span rollup** and (informationally) wall
  seconds per phase;
* **ingest/quarantine stats** and **degradation events** (shard
  resubmits, serial fallbacks, watchdog timeouts, degraded/failed
  closes, resumed shards);
* the **metrics snapshot** when metrics were enabled;
* sha256 + byte size of every **output artifact**, plus the hash of the
  rendered text itself.

Two views of a manifest matter:

* the full payload answers "what did this run do?" after the fact;
* :func:`deterministic_view` strips everything wall-clock- or
  strategy-dependent (timing, metrics, the plan, worker counts) down to
  the fields that must be **identical** for a serial and a ``--jobs N``
  run of the same artifact — the form CI diffs.

The schema ships with the package (``run_manifest.schema.json``) and
:func:`validate_manifest` checks a payload against it with a small
self-contained validator (no third-party jsonschema dependency), so CI
and tests can reject drift between writer and schema.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional

#: Manifest schema version; bump when the payload layout changes.
RUN_MANIFEST_VERSION = 1

#: Request-fingerprint schema version; bump when the fingerprint
#: document layout changes (old cache entries then miss, never collide).
FINGERPRINT_SCHEMA_VERSION = 1

#: Manifest sidecar suffix: ``fig3.txt`` -> ``fig3.txt.manifest.json``.
RUN_MANIFEST_SUFFIX = ".manifest.json"

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "run_manifest.schema.json"
)


class RunContext:
    """Deterministic annotations accumulated during one artifact run.

    Unlike the metrics registry this is *always on* — the recording sites
    are coarse (once per run, or on failure/degradation paths), so the
    cost is a handful of dict writes.  The CLI resets it before each
    dispatch and the manifest builder drains it after.
    """

    def __init__(self) -> None:
        self.annotations: Dict[str, Any] = {}
        self.events: Dict[str, int] = {}

    def reset(self) -> None:
        self.annotations.clear()
        self.events.clear()

    def note(self, **kwargs: Any) -> None:
        """Attach run-level facts (plan fingerprint, ingest stats, …)."""
        self.annotations.update(kwargs)

    def count(self, name: str, delta: int = 1) -> None:
        """Tally one degradation/recovery event."""
        self.events[name] = self.events.get(name, 0) + delta


#: Process-wide run context.
RUN = RunContext()


def manifest_destination(base_path: str) -> str:
    return f"{base_path}{RUN_MANIFEST_SUFFIX}"


def file_sha256(path: str) -> tuple:
    """(sha256 hex digest, byte size) of the file at ``path``."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            digest.update(chunk)
            size += len(chunk)
    return digest.hexdigest(), size


def output_entry(path: str, kind: str = "artifact", volatile: bool = False) -> dict:
    """Describe one output file: path, sha256, byte size.

    ``volatile`` marks outputs whose bytes legitimately differ between
    equivalent runs (e.g. the trace file, which embeds wall-clock
    timestamps); :func:`deterministic_view` skips them.
    """
    sha256, size = file_sha256(path)
    entry = {
        "path": os.path.abspath(path),
        "kind": kind,
        "sha256": sha256,
        "bytes": size,
    }
    if volatile:
        entry["volatile"] = True
    return entry


# Request fingerprints -------------------------------------------------------


def input_hashes(request: Any) -> List[str]:
    """Content hashes of every input archive a request reads.

    The fingerprint keys on input *content*, not location: the same
    archive reached through two paths is the same input, and a changed
    archive at the same path is a different one.  A named archive that
    does not exist fails here — **before** any computation starts —
    with the same wording the ingest layer uses.
    """
    archive = getattr(request, "archive", None)
    if not archive:
        return []
    if not os.path.exists(archive):
        from repro.errors import AnalysisError

        raise AnalysisError(f"archive not found: {archive}")
    sha256, _size = file_sha256(archive)
    return [f"sha256:{sha256}"]


def request_fingerprint(
    request: Any, inputs: Optional[List[str]] = None
) -> str:
    """The deterministic identity of one artifact request, computed pre-run.

    A sha256 over the canonical fingerprint document: schema version,
    artifact name, the request's :meth:`canonical_invocation` (semantic
    parameters only — execution strategy excluded, defaults
    normalized), and the content hashes of every input archive.  Two
    requests that would render identical bytes by the repo's
    serial/parallel/resume equivalence contract produce the identical
    fingerprint; the serve cache and single-flight table key on it.
    """
    if inputs is None:
        inputs = input_hashes(request)
    document = {
        "fingerprint_schema": FINGERPRINT_SCHEMA_VERSION,
        "artifact": request.name,
        "invocation": request.canonical_invocation(),
        "inputs": list(inputs),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_manifest(
    artifact_name: str,
    args: Any,
    rendered_text: str,
    outputs: List[dict],
    started_at: float,
    duration_seconds: float,
    tracer: Optional[Any] = None,
    metrics: Optional[Any] = None,
    result: Optional[Any] = None,
    fingerprint: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble the manifest payload for one finished artifact run.

    ``result`` is the run's :class:`~repro.api.registry.ArtifactResult`;
    its ``metrics``/``manifest`` dicts land in ``artifact_metrics`` /
    ``artifact_extra``.  Both stay out of :func:`deterministic_view`:
    a sharded merge returns a bare payload (empty metrics) where the
    serial compute fills them, so they are strategy-dependent.
    ``fingerprint`` is the pre-run :func:`request_fingerprint` — the
    same value the serve cache keys on, so a manifest names the cache
    entry its run would hit.
    """
    from repro.obs.metrics import METRICS
    from repro.obs.trace import TRACER

    tracer = tracer if tracer is not None else TRACER
    metrics = metrics if metrics is not None else METRICS
    annotations = dict(RUN.annotations)
    plan = None
    if annotations.get("plan_fingerprint"):
        plan = {
            "fingerprint": annotations["plan_fingerprint"],
            "shards": int(annotations.get("shards", 0)),
            "jobs": int(annotations.get("jobs", 0)),
        }
    payload: Dict[str, Any] = {
        "manifest_version": RUN_MANIFEST_VERSION,
        "artifact": artifact_name,
        "fingerprint": fingerprint,
        "invocation": {
            "seed": getattr(args, "seed", None),
            "scale": getattr(args, "scale", None),
            "payments": getattr(args, "payments", None),
            "archive": getattr(args, "archive", None),
            "jobs": getattr(args, "jobs", None),
            "resume": bool(getattr(args, "resume", False)),
            "quarantine": bool(getattr(args, "quarantine", False)),
        },
        "plan": plan,
        "spans": tracer.rollup("phase") if tracer.enabled else {},
        "phase_seconds": tracer.phase_seconds() if tracer.enabled else {},
        "ingest": annotations.get("ingest"),
        "events": dict(sorted(RUN.events.items())),
        "metrics": metrics.snapshot() if metrics.enabled else None,
        "artifact_metrics": dict(getattr(result, "metrics", None) or {}) or None,
        "artifact_extra": dict(getattr(result, "manifest", None) or {}) or None,
        "rendered_sha256": hashlib.sha256(
            rendered_text.encode("utf-8")
        ).hexdigest(),
        "outputs": outputs,
        "timing": {
            "started_at": started_at,
            "duration_seconds": round(duration_seconds, 6),
        },
    }
    return payload


def write_run_manifest(path: str, payload: Dict[str, Any]) -> None:
    """Atomically write the manifest JSON plus its sha256 sidecar."""
    from repro.durability.atomic import atomic_write

    with atomic_write(path, manifest=True, fmt="repro-run-manifest/1") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def deterministic_view(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The strategy-independent core of a manifest.

    Two runs of the same artifact with the same seed/scale/input must
    agree on this view no matter how they executed — serial, ``--jobs 4``,
    resumed — and no matter when.  Strips timing, metrics, the shard
    plan, worker counts, volatile outputs, and path locations (only
    content hashes remain).
    """
    invocation = {
        key: value
        for key, value in payload.get("invocation", {}).items()
        if key not in ("jobs", "resume")
    }
    return {
        "artifact": payload.get("artifact"),
        "fingerprint": payload.get("fingerprint"),
        "invocation": invocation,
        "spans": payload.get("spans"),
        "ingest": payload.get("ingest"),
        "rendered_sha256": payload.get("rendered_sha256"),
        "output_sha256s": sorted(
            entry["sha256"]
            for entry in payload.get("outputs", [])
            if not entry.get("volatile")
        ),
    }


# Schema validation ----------------------------------------------------------


def load_schema() -> Dict[str, Any]:
    with open(SCHEMA_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return (
            isinstance(value, (int, float)) and not isinstance(value, bool)
        )
    python_type = _TYPES.get(expected)
    return python_type is not None and isinstance(value, python_type)


def _validate(value: Any, schema: Dict[str, Any], path: str, errors: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(value, one) for one in allowed):
            errors.append(
                f"{path or '$'}: expected {'|'.join(allowed)}, "
                f"got {type(value).__name__}"
            )
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path or '$'}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path or '$'}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path or '$'}: missing required key {key!r}")
        properties = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in properties:
                _validate(item, properties[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                _validate(item, extra, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path or '$'}: unexpected key {key!r}")
    if isinstance(value, list) and isinstance(schema.get("items"), dict):
        for index, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{index}]", errors)


def validate_manifest(
    payload: Any, schema: Optional[Dict[str, Any]] = None
) -> List[str]:
    """Errors of ``payload`` against the run-manifest schema ([] = valid).

    The validator supports the subset of JSON Schema the checked-in
    schema uses — type (scalar or union), required, properties,
    additionalProperties (bool or schema), items, enum, minimum — and is
    deliberately dependency-free.
    """
    schema = schema if schema is not None else load_schema()
    errors: List[str] = []
    _validate(payload, schema, "", errors)
    return errors
