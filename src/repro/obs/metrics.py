"""The unified metrics registry: counters, gauges, timers, histograms.

One process-wide :data:`METRICS` registry absorbs what used to be four
disjoint introspection surfaces — the ``repro.perf`` counter dict, the
chaos/node mirrors, the parallel per-shard timers, and the durability
ingest tallies.  The recording API is a superset of the old perf one
(``count``/``add_time``/``timer`` plus ``gauge``/``observe``), so every
instrumented site migrated without changing its shape; ``repro.perf``
survives only as a deprecation shim over this module.

Design constraints carried over from the perf registry:

* **disabled by default** — every method is a no-op behind one attribute
  check while ``enabled`` is False, so instrumentation never taxes the
  hot paths it observes;
* **absorbable** — :meth:`MetricsRegistry.absorb` merges a worker
  process's :meth:`~MetricsRegistry.snapshot` into the parent, keeping
  ``--jobs N`` reports shaped like serial ones.

New in this layer: a Prometheus-style text exposition
(:meth:`MetricsRegistry.to_prom`) and a machine-readable JSON one
(:meth:`MetricsRegistry.to_json`), surfaced by ``python -m repro metrics
--format prom|json``.

Enable with ``REPRO_PROFILE=1``/``REPRO_METRICS=1`` or the CLI's
``--profile`` flag; the CLI prints :meth:`MetricsRegistry.report` to
stderr when profiling was requested.
"""

from __future__ import annotations

import json
import os
import re
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List


def _format_value(value: float) -> str:
    """Deterministic numeric formatting for the text exposition."""
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str, suffix: str = "") -> str:
    """A metric name as Prometheus accepts it: ``repro_`` + [a-zA-Z0-9_:]."""
    return "repro_" + _INVALID_CHARS.sub("_", name) + suffix


class MetricsRegistry:
    """Accumulates named counters, gauges, wall timers, and histograms.

    Counters are plain integer sums; gauges hold the last value set;
    timers accumulate total seconds and call counts; histograms track
    count/sum/min/max of observed values.  All recording methods are
    no-ops while ``enabled`` is False.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        #: name -> [total_seconds, calls]
        self._timers: Dict[str, List[float]] = {}
        #: name -> [count, sum, min, max]
        self._histograms: Dict[str, List[float]] = {}

    # Control ----------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self._timers.clear()
        self._histograms.clear()

    # Recording --------------------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        slot = self._histograms.get(name)
        if slot is None:
            self._histograms[name] = [1, value, value, value]
        else:
            slot[0] += 1
            slot[1] += value
            slot[2] = min(slot[2], value)
            slot[3] = max(slot[3], value)

    def add_time(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        slot = self._timers.get(name)
        if slot is None:
            self._timers[name] = [seconds, 1]
        else:
            slot[0] += seconds
            slot[1] += 1

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block; free (single boolean check) when disabled."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def absorb(self, snapshot: Dict[str, object]) -> None:
        """Merge a :meth:`snapshot` from another process into this registry.

        The parallel engine ships each worker's snapshot back with its
        shard partial; absorbing them keeps ``--profile --jobs 4`` reports
        shaped like the serial ones.  Counter sums, timer totals/calls and
        histogram count/sum accumulate; histogram min/max widen; gauges
        take the absorbed value (last write wins).
        """
        if not self.enabled or not isinstance(snapshot, dict):
            return
        for name, delta in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(delta)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = float(value)
        for name, info in snapshot.get("timers", {}).items():
            slot = self._timers.get(name)
            if slot is None:
                slot = self._timers[name] = [0.0, 0]
            slot[0] += float(info["seconds"])
            slot[1] += int(info["calls"])
        for name, info in snapshot.get("histograms", {}).items():
            slot = self._histograms.get(name)
            if slot is None:
                self._histograms[name] = [
                    int(info["count"]), float(info["sum"]),
                    float(info["min"]), float(info["max"]),
                ]
            else:
                slot[0] += int(info["count"])
                slot[1] += float(info["sum"])
                slot[2] = min(slot[2], float(info["min"]))
                slot[3] = max(slot[3], float(info["max"]))

    # Reporting --------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Machine-readable dump of everything recorded so far."""
        snap: Dict[str, object] = {
            "counters": dict(self.counters),
            "timers": {
                name: {
                    "seconds": total,
                    "calls": int(calls),
                    "per_call": total / calls if calls else 0.0,
                }
                for name, (total, calls) in self._timers.items()
            },
        }
        if self.gauges:
            snap["gauges"] = dict(self.gauges)
        if self._histograms:
            snap["histograms"] = {
                name: {
                    "count": int(count), "sum": total,
                    "min": low, "max": high,
                }
                for name, (count, total, low, high) in self._histograms.items()
            }
        return snap

    def report(self) -> str:
        """Human-readable table, one line per metric."""
        lines = ["-- metrics report --"]
        for name in sorted(self._timers):
            total, calls = self._timers[name]
            per_call = total / calls if calls else 0.0
            lines.append(
                f"  {name:32s} {total:10.4f} s  {int(calls):>9d} calls"
                f"  {per_call * 1e6:12.2f} us/call"
            )
        for name in sorted(self.counters):
            lines.append(f"  {name:32s} {self.counters[name]:>12d}")
        for name in sorted(self.gauges):
            lines.append(f"  {name:32s} {self.gauges[name]:>12g}")
        for name in sorted(self._histograms):
            count, total, low, high = self._histograms[name]
            lines.append(
                f"  {name:32s} n={int(count)} sum={total:g} "
                f"min={low:g} max={high:g}"
            )
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)

    def to_json(self) -> str:
        """The snapshot as deterministic (sorted-keys) JSON."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def to_prom(self) -> str:
        """Prometheus text exposition of everything recorded.

        Counters become ``repro_<name>_total``; timers and histograms
        become summaries (``_count``/``_sum``, histograms additionally
        ``_min``/``_max`` gauges); gauges pass through.  Names are
        sanitized (``.`` and other invalid characters to ``_``) and
        emitted in sorted order, so the exposition is deterministic for a
        deterministic run.
        """
        lines: List[str] = []
        for name in sorted(self.counters):
            metric = prom_name(name, "_total")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(self.counters[name])}")
        for name in sorted(self.gauges):
            metric = prom_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(self.gauges[name])}")
        for name in sorted(self._timers):
            total, calls = self._timers[name]
            metric = prom_name(name, "_seconds")
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count {_format_value(int(calls))}")
            lines.append(f"{metric}_sum {_format_value(total)}")
        for name in sorted(self._histograms):
            count, total, low, high = self._histograms[name]
            metric = prom_name(name)
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count {_format_value(int(count))}")
            lines.append(f"{metric}_sum {_format_value(total)}")
            lines.append(f"{metric}_min {_format_value(low)}")
            lines.append(f"{metric}_max {_format_value(high)}")
        return "\n".join(lines) + ("\n" if lines else "")


#: Process-wide registry; honours ``REPRO_PROFILE``/``REPRO_METRICS`` at
#: import time (the former for continuity with the perf era).
METRICS = MetricsRegistry(
    enabled=any(
        os.environ.get(var, "") not in ("", "0")
        for var in ("REPRO_PROFILE", "REPRO_METRICS")
    )
)
