"""The durable, content-addressed result store behind ``repro serve``.

One cache entry per request fingerprint: the envelope core
(:meth:`repro.api.registry.ResultEnvelope.core`) as canonical JSON at
``<root>/<fp[:2]>/<fp>.json``, written through
:func:`repro.durability.atomic_write` with a ``.sha256`` sidecar.  The
durability layer's guarantees carry over wholesale:

* a ``kill -9`` mid-write leaves either no entry or a complete sealed
  entry — never a torn one; at worst a ``*.tmp.*`` sibling survives,
  which :meth:`ResultStore.sweep` (run at daemon startup) reclaims;
* every read verifies the sidecar hash; an entry whose bytes rotted on
  disk raises :class:`~repro.errors.IntegrityError` inside
  :meth:`ResultStore.get`, which **degrades to a miss**: the corrupt
  pair is deleted, a counter ticks, and the daemon recomputes.

The store never caches errors — only ``status == "ok"`` envelopes are
accepted by :meth:`put` — so a transient failure can't poison a
fingerprint forever.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, Iterator, Optional

from repro.durability.atomic import atomic_write, verify_manifest
from repro.errors import IntegrityError
from repro.obs.metrics import METRICS

#: Default cache root; ``--cache-dir`` / ``REPRO_SERVE_CACHE`` override.
DEFAULT_CACHE_DIR = ".repro-serve-cache"

CACHE_DIR_ENV = "REPRO_SERVE_CACHE"

ENTRY_FORMAT = "repro-serve-result/1"


def cache_root(override: Optional[str] = None) -> str:
    return override or os.environ.get(CACHE_DIR_ENV, "") or DEFAULT_CACHE_DIR


class ResultStore:
    """Fingerprint-keyed envelope cache with integrity-checked reads."""

    def __init__(self, root: Optional[str] = None):
        self.root = cache_root(root)

    def path_for(self, fingerprint: str) -> str:
        return os.path.join(
            self.root, fingerprint[:2], f"{fingerprint}.json"
        )

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached envelope core, or None (missing *or* corrupt).

        Corruption — bytes disagreeing with the sha256 sidecar, a
        missing sidecar, or unparseable JSON — is counted, the broken
        pair is removed, and the caller sees an ordinary miss: a rotted
        cache entry costs one recompute, never a wrong answer and never
        the request.
        """
        path = self.path_for(fingerprint)
        if not os.path.exists(path):
            return None
        try:
            verify_manifest(path, required=True)
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise IntegrityError(f"{path}: entry is not an object")
        except (IntegrityError, OSError, ValueError):
            METRICS.count("serve.store.corrupt")
            self.evict(fingerprint)
            return None
        return payload

    def put(self, fingerprint: str, envelope: Dict[str, Any]) -> None:
        """Seal one computed envelope core under its fingerprint."""
        if envelope.get("status") != "ok":
            return  # errors are never cached
        path = self.path_for(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with atomic_write(path, manifest=True, fmt=ENTRY_FORMAT) as handle:
            handle.write(
                json.dumps(envelope, sort_keys=True, indent=2) + "\n"
            )
        METRICS.count("serve.store.stored")

    def evict(self, fingerprint: str) -> None:
        path = self.path_for(fingerprint)
        for victim in (path, f"{path}.sha256"):
            try:
                os.remove(victim)
            except OSError:
                pass

    def sweep(self) -> int:
        """Remove stale ``*.tmp.*`` leftovers of killed writes (startup)."""
        swept = 0
        pattern = os.path.join(glob.escape(self.root), "**", "*.tmp.*")
        for stale in glob.glob(pattern, recursive=True):
            try:
                os.remove(stale)
                swept += 1
            except OSError:
                pass
        if swept:
            METRICS.count("serve.store.swept_temps", swept)
        return swept

    def fingerprints(self) -> Iterator[str]:
        pattern = os.path.join(glob.escape(self.root), "??", "*.json")
        for path in sorted(glob.glob(pattern)):
            yield os.path.basename(path)[: -len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())
