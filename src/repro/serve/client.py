"""A tiny blocking client for the serve daemon (tests, drills, scripts).

One call = one connection = one JSON line each way, mirroring the
daemon's protocol exactly::

    from repro.serve.client import ServeClient

    client = ServeClient(socket_path="/tmp/repro.sock")
    client.wait_ready()
    response = client.artifact("fig3", seed=7, payments=4000)
    assert response["status"] == "ok"
    print(response["rendered_text"])

The helper speaks both transports the daemon binds (Unix socket or
TCP), and exposes the control ops (:meth:`ping`, :meth:`stats`,
:meth:`shutdown`) the serve drill is built from.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from repro.errors import AnalysisError
from repro.serve.codec import ControlRequest, decode_response, encode_request


class ServeError(AnalysisError):
    """The daemon could not be reached or spoke garbage."""


class ServeClient:
    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 120.0,
    ):
        if not socket_path and not port:
            raise ServeError("client needs a socket path or a TCP port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        if self.socket_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return sock

    def call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, return the decoded response object."""
        try:
            with self._connect() as sock:
                sock.sendall(encode_request(payload))
                chunks = []
                while True:
                    chunk = sock.recv(1 << 16)
                    if not chunk:
                        break
                    chunks.append(chunk)
                    if chunk.endswith(b"\n"):
                        break
        except OSError as exc:
            raise ServeError(f"daemon unreachable: {exc}") from None
        line = b"".join(chunks).decode("utf-8", errors="replace").strip()
        if not line:
            raise ServeError("daemon closed the connection without a response")
        return decode_response(line)

    def artifact(self, name: str, **fields: Any) -> Dict[str, Any]:
        """Request one artifact; fields are ArtifactRequest fields/options."""
        payload = {"op": "artifact", "artifact": name}
        payload.update(fields)
        return self.call(payload)

    def control(self, request: ControlRequest) -> Dict[str, Any]:
        """Send one typed control operation (the op helpers build these)."""
        return self.call(request.to_dict())

    def ping(self) -> Dict[str, Any]:
        return self.control(ControlRequest("ping"))

    def stats(self, prefix: Optional[str] = None) -> Dict[str, Any]:
        """Daemon counters/gauges, optionally filtered to one prefix."""
        return self.control(ControlRequest("stats", {"prefix": prefix}))

    def shutdown(self) -> Dict[str, Any]:
        return self.control(ControlRequest("shutdown"))

    def live_status(self, state_dir: Optional[str] = None) -> Dict[str, Any]:
        """Read a live ingest pipeline's status through the daemon."""
        return self.control(
            ControlRequest("live_status", {"state_dir": state_dir})
        )

    def wait_ready(self, attempts: int = 100, delay: float = 0.1) -> None:
        """Block until the daemon answers a ping (startup races, drills)."""
        last: Optional[Exception] = None
        for _ in range(attempts):
            try:
                if self.ping().get("status") == "ok":
                    return
            except (ServeError, OSError) as exc:
                last = exc
            time.sleep(delay)
        raise ServeError(f"daemon never became ready: {last}")
