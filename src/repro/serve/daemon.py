"""The ``repro serve`` daemon: many tenants, one registry, one cache.

A long-running process that accepts concurrent artifact requests over a
Unix or TCP socket and serves each one through a fixed pipeline:

1. **decode** the JSON line into a typed
   :class:`~repro.api.request.ArtifactRequest` (:mod:`repro.serve.codec`);
2. **fingerprint** it *before* computing anything —
   :func:`repro.obs.manifest.request_fingerprint` over the canonical
   invocation plus input-archive content hashes;
3. **cache lookup** in the durable :class:`~repro.serve.store.ResultStore`
   — a hit returns the sealed envelope without touching the worker pool;
4. **single-flight** on a miss — concurrent identical requests collapse
   onto one computation (:mod:`repro.serve.singleflight`);
5. **compute** through the same :data:`repro.api.ARTIFACTS` registry the
   CLI uses — a request with ``jobs > 1`` schedules shards onto the
   persistent warm worker pool (:mod:`repro.parallel.pool`), which stays
   warm *across requests*;
6. **seal** the envelope core into the store and respond.

Request handling runs on a thread per connection
(``socketserver.ThreadingMixIn``); computations themselves fan out to
worker processes, so the GIL bounds only the serving overhead, not the
compute.  Every stage ticks a ``serve.*`` metrics counter and logs a
progress line, so ``{"op": "stats"}`` exposes hits/misses/computes for
drills and dashboards.
"""

from __future__ import annotations

import os
import socket
import socketserver
import stat
import sys
import threading
import time
from typing import Any, Dict, Optional, Tuple

import repro.chaos.cascade  # noqa: F401  (registers the 'cascade' artifact)
import repro.chaos.report  # noqa: F401  (registers chaos + fork_threshold)
from repro.api import artifact
from repro.api.registry import ResultEnvelope
from repro.api.request import ArtifactRequest
from repro.errors import AnalysisError
from repro.obs.manifest import file_sha256, request_fingerprint
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.serve.codec import (
    MAX_LINE_BYTES,
    CodecError,
    ControlRequest,
    decode_request,
    encode_response,
)
from repro.serve.singleflight import SingleFlight
from repro.serve.store import ResultStore


class ArtifactServer:
    """The request pipeline, independent of any transport.

    Owns the durable store and the single-flight table; the socket
    layer (:func:`make_server`) feeds it decoded lines and writes back
    whatever it returns.  Tests drive :meth:`handle_request` directly.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        store: Optional[ResultStore] = None,
        default_jobs: Optional[int] = None,
        ingest_state_dir: Optional[str] = None,
        log=None,
    ):
        self.store = store if store is not None else ResultStore(cache_dir)
        self.flights = SingleFlight()
        self.default_jobs = default_jobs
        self.ingest_state_dir = ingest_state_dir
        self._log = log if log is not None else sys.stderr
        self._active = 0
        self._active_lock = threading.Lock()
        self._idle = threading.Condition(self._active_lock)
        METRICS.enable()
        swept = self.store.sweep()
        if swept:
            self.log(f"swept {swept} stale temp file(s) from the store")

    def log(self, message: str) -> None:
        if self._log is not None:
            print(f"serve: {message}", file=self._log, flush=True)

    # Request pipeline --------------------------------------------------------

    def handle_request(self, request: ArtifactRequest) -> Dict[str, Any]:
        """One artifact request end to end; always returns an envelope dict."""
        METRICS.count("serve.requests")
        if self.default_jobs and request.jobs is None:
            request = request.replace(jobs=self.default_jobs)
        try:
            fingerprint = request_fingerprint(request)
        except AnalysisError as exc:
            METRICS.count("serve.errors")
            self.log(f"{request.name} rejected: {exc}")
            return ResultEnvelope.failure(
                request.name, None, str(exc)
            ).to_dict()
        cached = self._lookup(fingerprint)
        if cached is not None:
            METRICS.count("serve.cache.hits")
            self.log(f"{request.name} {fingerprint[:12]} hit")
            cached.cache = "hit"
            return cached.to_dict()
        METRICS.count("serve.cache.misses")
        try:
            core, shared = self.flights.do(
                fingerprint, lambda: self._compute(request, fingerprint)
            )
        except Exception as exc:  # an error is a response, not a crash
            METRICS.count("serve.errors")
            self.log(f"{request.name} {fingerprint[:12]} failed: {exc}")
            return ResultEnvelope.failure(
                request.name, fingerprint, str(exc)
            ).to_dict()
        if shared:
            METRICS.count("serve.singleflight.shared")
        envelope = ResultEnvelope.from_dict(core)
        envelope.cache = "miss"
        return envelope.to_dict()

    def _lookup(self, fingerprint: str) -> Optional[ResultEnvelope]:
        """The cached envelope, or None; a malformed entry degrades to a miss."""
        cached = self.store.get(fingerprint)
        if cached is None:
            return None
        try:
            return ResultEnvelope.from_dict(cached)
        except AnalysisError:
            METRICS.count("serve.store.corrupt")
            self.store.evict(fingerprint)
            return None

    def _compute(
        self, request: ArtifactRequest, fingerprint: str
    ) -> Dict[str, Any]:
        """Leader path: compute, render, seal.  Returns the envelope core."""
        METRICS.count("serve.computes")
        self.log(
            f"{request.name} {fingerprint[:12]} miss — computing "
            f"(jobs={request.jobs or 1})"
        )
        started = time.perf_counter()
        entry = artifact(request.name)
        with TRACER.span(f"serve.{request.name}", fingerprint=fingerprint[:12]):
            result = entry.compute_payload(request)
            text = entry.render_text(result, request)
        output_hashes = [
            file_sha256(path)[0]
            for path in result.output_paths
            if os.path.exists(path)
        ]
        envelope = ResultEnvelope.ok(
            artifact=request.name,
            fingerprint=fingerprint,
            rendered_text=text,
            output_sha256s=output_hashes,
        )
        core = envelope.core()
        self.store.put(fingerprint, core)
        elapsed = time.perf_counter() - started
        METRICS.add_time("serve.compute", elapsed)
        self.log(
            f"{request.name} {fingerprint[:12]} computed in {elapsed:.2f}s "
            f"-> {envelope.rendered_sha256[:12]}"
        )
        return core

    # Control operations ------------------------------------------------------

    #: Metric namespaces ``{"op": "stats"}`` surfaces by default; the
    #: cascade gauges make long-running collapse curves watchable live.
    STATS_PREFIXES = ("serve.", "parallel.", "cascade.", "health.")

    def stats(self, prefix: Optional[str] = None) -> Dict[str, Any]:
        """Counters and gauges, filtered to ``prefix`` when one is given."""
        wanted = (str(prefix),) if prefix else self.STATS_PREFIXES
        snapshot = METRICS.snapshot()
        counters = {
            name: value
            for name, value in snapshot.get("counters", {}).items()
            if name.startswith(wanted)
        }
        gauges = {
            name: value
            for name, value in snapshot.get("gauges", {}).items()
            if name.startswith(wanted)
        }
        return {
            "status": "ok",
            "op": "stats",
            "pid": os.getpid(),
            "counters": counters,
            "gauges": gauges,
            "cache_entries": len(self.store),
            "in_flight": self.flights.in_flight(),
        }

    def live_status(self, request: ControlRequest) -> Dict[str, Any]:
        """The newest status an ingest pipeline wrote under a state dir.

        ``state_dir`` comes from the request, falling back to the
        daemon's ``--ingest-state-dir``; the response is the pipeline's
        own atomic ``status.json`` payload (applied_seq, lag counters,
        restarts, snapshot frontier) passed through verbatim.
        """
        from repro.errors import IngestError
        from repro.online.pipeline import read_status

        state_dir = request.param("state_dir") or self.ingest_state_dir
        if not state_dir:
            return {
                "status": "error",
                "op": "live_status",
                "error": "no state_dir: pass one in the request or start "
                         "the daemon with --ingest-state-dir",
            }
        try:
            payload = read_status(str(state_dir))
        except IngestError as exc:
            METRICS.count("serve.live_status.misses")
            return {"status": "error", "op": "live_status", "error": str(exc)}
        METRICS.count("serve.live_status.reads")
        return {
            "status": "ok",
            "op": "live_status",
            "state_dir": str(state_dir),
            "ingest": payload,
        }

    def ping(self) -> Dict[str, Any]:
        from repro.api import names

        return {
            "status": "ok",
            "op": "ping",
            "pid": os.getpid(),
            "artifacts": names(),
        }

    # Drain accounting --------------------------------------------------------

    def track(self):
        """Context manager counting one in-flight connection (drain waits)."""
        return _Tracked(self)

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait for in-flight requests to finish; True when fully idle.

        Called after the listener stops accepting: single-flight leaders
        (and the followers waiting on them) run to completion instead of
        dying mid-compute with the process.
        """
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._active > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    METRICS.count("serve.drain.timeouts")
                    return False
                self._idle.wait(remaining)
        return True

    # Wire dispatch -----------------------------------------------------------

    def respond(self, line: str) -> Tuple[bytes, bool]:
        """(response bytes, shutdown?) for one decoded wire line."""
        try:
            request = decode_request(line)
        except (CodecError, AnalysisError) as exc:
            METRICS.count("serve.errors")
            return encode_response({"status": "error", "error": str(exc)}), False
        if isinstance(request, ControlRequest):
            if request.op == "ping":
                return encode_response(self.ping()), False
            if request.op == "stats":
                return encode_response(
                    self.stats(request.param("prefix"))
                ), False
            if request.op == "live_status":
                return encode_response(self.live_status(request)), False
            self.log("shutdown requested")
            return (
                encode_response({"status": "ok", "op": "shutdown"}),
                True,
            )
        return encode_response(self.handle_request(request)), False


class _Tracked:
    """RAII in-flight counter for :meth:`ArtifactServer.track`."""

    def __init__(self, app: ArtifactServer):
        self.app = app

    def __enter__(self) -> "_Tracked":
        with self.app._idle:
            self.app._active += 1
        return self

    def __exit__(self, *_exc) -> None:
        with self.app._idle:
            self.app._active -= 1
            if self.app._active == 0:
                self.app._idle.notify_all()


# Socket layer ---------------------------------------------------------------


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        line = self.rfile.readline(MAX_LINE_BYTES + 2)
        if not line:
            return
        with self.server.app.track():
            response, shutdown = self.server.app.respond(
                line.decode("utf-8", errors="replace").strip()
            )
            self.wfile.write(response)
            self.wfile.flush()
        if shutdown:
            # shutdown() blocks until serve_forever exits; calling it from
            # the handler thread directly would deadlock the accept loop.
            threading.Thread(target=self.server.shutdown, daemon=True).start()


class _ThreadingTCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "UnixStreamServer"):

    class _ThreadingUnixServer(
        socketserver.ThreadingMixIn, socketserver.UnixStreamServer
    ):
        daemon_threads = True


def _reclaim_socket(socket_path: str, app: ArtifactServer) -> None:
    """Unlink ``socket_path`` only when it is a *dead* daemon's socket.

    A ``kill -9`` leaves the previous daemon's socket file behind; binding
    must reclaim it.  But an unconditional unlink would also steal the
    socket out from under a *live* daemon — its listener keeps serving the
    now-unlinked inode while new clients silently talk to us, and the two
    daemons race on the cache.  So: probe first.  A refused connection
    proves nothing is accepting, and only then is the path removed.
    """
    try:
        mode = os.stat(socket_path).st_mode
    except FileNotFoundError:
        return
    if not stat.S_ISSOCK(mode):
        raise AnalysisError(
            f"refusing to bind {socket_path}: exists and is not a socket"
        )
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(1.0)
        probe.connect(socket_path)
    except ConnectionRefusedError:
        # Nothing is accepting: the previous daemon died without cleanup.
        METRICS.count("serve.stale_socket_reclaimed")
        app.log(f"reclaiming stale socket {socket_path}")
        try:
            os.remove(socket_path)
        except FileNotFoundError:
            pass
    except FileNotFoundError:
        pass  # unlinked between stat and connect — already reclaimed
    except OSError as exc:
        # Timeouts land here too: a full backlog is a *live* busy daemon.
        raise AnalysisError(
            f"refusing to bind {socket_path}: probe failed ({exc})"
        ) from None
    else:
        raise AnalysisError(
            f"refusing to bind {socket_path}: another daemon is listening"
        )
    finally:
        probe.close()


def make_server(
    app: ArtifactServer,
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
):
    """A threading socket server bound to a Unix socket or TCP port."""
    if socket_path:
        if not hasattr(socketserver, "UnixStreamServer"):
            raise AnalysisError("unix sockets are unavailable on this platform")
        _reclaim_socket(socket_path, app)
        server = _ThreadingUnixServer(socket_path, _Handler)
    else:
        server = _ThreadingTCPServer((host, port), _Handler)
    server.app = app
    return server


def run_server(
    app: ArtifactServer,
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    drain_timeout: float = 30.0,
) -> int:
    """Serve until shutdown (op, SIGTERM, or Ctrl-C); returns exit status.

    Shutdown is a *graceful drain*: the listener stops accepting first,
    then in-flight requests — including single-flight compute leaders —
    run to completion (bounded by ``drain_timeout``) before the process
    exits 0.
    """
    import signal

    server = make_server(app, socket_path=socket_path, host=host, port=port)
    where = socket_path or "%s:%d" % server.server_address[:2]
    app.log(f"listening on {where} (cache {app.store.root})")

    def _term(_signum, _frame):  # pragma: no cover - exercised via drill
        app.log("SIGTERM — draining")
        # shutdown() blocks until serve_forever acknowledges; the signal
        # handler runs *in* serve_forever's thread, so hand it off.
        threading.Thread(target=server.shutdown, daemon=True).start()

    registered = False
    if threading.current_thread() is threading.main_thread():
        previous = signal.signal(signal.SIGTERM, _term)
        registered = True
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        app.log("interrupted")
    finally:
        if registered:
            signal.signal(signal.SIGTERM, previous)
        # Close the listener before draining: no new connections are
        # accepted while in-flight ones finish.
        server.server_close()
        if not app.drain(timeout=drain_timeout):
            app.log(
                f"drain timed out after {drain_timeout:.0f}s with "
                f"{app._active} request(s) still in flight"
            )
        if socket_path and os.path.exists(socket_path):
            try:
                os.remove(socket_path)
            except OSError:
                pass
    app.log("stopped")
    return 0
