"""repro.serve — the multi-tenant artifact server.

Turns the batch CLI into a traffic-serving system while reusing every
guarantee already built: requests are typed
(:class:`~repro.api.request.ArtifactRequest`), identified by a
deterministic manifest fingerprint computed *before* any work runs,
served from a durable content-addressed cache
(:class:`~repro.serve.store.ResultStore`, atomic writes + sha256
sidecars), deduplicated while in flight
(:class:`~repro.serve.singleflight.SingleFlight`), and computed through
the same artifact registry — and the same persistent warm worker pool —
the CLI uses.

Start it with ``python -m repro serve --socket /tmp/repro.sock`` (or
``--port N``) and talk to it with
:class:`~repro.serve.client.ServeClient` or one JSON line over the
socket.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.codec import CodecError, decode_request, encode_response
from repro.serve.daemon import ArtifactServer, make_server, run_server
from repro.serve.singleflight import SingleFlight
from repro.serve.store import ResultStore

__all__ = [
    "ArtifactServer",
    "CodecError",
    "ResultStore",
    "ServeClient",
    "ServeError",
    "SingleFlight",
    "decode_request",
    "encode_response",
    "make_server",
    "run_server",
]
