"""The serve wire codec: newline-delimited JSON, one request per line.

The protocol is deliberately minimal — it has to be speakable from a
shell (``echo '{"artifact":"fig3","seed":7}' | nc -U serve.sock``), from
tests, and from the :mod:`repro.serve.client` helper alike:

* the client sends **one line** of JSON: an object naming the artifact
  (``"artifact"``) plus any :class:`~repro.api.request.ArtifactRequest`
  fields, or a control operation (``{"op": "ping"}``, ``{"op":
  "stats"}``, ``{"op": "shutdown"}``, ``{"op": "live_status",
  "state_dir": "..."}``) — control ops may carry extra parameters,
  returned to the dispatcher alongside the op name;
* the server replies with **one line** of JSON — a
  :class:`~repro.api.registry.ResultEnvelope` dict for artifact
  requests, a small status object for control ops — and closes.

Responses are serialized with sorted keys, so two equivalent responses
are byte-identical — the property the serve drill asserts with sha256.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.api.request import ArtifactRequest, RequestError

#: Request lines past this size are rejected before JSON parsing.
MAX_LINE_BYTES = 1 << 20

#: Control operations the daemon answers besides artifact requests.
CONTROL_OPS = ("ping", "stats", "shutdown", "live_status")


class CodecError(RequestError):
    """A wire line that cannot be decoded into a request."""


def decode_request(
    line: str,
) -> Tuple[str, Optional[ArtifactRequest], Dict[str, Any]]:
    """``(op, request, params)`` from one wire line.

    ``request`` is None for control ops; ``params`` carries the leftover
    payload fields (``live_status`` reads ``state_dir`` from it) and is
    empty for artifact requests.
    """
    if len(line) > MAX_LINE_BYTES:
        raise CodecError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise CodecError(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise CodecError("request must be a JSON object")
    op = payload.pop("op", "artifact")
    if op in CONTROL_OPS:
        return op, None, payload
    if op != "artifact":
        raise CodecError(
            f"unknown op {op!r}; known: artifact, {', '.join(CONTROL_OPS)}"
        )
    return op, ArtifactRequest.from_dict(payload), {}


def encode_request(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def encode_response(payload: Dict[str, Any]) -> bytes:
    """One deterministic response line (sorted keys, trailing newline)."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_response(line: str) -> Dict[str, Any]:
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise CodecError(f"response is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise CodecError("response must be a JSON object")
    return payload
