"""The serve wire codec: newline-delimited JSON, one request per line.

The protocol is deliberately minimal — it has to be speakable from a
shell (``echo '{"artifact":"fig3","seed":7}' | nc -U serve.sock``), from
tests, and from the :mod:`repro.serve.client` helper alike:

* the client sends **one line** of JSON: an object naming the artifact
  (``"artifact"``) plus any :class:`~repro.api.request.ArtifactRequest`
  fields, or a control operation (``{"op": "ping"}``, ``{"op":
  "stats"}``, ``{"op": "shutdown"}``, ``{"op": "live_status",
  "state_dir": "..."}``);
* the server replies with **one line** of JSON — a
  :class:`~repro.api.registry.ResultEnvelope` dict for artifact
  requests, a small status object for control ops — and closes.

Both request families decode into frozen types: artifact bodies become
an :class:`~repro.api.request.ArtifactRequest`, control bodies a
:class:`ControlRequest` mirroring its discipline — parameters are
validated per op (a typo'd key fails loudly), ``None`` values drop, and
the surviving pairs sort, so two equivalent control requests are *the
same value*.  Responses are serialized with sorted keys, so two
equivalent responses are byte-identical — the property the serve drill
asserts with sha256.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Union

from repro.api.request import ArtifactRequest, RequestError

#: Request lines past this size are rejected before JSON parsing.
MAX_LINE_BYTES = 1 << 20

#: Control operations the daemon answers besides artifact requests.
CONTROL_OPS = ("ping", "stats", "shutdown", "live_status")

#: The parameters each control op accepts; anything else is a typo and
#: rejected at decode time (the ArtifactRequest.from_dict rule).
CONTROL_PARAM_KEYS: Dict[str, Tuple[str, ...]] = {
    "ping": (),
    "stats": ("prefix",),
    "shutdown": (),
    "live_status": ("state_dir",),
}


class CodecError(RequestError):
    """A wire line that cannot be decoded into a request."""


@dataclass(frozen=True)
class ControlRequest:
    """One typed control operation, fully specified and hashable.

    The control-plane sibling of :class:`ArtifactRequest`: ``op`` names
    the operation, ``params`` carries its parameters as sorted ``(key,
    value)`` pairs with ``None`` values dropped — so ``{"op":
    "live_status"}`` and ``{"op": "live_status", "state_dir": null}``
    decode to equal values, exactly like explicit-default artifact
    options canonicalize away.
    """

    op: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.op not in CONTROL_OPS:
            raise CodecError(
                f"unknown op {self.op!r}; known: artifact, "
                f"{', '.join(CONTROL_OPS)}"
            )
        raw = self.params
        if isinstance(raw, Mapping):
            raw = tuple(raw.items())
        allowed = CONTROL_PARAM_KEYS[self.op]
        pairs = []
        for key, value in raw:
            if key not in allowed:
                raise CodecError(
                    f"op {self.op!r} takes no parameter {key!r}"
                    + (f"; known: {', '.join(allowed)}" if allowed else "")
                )
            if value is not None:
                pairs.append((str(key), value))
        object.__setattr__(self, "params", tuple(sorted(pairs)))

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def to_dict(self) -> Dict[str, Any]:
        """The wire shape (round-trips through :func:`decode_request`)."""
        payload: Dict[str, Any] = {"op": self.op}
        payload.update(dict(self.params))
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ControlRequest":
        body = dict(payload)
        op = body.pop("op", None)
        if not op:
            raise CodecError('control request needs an "op" key')
        return cls(op=str(op), params=tuple(body.items()))


def decode_request(line: str) -> Union[ArtifactRequest, ControlRequest]:
    """The typed request carried by one wire line.

    A body with no ``op`` (or ``op == "artifact"``) decodes into an
    :class:`ArtifactRequest`; a control op decodes into a
    :class:`ControlRequest`.  Dispatch on the type.
    """
    if len(line) > MAX_LINE_BYTES:
        raise CodecError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise CodecError(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise CodecError("request must be a JSON object")
    op = payload.get("op", "artifact")
    if op == "artifact":
        payload.pop("op", None)
        return ArtifactRequest.from_dict(payload)
    return ControlRequest.from_dict(payload)


def encode_request(payload: Union[Dict[str, Any], ControlRequest]) -> bytes:
    if isinstance(payload, ControlRequest):
        payload = payload.to_dict()
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def encode_response(payload: Dict[str, Any]) -> bytes:
    """One deterministic response line (sorted keys, trailing newline)."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_response(line: str) -> Dict[str, Any]:
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise CodecError(f"response is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise CodecError("response must be a JSON object")
    return payload
