"""Single-flight deduplication: N identical in-flight requests, 1 compute.

The serve daemon handles requests on concurrent threads; without
coordination, two tenants asking for the same fingerprint milliseconds
apart would both schedule the (expensive, deterministic, identical)
computation.  :class:`SingleFlight` collapses them: the first caller for
a key becomes the **leader** and runs the function; every caller that
arrives while the leader is in flight becomes a **follower** and blocks
on the leader's result — the very same envelope object, so follower
responses are byte-identical to the leader's.

A leader that raises propagates the same exception to every follower
(an error is a result too; each caller turns it into an error
envelope).  The flight table entry is removed *before* followers wake,
so a retry of the same key after a failure starts a fresh flight —
failures are never cached here or in the store.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple


class _Flight:
    __slots__ = ("event", "value", "error", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.waiters = 0


class SingleFlight:
    """A table of in-flight computations keyed by request fingerprint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[str, _Flight] = {}

    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)

    def waiting(self, key: str) -> int:
        """Followers currently blocked on ``key`` (0 if no flight)."""
        with self._lock:
            flight = self._flights.get(key)
            return flight.waiters if flight is not None else 0

    def do(self, key: str, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent burst of ``key``.

        Returns ``(value, shared)``: ``shared`` is False for the leader
        that actually executed ``fn`` and True for followers that were
        handed the leader's result.  Re-raises the leader's exception in
        every caller.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
            else:
                flight.waiters += 1
        if leader:
            try:
                flight.value = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                # Unlink before waking followers: a later request for the
                # same key must start fresh, not join a finished flight.
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
            return flight.value, False
        flight.event.wait()
        if flight.error is not None:
            raise flight.error
        return flight.value, True
