"""Trust lines — the credit edges of the Ripple network.

A trust line is a *directed* declaration: if Alice trusts Bob for 10 USD,
Alice is willing to hold up to 10 USD of Bob's IOUs.  IOU payments travel
along trust lines in the opposite direction of trust (Fig. 1 of the paper):
Bob can *pay* Alice by getting into debt towards her, up to the declared
limit.  Each line tracks the current debt of the trustee towards the
truster.

The full credit capacity for a payment hop from X to Y is therefore the
unused limit of Y's trust towards X *plus* any existing debt of Y towards X
(paying someone back frees capacity); :mod:`repro.payments.graph` combines
the two directed lines per pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import InvalidAmountError, TrustLineError
from repro.ledger.accounts import AccountID
from repro.ledger.amounts import Amount
from repro.ledger.currency import Currency


@dataclass
class TrustLine:
    """A directed credit line: ``truster`` accepts IOUs from ``trustee``.

    ``balance`` is the amount the trustee currently owes the truster; the
    invariant ``0 <= balance`` holds at all times and ``balance <= limit``
    holds for all balances created by payments (limits can be lowered below
    an existing balance, as in Ripple, which freezes new credit but does not
    erase debt).
    """

    truster: AccountID
    trustee: AccountID
    currency: Currency
    limit: Amount
    balance: Amount = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.truster == self.trustee:
            raise TrustLineError("an account cannot trust itself")
        if self.currency.is_xrp:
            raise TrustLineError("XRP moves by balance transfer, not trust lines")
        if self.limit.currency != self.currency:
            raise InvalidAmountError("trust limit currency mismatch")
        if self.limit.is_negative:
            raise TrustLineError("trust limit cannot be negative")
        if self.balance is None:
            self.balance = Amount.zero(self.currency)
        if self.balance.currency != self.currency:
            raise InvalidAmountError("trust balance currency mismatch")
        self._refresh_float_cache()

    def _refresh_float_cache(self) -> None:
        # Path finding reads capacities as floats millions of times per
        # history but a line only mutates on a hop or a TrustSet, so the
        # float views are maintained here instead of recomputed per query.
        self._balance_float = self.balance.to_float()
        self._available_float = self.available_credit().to_float()

    @property
    def balance_float(self) -> float:
        """``balance.to_float()``, cached across mutations."""
        return self._balance_float

    @property
    def available_credit_float(self) -> float:
        """``available_credit().to_float()``, cached across mutations."""
        return self._available_float

    @property
    def key(self) -> Tuple[AccountID, AccountID, str]:
        """Dictionary key identifying this line."""
        return (self.truster, self.trustee, self.currency.code)

    def available_credit(self) -> Amount:
        """How much *new* debt the trustee may take on over this line."""
        remaining = self.limit - self.balance
        return remaining if remaining.is_positive else Amount.zero(self.currency)

    def extend_debt(self, amount: Amount) -> None:
        """Record ``amount`` of additional debt (trustee pays truster).

        Raises :class:`TrustLineError` if the line lacks capacity.
        """
        if amount.is_negative:
            raise InvalidAmountError("debt extension must be non-negative")
        if amount > self.available_credit():
            raise TrustLineError(
                f"trust line {self.truster.short()}<-{self.trustee.short()} "
                f"{self.currency} lacks capacity for {amount}"
            )
        self.balance = self.balance + amount
        self._refresh_float_cache()

    def settle_debt(self, amount: Amount) -> None:
        """Cancel ``amount`` of existing debt (truster pays trustee back)."""
        if amount.is_negative:
            raise InvalidAmountError("debt settlement must be non-negative")
        if amount > self.balance:
            raise TrustLineError(
                f"cannot settle {amount}: only {self.balance} owed"
            )
        self.balance = self.balance - amount
        self._refresh_float_cache()

    def set_limit(self, limit: Amount) -> None:
        """Change the declared trust limit (a ``TrustSet`` transaction)."""
        if limit.currency != self.currency:
            raise InvalidAmountError("trust limit currency mismatch")
        if limit.is_negative:
            raise TrustLineError("trust limit cannot be negative")
        self.limit = limit
        self._refresh_float_cache()

    def write_off(self) -> Amount:
        """Forcibly cancel the debt and withdraw the limit (forced unwind).

        Unlike :meth:`settle_debt`, nothing is repaid: the truster
        forfeits the IOUs it holds on this line and stops extending
        credit, so the line drops out of every payment path.  Returns
        the written-off balance.
        """
        lost = self.balance
        self.balance = self.balance - self.balance
        self.limit = self.limit - self.limit
        self._refresh_float_cache()
        return lost

    def is_dead(self) -> bool:
        """True when the line carries no limit and no balance (removable)."""
        return self.limit.is_zero and self.balance.is_zero
