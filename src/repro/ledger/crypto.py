"""Schnorr signatures over a Schnorr group, implemented in pure Python.

Ripple signs transactions and validations with ECDSA/Ed25519.  Neither is
available in the offline environment, so we implement a classical Schnorr
signature over a 2048-bit Schnorr group (a prime-order subgroup of the
multiplicative group modulo a safe prime).  This is a *real* signature
scheme — existential unforgeability under the discrete-log assumption — not
a mock: signatures verify with the public key alone, and tampering with the
message, the signature, or the key makes verification fail.

Because modular exponentiation with 2048-bit moduli costs ~1 ms, large-scale
consensus simulations sign lazily (see :mod:`repro.consensus.validator`);
this module is used directly for transaction signing in examples and tests.

The group parameters are the well-known RFC 3526 2048-bit MODP prime, for
which ``q = (p - 1) / 2`` is prime and ``g = 4`` generates the order-``q``
subgroup of quadratic residues.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.errors import SignatureError

#: RFC 3526 group 14 prime (2048-bit safe prime): p = 2^2048 - 2^1984 - 1 +
#: 2^64 * (floor(2^1918 * pi) + 124476).
P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
#: Order of the quadratic-residue subgroup: q = (p - 1) / 2, prime.
Q = (P - 1) // 2
#: Generator of the order-q subgroup (4 = 2^2 is a quadratic residue).
G = 4

_CHALLENGE_BITS = 256


def _int_from_hash(*parts: bytes) -> int:
    digest = hashlib.sha512(b"".join(parts)).digest()
    return int.from_bytes(digest[: _CHALLENGE_BITS // 8], "big")


def _deterministic_nonce(secret: int, message: bytes) -> int:
    """RFC 6979-style deterministic nonce: HMAC of message keyed by secret.

    Deterministic nonces make signing reproducible (important for the seeded
    simulations) and remove the catastrophic repeated-nonce failure mode.
    """
    key = secret.to_bytes(256, "big")
    mac = hmac.new(key, message, hashlib.sha512).digest()
    k = int.from_bytes(mac, "big") % Q
    # k == 0 is astronomically unlikely but would leak the secret; reject it.
    return k if k != 0 else 1


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature ``(s, e)`` with ``s in [0, q)`` and hash ``e``."""

    s: int
    e: int

    def to_bytes(self) -> bytes:
        return self.s.to_bytes(256, "big") + self.e.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Signature":
        if len(raw) != 288:
            raise SignatureError(f"signature must be 288 bytes, got {len(raw)}")
        return cls(s=int.from_bytes(raw[:256], "big"), e=int.from_bytes(raw[256:], "big"))


@dataclass(frozen=True)
class KeyPair:
    """A Schnorr key pair.

    ``secret`` is an exponent in ``[1, q)``; ``public`` is ``g^secret mod p``.
    """

    secret: int
    public: int

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeyPair":
        """Derive a key pair deterministically from arbitrary seed bytes."""
        secret = (_int_from_hash(b"repro-keypair", seed) % (Q - 1)) + 1
        return cls(secret=secret, public=pow(G, secret, P))

    def sign(self, message: bytes) -> Signature:
        """Sign ``message`` (classic Schnorr: commit, challenge, response)."""
        k = _deterministic_nonce(self.secret, message)
        r = pow(G, k, P)
        e = _int_from_hash(r.to_bytes(256, "big"), message) % Q
        s = (k - self.secret * e) % Q
        return Signature(s=s, e=e)

    def public_bytes(self) -> bytes:
        return self.public.to_bytes(256, "big")


def verify(public: int, message: bytes, signature: Signature) -> bool:
    """Return True iff ``signature`` is valid for ``message`` under ``public``."""
    if not (0 <= signature.s < Q) or not (0 <= signature.e < Q):
        return False
    # r' = g^s * y^e mod p; valid iff H(r' || m) == e.
    r = (pow(G, signature.s, P) * pow(public, signature.e, P)) % P
    e = _int_from_hash(r.to_bytes(256, "big"), message) % Q
    return e == signature.e


def require_valid(public: int, message: bytes, signature: Signature) -> None:
    """Raise :class:`SignatureError` unless the signature verifies."""
    if not verify(public, message, signature):
        raise SignatureError("signature verification failed")
