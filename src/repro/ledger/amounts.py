"""Amounts of XRP and issued currencies (IOUs).

Mirrors rippled's ``STAmount``: an amount is either *native* (XRP, an
integer count of drops, 1 XRP = 10^6 drops) or an *issued* amount — a value
with a currency code and an issuer, stored as a normalized
(mantissa, exponent) pair with 15 significant decimal digits.  The integer
representation matters for this reproduction because the de-anonymization
rounding of Table I must be exact: rounding ``0.00123 BTC`` to the nearest
``10^-3`` has to give precisely ``0.001``, not a float approximation.

The ledger records amounts to a precision of one millionth (10^-6), the
resolution the paper quotes for the amount field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.errors import InvalidAmountError
from repro.ledger.accounts import AccountID
from repro.ledger.currency import XRP, Currency

#: Significant decimal digits carried by an issued amount (as in rippled).
PRECISION_DIGITS = 15
_MANTISSA_MIN = 10 ** (PRECISION_DIGITS - 1)
_MANTISSA_MAX = 10 ** PRECISION_DIGITS - 1
#: Exponent range of rippled's STAmount.
_EXPONENT_MIN = -96
_EXPONENT_MAX = 80

#: Drops per XRP.
DROPS_PER_XRP = 10 ** 6


def _normalize(mantissa: int, exponent: int) -> Tuple[int, int]:
    """Normalize to 15 significant digits (zero is (0, 0))."""
    if mantissa == 0:
        return 0, 0
    sign = 1 if mantissa > 0 else -1
    mag = abs(mantissa)
    while mag < _MANTISSA_MIN:
        mag *= 10
        exponent -= 1
    while mag > _MANTISSA_MAX:
        mag, rem = divmod(mag, 10)
        if rem >= 5:
            mag += 1
            if mag > _MANTISSA_MAX:  # carry, e.g. 999...9 + 1
                mag //= 10
                exponent += 1
        exponent += 1
    if exponent < _EXPONENT_MIN:
        return 0, 0
    if exponent > _EXPONENT_MAX:
        raise InvalidAmountError(f"amount overflow: {mantissa}e{exponent}")
    return sign * mag, exponent


@dataclass(frozen=True)
class Amount:
    """An amount of some currency, optionally tied to an issuer.

    Value is ``mantissa * 10**exponent``.  XRP amounts have ``issuer=None``
    and are exact in drops; issued amounts carry 15 significant digits.
    """

    currency: Currency
    mantissa: int
    exponent: int
    issuer: Optional[AccountID] = None

    def __post_init__(self) -> None:
        if self.currency.is_xrp and self.issuer is not None:
            raise InvalidAmountError("XRP amounts cannot have an issuer")
        m, e = _normalize(self.mantissa, self.exponent)
        object.__setattr__(self, "mantissa", m)
        object.__setattr__(self, "exponent", e)

    # Constructors -----------------------------------------------------------

    @classmethod
    def zero(cls, currency: Currency, issuer: Optional[AccountID] = None) -> "Amount":
        return cls(currency, 0, 0, issuer)

    @classmethod
    def xrp(cls, value: Union[int, float]) -> "Amount":
        """An XRP amount from a value in XRP (not drops)."""
        return cls.from_value(XRP, value)

    @classmethod
    def drops(cls, drops: int) -> "Amount":
        """An XRP amount from an integer number of drops."""
        return cls(XRP, int(drops), -6)

    @classmethod
    def from_value(
        cls,
        currency: Currency,
        value: Union[int, float],
        issuer: Optional[AccountID] = None,
    ) -> "Amount":
        """Build an amount from a Python number.

        Floats are taken at ledger precision (10^-6), matching the amount
        resolution the paper extracts from the public ledger.
        """
        if isinstance(value, int):
            return cls(currency, value, 0, issuer)
        scaled = round(value * 10 ** 6)
        return cls(currency, scaled, -6, issuer)

    # Observers ---------------------------------------------------------------

    @property
    def is_xrp(self) -> bool:
        return self.currency.is_xrp

    @property
    def is_zero(self) -> bool:
        return self.mantissa == 0

    @property
    def is_negative(self) -> bool:
        return self.mantissa < 0

    @property
    def is_positive(self) -> bool:
        return self.mantissa > 0

    def to_float(self) -> float:
        # Integer scaling keeps the conversion correctly rounded: a single
        # int/int division rounds once, whereas mantissa * 10.0**exponent
        # would compound two float roundings (1000 -> 999.9999999999999).
        if self.exponent >= 0:
            return float(self.mantissa * 10 ** self.exponent)
        return self.mantissa / 10 ** (-self.exponent)

    def sign(self) -> int:
        return (self.mantissa > 0) - (self.mantissa < 0)

    # Arithmetic --------------------------------------------------------------

    def _check_compatible(self, other: "Amount") -> None:
        if self.currency != other.currency:
            raise InvalidAmountError(
                f"currency mismatch: {self.currency} vs {other.currency}"
            )
        if self.issuer != other.issuer:
            raise InvalidAmountError("issuer mismatch in amount arithmetic")

    def _binop(self, other: "Amount", op) -> "Amount":
        self._check_compatible(other)
        # Align exponents on the smaller one so mantissa math is exact.
        e = min(self.exponent, other.exponent)
        a = self.mantissa * 10 ** (self.exponent - e)
        b = other.mantissa * 10 ** (other.exponent - e)
        return Amount(self.currency, op(a, b), e, self.issuer)

    def __add__(self, other: "Amount") -> "Amount":
        return self._binop(other, lambda a, b: a + b)

    def __sub__(self, other: "Amount") -> "Amount":
        return self._binop(other, lambda a, b: a - b)

    def __neg__(self) -> "Amount":
        return Amount(self.currency, -self.mantissa, self.exponent, self.issuer)

    def scaled(self, factor: float) -> "Amount":
        """This amount multiplied by a scalar ``factor``."""
        scaled = round(self.mantissa * factor)
        return Amount(self.currency, scaled, self.exponent, self.issuer)

    def ratio(self, other: "Amount") -> float:
        """``self / other`` as a float (same currency/issuer).

        Computed as a *single* division of the exponent-aligned integer
        mantissas, so the result is the correctly rounded quotient.
        Routing through :meth:`to_float` first would round each operand to
        float and then round the quotient again — three roundings whose
        compounded error can flip the last bit.
        """
        self._check_compatible(other)
        if other.is_zero:
            raise InvalidAmountError("division by zero amount")
        a, b = self._aligned(other)
        return a / b

    def min(self, other: "Amount") -> "Amount":
        """The smaller amount, decided by exact integer comparison.

        Floats only carry 53 bits: two unequal amounts whose aligned
        mantissas differ beyond that would compare equal through
        :meth:`to_float`, making the float-based pick order-dependent.
        """
        self._check_compatible(other)
        a, b = self._aligned(other)
        return self if a <= b else other

    # Comparison (same currency/issuer only) -----------------------------------

    def _aligned(self, other: "Amount") -> Tuple[int, int]:
        """Both mantissas scaled to the smaller exponent (exact integers)."""
        e = min(self.exponent, other.exponent)
        a = self.mantissa * 10 ** (self.exponent - e)
        b = other.mantissa * 10 ** (other.exponent - e)
        return a, b

    def _cmp_key(self, other: "Amount") -> Tuple[int, int]:
        self._check_compatible(other)
        return self._aligned(other)

    def __lt__(self, other: "Amount") -> bool:
        a, b = self._cmp_key(other)
        return a < b

    def __le__(self, other: "Amount") -> bool:
        a, b = self._cmp_key(other)
        return a <= b

    def __gt__(self, other: "Amount") -> bool:
        a, b = self._cmp_key(other)
        return a > b

    def __ge__(self, other: "Amount") -> bool:
        a, b = self._cmp_key(other)
        return a >= b

    # Rounding (Table I) --------------------------------------------------------

    def round_to(self, granularity_exponent: int) -> "Amount":
        """Round to the closest ``10**granularity_exponent`` (exact).

        This implements the Table I coarsening: e.g. a EUR amount rounded at
        ``granularity_exponent=2`` snaps to the closest hundred.  Ties round
        half-away-from-zero, matching everyday rounding of prices.
        """
        shift = self.exponent - granularity_exponent
        if shift >= 0:
            # Already at least as coarse in representation; exact rescale.
            return Amount(
                self.currency, self.mantissa * 10 ** shift, granularity_exponent, self.issuer
            )
        divisor = 10 ** (-shift)
        q, r = divmod(abs(self.mantissa), divisor)
        if 2 * r >= divisor:
            q += 1
        return Amount(self.currency, self.sign() * q, granularity_exponent, self.issuer)

    # Rendering -----------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        issuer = f"/{self.issuer.short()}" if self.issuer else ""
        return f"{self.to_float():g} {self.currency.code}{issuer}"

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"Amount({self})"
