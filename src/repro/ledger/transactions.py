"""Transaction types recorded in the distributed ledger.

Every state change in Ripple is a signed transaction: payments, trust-line
updates, and exchange offers.  Each transaction carries the submitting
account, an account-local sequence number (replay protection), and an XRP
fee that is *destroyed* on application — the anti-spam mechanism the paper
discusses (and that the MTL/CCK attackers paid to abuse the system anyway).

Transactions serialize canonically so that their identifying hash is stable,
and can be signed/verified with the Schnorr scheme of
:mod:`repro.ledger.crypto`.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import InvalidTransactionError
from repro.ledger import crypto
from repro.ledger.accounts import AccountID
from repro.ledger.amounts import Amount
from repro.ledger.currency import Currency
from repro.ledger.hashing import transaction_hash

#: Ripple measures time in seconds since 2000-01-01T00:00:00 UTC.
RIPPLE_EPOCH = _dt.datetime(2000, 1, 1, tzinfo=_dt.timezone.utc)

#: Reference transaction cost, in drops (10 drops = 0.00001 XRP).
BASE_FEE_DROPS = 10


def to_ripple_time(when: _dt.datetime) -> int:
    """Convert an aware datetime to Ripple-epoch seconds."""
    if when.tzinfo is None:
        when = when.replace(tzinfo=_dt.timezone.utc)
    return int((when - RIPPLE_EPOCH).total_seconds())


def from_ripple_time(seconds: int) -> _dt.datetime:
    """Convert Ripple-epoch seconds back to an aware datetime."""
    return RIPPLE_EPOCH + _dt.timedelta(seconds=int(seconds))


@dataclass
class Transaction:
    """Common fields of every ledger transaction."""

    account: AccountID
    sequence: int
    fee_drops: int = BASE_FEE_DROPS
    signature: Optional[crypto.Signature] = None
    public_key: Optional[int] = None

    TYPE_NAME = "Transaction"

    def _payload_fields(self) -> Tuple:
        """Subclass hook: the type-specific fields entering serialization."""
        return ()

    def serialize(self) -> bytes:
        """Canonical byte serialization (signature excluded)."""
        parts = [
            self.TYPE_NAME.encode(),
            self.account.raw,
            self.sequence.to_bytes(8, "big"),
            self.fee_drops.to_bytes(8, "big"),
        ]
        for item in self._payload_fields():
            parts.append(_serialize_field(item))
        return b"|".join(parts)

    @property
    def tx_hash(self) -> bytes:
        """The 256-bit identifying hash of this transaction."""
        return transaction_hash(self.serialize())

    def sign(self, keypair: crypto.KeyPair) -> None:
        """Attach a signature over the canonical serialization."""
        self.signature = keypair.sign(self.serialize())
        self.public_key = keypair.public

    def verify_signature(self) -> bool:
        """Check the attached signature; False when unsigned."""
        if self.signature is None or self.public_key is None:
            return False
        return crypto.verify(self.public_key, self.serialize(), self.signature)

    def validate(self) -> None:
        """Static validity checks common to all transaction types."""
        if self.sequence < 0:
            raise InvalidTransactionError("sequence must be non-negative")
        if self.fee_drops < BASE_FEE_DROPS:
            raise InvalidTransactionError(
                f"fee {self.fee_drops} below base fee {BASE_FEE_DROPS}"
            )


def _serialize_field(item) -> bytes:
    if item is None:
        return b"-"
    if isinstance(item, AccountID):
        return item.raw
    if isinstance(item, Amount):
        issuer = item.issuer.raw if item.issuer else b""
        return (
            item.currency.code.encode()
            + item.mantissa.to_bytes(16, "big", signed=True)
            + item.exponent.to_bytes(2, "big", signed=True)
            + issuer
        )
    if isinstance(item, Currency):
        return item.code.encode()
    if isinstance(item, int):
        return item.to_bytes(16, "big", signed=True)
    if isinstance(item, str):
        return item.encode()
    if isinstance(item, (tuple, list)):
        return b"[" + b";".join(_serialize_field(x) for x in item) + b"]"
    raise InvalidTransactionError(f"unserializable field {item!r}")


@dataclass
class Payment(Transaction):
    """Move value from ``account`` to ``destination``.

    ``amount`` is what the destination receives.  For IOU and cross-currency
    payments, ``send_max`` bounds what the sender is willing to spend and
    ``paths`` (when present) pins the trust-line route — the payment *paths*
    whose structure the paper analyses in Fig. 6.
    """

    destination: AccountID = None  # type: ignore[assignment]
    amount: Amount = None  # type: ignore[assignment]
    send_max: Optional[Amount] = None
    timestamp: int = 0  # Ripple-epoch close time stamped by the ledger

    TYPE_NAME = "Payment"

    def _payload_fields(self) -> Tuple:
        return (self.destination, self.amount, self.send_max, self.timestamp)

    def validate(self) -> None:
        super().validate()
        if self.destination is None or self.amount is None:
            raise InvalidTransactionError("payment needs destination and amount")
        if self.destination == self.account:
            raise InvalidTransactionError("payment to self")
        if not self.amount.is_positive:
            raise InvalidTransactionError("payment amount must be positive")
        if self.send_max is not None and not self.send_max.is_positive:
            raise InvalidTransactionError("send_max must be positive")

    @property
    def is_cross_currency(self) -> bool:
        """True when the sender spends a different currency than delivered."""
        return self.send_max is not None and (
            self.send_max.currency != self.amount.currency
        )


@dataclass
class TrustSet(Transaction):
    """Create or update a trust line from ``account`` towards ``trustee``."""

    trustee: AccountID = None  # type: ignore[assignment]
    limit: Amount = None  # type: ignore[assignment]

    TYPE_NAME = "TrustSet"

    def _payload_fields(self) -> Tuple:
        return (self.trustee, self.limit)

    def validate(self) -> None:
        super().validate()
        if self.trustee is None or self.limit is None:
            raise InvalidTransactionError("trust set needs trustee and limit")
        if self.trustee == self.account:
            raise InvalidTransactionError("cannot trust self")
        if self.limit.is_negative:
            raise InvalidTransactionError("trust limit cannot be negative")
        if self.limit.currency.is_xrp:
            raise InvalidTransactionError("cannot create an XRP trust line")


@dataclass
class OfferCreate(Transaction):
    """Place an exchange offer on the order book (Market Maker activity)."""

    taker_pays: Amount = None  # type: ignore[assignment]
    taker_gets: Amount = None  # type: ignore[assignment]

    TYPE_NAME = "OfferCreate"

    def _payload_fields(self) -> Tuple:
        return (self.taker_pays, self.taker_gets)

    def validate(self) -> None:
        super().validate()
        if self.taker_pays is None or self.taker_gets is None:
            raise InvalidTransactionError("offer needs both sides")
        if not self.taker_pays.is_positive or not self.taker_gets.is_positive:
            raise InvalidTransactionError("offer amounts must be positive")


@dataclass
class OfferCancel(Transaction):
    """Withdraw a previously placed offer."""

    offer_sequence: int = 0

    TYPE_NAME = "OfferCancel"

    def _payload_fields(self) -> Tuple:
        return (self.offer_sequence,)

    def validate(self) -> None:
        super().validate()
        if self.offer_sequence < 0:
            raise InvalidTransactionError("offer sequence must be non-negative")


@dataclass
class AccountSet(Transaction):
    """Tweak account flags/metadata (e.g. a gateway enabling default ripple)."""

    flags: Tuple[str, ...] = field(default_factory=tuple)

    TYPE_NAME = "AccountSet"

    def _payload_fields(self) -> Tuple:
        return (tuple(self.flags),)


#: All concrete transaction types, for registry-style dispatch.
TRANSACTION_TYPES: Sequence[type] = (
    Payment,
    TrustSet,
    OfferCreate,
    OfferCancel,
    AccountSet,
)
