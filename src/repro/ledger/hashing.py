"""Canonical hashing used throughout the ledger.

Ripple identifies every on-ledger object by a 256-bit hash.  The production
system uses the first half of SHA-512 ("SHA-512Half") because it is faster
than SHA-256 on 64-bit hardware while providing the same truncated security
level.  We reproduce that choice, together with the namespace prefixes the
real implementation mixes into each hash so that a transaction hash can never
collide with, say, a ledger-page hash of identical serialized bytes.
"""

from __future__ import annotations

import hashlib

#: Namespace prefixes, mirroring rippled's ``HashPrefix`` values: four ASCII
#: bytes mixed in front of the serialized payload before hashing.
PREFIX_TRANSACTION = b"TXN\x00"
PREFIX_LEDGER_PAGE = b"LWR\x00"
PREFIX_VALIDATION = b"VAL\x00"
PREFIX_ACCOUNT = b"ACC\x00"
PREFIX_PROPOSAL = b"PRP\x00"
PREFIX_TXSET = b"TXS\x00"


def sha512half(data: bytes) -> bytes:
    """Return the first 32 bytes of SHA-512 of ``data``."""
    return hashlib.sha512(data).digest()[:32]


def hash_with_prefix(prefix: bytes, data: bytes) -> bytes:
    """Hash ``data`` inside the namespace identified by ``prefix``."""
    return sha512half(prefix + data)


def transaction_hash(serialized: bytes) -> bytes:
    """256-bit identifying hash of a serialized transaction."""
    return hash_with_prefix(PREFIX_TRANSACTION, serialized)


def ledger_page_hash(serialized: bytes) -> bytes:
    """256-bit identifying hash of a serialized ledger page header."""
    return hash_with_prefix(PREFIX_LEDGER_PAGE, serialized)


def tx_set_hash(tx_hashes: list) -> bytes:
    """Order-independent hash of a set of transaction hashes.

    The consensus protocol agrees on transaction *sets*; two validators with
    the same set in different arrival order must compute the same identifier,
    so the member hashes are sorted before hashing.
    """
    return hash_with_prefix(PREFIX_TXSET, b"".join(sorted(tx_hashes)))


def checksum4(data: bytes) -> bytes:
    """Four-byte double-SHA-256 checksum used by base58check encoding."""
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()[:4]
