"""Applying transactions to ledger state, with rippled-style result codes.

The payment engine routes value; *this* layer is what a server does with a
submitted transaction object: static validation, signature check, sequence
(replay) check, fee claim, then dispatch by transaction type.  Result codes
follow rippled's taxonomy:

``tem*`` — malformed, never forwarded;
``tef*`` — failure that can never succeed (bad signature, past sequence);
``ter*`` — retryable (future sequence);
``tec*`` — claimed a fee but had no effect (dry path, unfunded, ...);
``tesSUCCESS`` — applied.

``tec`` results matter for the reproduction: such transactions *do* end up
in the ledger (they paid for their slot), which is why the paper's spam
analysis sees failed-but-recorded traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    InsufficientBalanceError,
    InvalidTransactionError,
    LedgerError,
    PaymentError,
    TrustLineError,
)
from repro.ledger.offers import Offer
from repro.ledger.state import LedgerState
from repro.ledger.transactions import (
    AccountSet,
    OfferCancel,
    OfferCreate,
    Payment,
    Transaction,
    TrustSet,
)
from repro.payments.engine import PaymentEngine, PaymentResult


class ApplyCode(enum.Enum):
    """Outcome of applying one transaction."""

    SUCCESS = "tesSUCCESS"
    MALFORMED = "temMALFORMED"
    BAD_SIGNATURE = "tefBAD_AUTH"
    PAST_SEQUENCE = "tefPAST_SEQ"
    FUTURE_SEQUENCE = "terPRE_SEQ"
    UNKNOWN_ACCOUNT = "terNO_ACCOUNT"
    UNFUNDED_FEE = "tecUNFUNDED_FEE"
    PATH_FAILURE = "tecPATH_DRY"
    NO_EFFECT = "tecNO_TARGET"

    @property
    def applied_to_ledger(self) -> bool:
        """Whether the transaction occupies a ledger slot (tes or tec)."""
        return self.value.startswith(("tes", "tec"))

    @property
    def retryable(self) -> bool:
        return self.value.startswith("ter")


@dataclass
class AppliedTransaction:
    """A transaction plus what applying it did."""

    transaction: Transaction
    code: ApplyCode
    payment_result: Optional[PaymentResult] = None
    fee_claimed: int = 0

    @property
    def succeeded(self) -> bool:
        return self.code is ApplyCode.SUCCESS


class TransactionApplier:
    """Validates and applies transaction objects to a ledger state."""

    def __init__(
        self,
        state: LedgerState,
        require_signatures: bool = True,
        engine: Optional[PaymentEngine] = None,
    ):
        self.state = state
        self.require_signatures = require_signatures
        # The applier owns fee handling; the engine must not double-burn.
        self.engine = engine or PaymentEngine(state, enforce_fees=False)

    # Checks ---------------------------------------------------------------------

    def _precheck(self, tx: Transaction) -> Optional[ApplyCode]:
        try:
            tx.validate()
        except InvalidTransactionError:
            return ApplyCode.MALFORMED
        if self.require_signatures and not tx.verify_signature():
            return ApplyCode.BAD_SIGNATURE
        if not self.state.has_account(tx.account):
            return ApplyCode.UNKNOWN_ACCOUNT
        root = self.state.account(tx.account)
        if tx.sequence < root.sequence:
            return ApplyCode.PAST_SEQUENCE
        if tx.sequence > root.sequence:
            return ApplyCode.FUTURE_SEQUENCE
        if root.balance_drops < tx.fee_drops:
            return ApplyCode.UNFUNDED_FEE
        return None

    def _claim(self, tx: Transaction) -> int:
        """Claim the fee and consume the sequence number."""
        self.state.burn_fee(tx.account, tx.fee_drops)
        self.state.account(tx.account).sequence = tx.sequence + 1
        return tx.fee_drops

    # Dispatch --------------------------------------------------------------------

    def apply(self, tx: Transaction) -> AppliedTransaction:
        """Apply one transaction; never raises for domain failures."""
        failure = self._precheck(tx)
        if failure is not None:
            return AppliedTransaction(transaction=tx, code=failure)
        fee = self._claim(tx)

        if isinstance(tx, Payment):
            return self._apply_payment(tx, fee)
        if isinstance(tx, TrustSet):
            return self._apply_trust_set(tx, fee)
        if isinstance(tx, OfferCreate):
            return self._apply_offer_create(tx, fee)
        if isinstance(tx, OfferCancel):
            return self._apply_offer_cancel(tx, fee)
        if isinstance(tx, AccountSet):
            return AppliedTransaction(tx, ApplyCode.SUCCESS, fee_claimed=fee)
        return AppliedTransaction(tx, ApplyCode.MALFORMED, fee_claimed=fee)

    def _apply_payment(self, tx: Payment, fee: int) -> AppliedTransaction:
        result = self.engine.submit(
            tx.account, tx.destination, tx.amount, send_max=tx.send_max
        )
        code = ApplyCode.SUCCESS if result.success else ApplyCode.PATH_FAILURE
        return AppliedTransaction(
            transaction=tx, code=code, payment_result=result, fee_claimed=fee
        )

    def _apply_trust_set(self, tx: TrustSet, fee: int) -> AppliedTransaction:
        if not self.state.has_account(tx.trustee):
            return AppliedTransaction(tx, ApplyCode.NO_EFFECT, fee_claimed=fee)
        try:
            self.state.set_trust(tx.account, tx.trustee, tx.limit)
        except (TrustLineError, LedgerError):
            return AppliedTransaction(tx, ApplyCode.NO_EFFECT, fee_claimed=fee)
        return AppliedTransaction(tx, ApplyCode.SUCCESS, fee_claimed=fee)

    def _apply_offer_create(self, tx: OfferCreate, fee: int) -> AppliedTransaction:
        offer = Offer(
            owner=tx.account,
            sequence=tx.sequence,
            taker_pays=tx.taker_pays,
            taker_gets=tx.taker_gets,
        )
        try:
            self.state.place_offer(offer)
        except LedgerError:
            return AppliedTransaction(tx, ApplyCode.NO_EFFECT, fee_claimed=fee)
        return AppliedTransaction(tx, ApplyCode.SUCCESS, fee_claimed=fee)

    def _apply_offer_cancel(self, tx: OfferCancel, fee: int) -> AppliedTransaction:
        removed = self.state.cancel_offer(tx.account, tx.offer_sequence)
        code = ApplyCode.SUCCESS if removed else ApplyCode.NO_EFFECT
        return AppliedTransaction(tx, code, fee_claimed=fee)
