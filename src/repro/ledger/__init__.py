"""The distributed-ledger substrate: data model, hashing, and signatures.

This package implements the ledger layer the paper's study reads: accounts
with base58 ``r...`` addresses, XRP and issued (IOU) amounts, trust lines,
exchange offers, the transaction types, and the page chain sealed by
consensus.
"""

from repro.ledger.accounts import (
    ACCOUNT_ZERO,
    AccountID,
    account_from_name,
    decode_account_id,
    encode_account_id,
)
from repro.ledger.amounts import DROPS_PER_XRP, Amount
from repro.ledger.apply import ApplyCode, AppliedTransaction, TransactionApplier
from repro.ledger.crypto import KeyPair, Signature, verify
from repro.ledger.currency import (
    BTC,
    CCK,
    CNY,
    EUR,
    JPY,
    MTL,
    USD,
    XRP,
    Currency,
    Strength,
    eur_value,
    rounding_resolutions,
    strength_of,
)
from repro.ledger.offers import Offer
from repro.ledger.pages import GENESIS_PARENT_HASH, LedgerChain, LedgerPage
from repro.ledger.state import BASE_RESERVE_DROPS, AccountRoot, LedgerState
from repro.ledger.transactions import (
    BASE_FEE_DROPS,
    RIPPLE_EPOCH,
    AccountSet,
    OfferCancel,
    OfferCreate,
    Payment,
    Transaction,
    TrustSet,
    from_ripple_time,
    to_ripple_time,
)
from repro.ledger.trustlines import TrustLine

__all__ = [
    "ACCOUNT_ZERO",
    "AppliedTransaction",
    "ApplyCode",
    "TransactionApplier",
    "AccountID",
    "AccountRoot",
    "AccountSet",
    "Amount",
    "BASE_FEE_DROPS",
    "BASE_RESERVE_DROPS",
    "BTC",
    "CCK",
    "CNY",
    "Currency",
    "DROPS_PER_XRP",
    "EUR",
    "GENESIS_PARENT_HASH",
    "JPY",
    "KeyPair",
    "LedgerChain",
    "LedgerPage",
    "LedgerState",
    "MTL",
    "Offer",
    "OfferCancel",
    "OfferCreate",
    "Payment",
    "RIPPLE_EPOCH",
    "Signature",
    "Strength",
    "Transaction",
    "TrustLine",
    "TrustSet",
    "USD",
    "XRP",
    "account_from_name",
    "decode_account_id",
    "encode_account_id",
    "eur_value",
    "from_ripple_time",
    "rounding_resolutions",
    "strength_of",
    "to_ripple_time",
    "verify",
]
