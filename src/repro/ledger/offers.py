"""Currency-exchange offers — the inventory of Market Makers.

An offer says: "I will *get* up to ``taker_pays`` of one asset and in
exchange *give* up to ``taker_gets`` of another, at the implied rate".  The
naming follows rippled: fields are from the taker's perspective (the taker
pays ``taker_pays`` and gets ``taker_gets``).  Offers are the bridges of the
paper's Section III-C: chains of offers let a USD payment arrive as EUR, and
XRP acts as a universal intermediate asset.

Order books (price-sorted offer queues per asset pair) live in
:mod:`repro.payments.orderbook`; this module defines the offer object itself
and partial-fill accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import OfferError
from repro.ledger.accounts import AccountID
from repro.ledger.amounts import Amount


@dataclass
class Offer:
    """A limit order on a Ripple order book.

    ``quality`` is the taker's price: ``taker_pays / taker_gets`` per unit —
    lower is better for the taker.  Books sort ascending by quality.
    """

    owner: AccountID
    sequence: int
    taker_pays: Amount
    taker_gets: Amount

    def __post_init__(self) -> None:
        if self.taker_pays.is_zero or self.taker_gets.is_zero:
            raise OfferError("offer amounts must be non-zero")
        if self.taker_pays.is_negative or self.taker_gets.is_negative:
            raise OfferError("offer amounts must be positive")
        same_currency = self.taker_pays.currency == self.taker_gets.currency
        same_issuer = self.taker_pays.issuer == self.taker_gets.issuer
        if same_currency and same_issuer:
            raise OfferError("offer must exchange two distinct assets")

    @property
    def book_key(self) -> Tuple[str, str]:
        """(pays currency, gets currency) pair identifying the order book."""
        return (self.taker_pays.currency.code, self.taker_gets.currency.code)

    @property
    def quality(self) -> float:
        """Taker price: how much the taker pays per unit received."""
        return self.taker_pays.to_float() / self.taker_gets.to_float()

    @property
    def is_consumed(self) -> bool:
        """True when the remaining size is dust (fully filled)."""
        return self.taker_gets.to_float() <= 1e-12

    def fill(self, gets_amount: Amount) -> Amount:
        """Consume the offer for ``gets_amount`` of the *gets* asset.

        Returns the corresponding *pays* amount at the offer's rate and
        shrinks both sides proportionally.  Raises :class:`OfferError` when
        asked for more than the remaining size.
        """
        if gets_amount.currency != self.taker_gets.currency:
            raise OfferError("fill currency does not match offer gets side")
        if gets_amount.is_negative:
            raise OfferError("fill amount must be non-negative")
        remaining = self.taker_gets.to_float()
        wanted = gets_amount.to_float()
        if wanted > remaining * (1 + 1e-9):
            raise OfferError(f"fill of {gets_amount} exceeds offer size {self.taker_gets}")
        fraction = min(1.0, wanted / remaining) if remaining > 0 else 0.0
        pays_part = self.taker_pays.scaled(fraction)
        self.taker_pays = self.taker_pays - pays_part
        self.taker_gets = self.taker_gets - gets_amount.min(self.taker_gets)
        return pays_part

    def max_gets_for(self, pays_budget: Amount) -> Amount:
        """Largest *gets* amount obtainable with ``pays_budget``.

        Capped by the offer's remaining size.
        """
        if pays_budget.currency != self.taker_pays.currency:
            raise OfferError("budget currency does not match offer pays side")
        if self.taker_pays.is_zero:
            return self.taker_gets
        fraction = min(1.0, pays_budget.to_float() / self.taker_pays.to_float())
        return self.taker_gets.scaled(fraction)

    def offer_id(self) -> Tuple[AccountID, int]:
        """Stable identity of the offer: (owner, owner sequence number)."""
        return (self.owner, self.sequence)


def better_quality(a: Optional[float], b: Optional[float]) -> bool:
    """True if quality ``a`` beats (is lower than) quality ``b``."""
    if a is None:
        return False
    if b is None:
        return True
    return a < b
