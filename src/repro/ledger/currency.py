"""Currency codes and the market-strength grouping of Table I.

Ripple identifies currencies by three-character codes.  Most are ISO 4217
("USD", "EUR", ...), but the code space is open — anyone can issue IOUs in an
arbitrary code, which is exactly how the paper's spam currencies ("CCK",
"MTL" as used on Ripple) appear near the top of the usage ranking of Fig. 4
despite not being recognized currencies.

Table I of the paper groups currencies into three *strength* classes that
drive the amount-rounding resolutions of the de-anonymization study:

========  ==========================  =======  =======  =======
Strength  Currencies                  Max (m)  Avg (a)  Low (l)
========  ==========================  =======  =======  =======
Powerful  BTC, XAG, XAU, XPT          1e-3     1e-2     1e-1
Medium    CNY, EUR, USD,
          AUD, GBP, JPY               1e1      1e2      1e3
Weak      XRP, CCK, STR, KRW, MTL     1e5      1e6      1e7
========  ==========================  =======  =======  =======
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import InvalidCurrencyError


class Strength(enum.Enum):
    """Market-strength class of a currency (Table I)."""

    POWERFUL = "powerful"
    MEDIUM = "medium"
    WEAK = "weak"


@dataclass(frozen=True, order=True)
class Currency:
    """A three-character Ripple currency code."""

    code: str

    def __post_init__(self) -> None:
        if len(self.code) != 3 or not self.code.isascii():
            raise InvalidCurrencyError(f"currency code must be 3 ASCII chars: {self.code!r}")
        if not self.code.isupper() and not self.code.isdigit():
            raise InvalidCurrencyError(f"currency code must be upper-case: {self.code!r}")

    @property
    def is_xrp(self) -> bool:
        return self.code == "XRP"

    @property
    def is_iso4217(self) -> bool:
        """True if the code is in the ISO 4217 subset we track.

        The paper notes CCK and MTL (as used on Ripple) are *not* recognized
        by the currency-codes standard, hinting they were crafted for spam.
        """
        return self.code in _ISO4217_CODES

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.code


# Well-known instances -------------------------------------------------------

XRP = Currency("XRP")
BTC = Currency("BTC")
USD = Currency("USD")
EUR = Currency("EUR")
CNY = Currency("CNY")
JPY = Currency("JPY")
GBP = Currency("GBP")
AUD = Currency("AUD")
KRW = Currency("KRW")
CAD = Currency("CAD")
NZD = Currency("NZD")
MXN = Currency("MXN")
BRL = Currency("BRL")
ILS = Currency("ILS")
XAU = Currency("XAU")
XAG = Currency("XAG")
XPT = Currency("XPT")
STR = Currency("STR")
LTC = Currency("LTC")
#: The two spam currencies the paper singles out (Figs. 4–6).
CCK = Currency("CCK")
MTL = Currency("MTL")

_ISO4217_CODES = frozenset(
    {
        "USD", "EUR", "CNY", "JPY", "GBP", "AUD", "KRW", "CAD", "NZD",
        "MXN", "BRL", "ILS", "XAU", "XAG", "XPT", "CHF", "SEK", "NOK",
        "DKK", "RUB", "INR", "SGD", "HKD", "TRY", "ZAR", "PLN",
    }
)

#: Strength-class membership from Table I.
_STRENGTH_BY_CODE: Dict[str, Strength] = {}
for _code in ("BTC", "XAG", "XAU", "XPT"):
    _STRENGTH_BY_CODE[_code] = Strength.POWERFUL
for _code in ("CNY", "EUR", "USD", "AUD", "GBP", "JPY"):
    _STRENGTH_BY_CODE[_code] = Strength.MEDIUM
for _code in ("XRP", "CCK", "STR", "KRW", "MTL"):
    _STRENGTH_BY_CODE[_code] = Strength.WEAK

#: Rounding granularities (max, average, low) per strength class — the 10^x
#: column triplets of Table I.
ROUNDING_BY_STRENGTH: Dict[Strength, Tuple[float, float, float]] = {
    Strength.POWERFUL: (1e-3, 1e-2, 1e-1),
    Strength.MEDIUM: (1e1, 1e2, 1e3),
    Strength.WEAK: (1e5, 1e6, 1e7),
}

#: Rough market value of one unit of each currency in EUR, used to aggregate
#: balances for Fig. 7(c) and to classify unlisted currencies by strength.
#: Values reflect mid-2015 magnitudes; only the order of magnitude matters.
EUR_VALUE: Dict[str, float] = {
    "XRP": 0.007,
    "BTC": 220.0,
    "USD": 0.9,
    "EUR": 1.0,
    "CNY": 0.14,
    "JPY": 0.0075,
    "GBP": 1.38,
    "AUD": 0.65,
    "KRW": 0.00077,
    "CAD": 0.68,
    "NZD": 0.59,
    "MXN": 0.055,
    "BRL": 0.26,
    "ILS": 0.23,
    "XAU": 1000.0,
    "XAG": 14.0,
    "XPT": 900.0,
    "STR": 0.002,
    "LTC": 2.7,
    "CCK": 200.0,   # micro-amount profile similar to BTC (paper, Fig. 5)
    "MTL": 1e-9,    # spam currency exchanged in ~1e9 chunks
}


def strength_of(currency: Currency) -> Strength:
    """Return the Table I strength class of ``currency``.

    Currencies not listed in Table I are classified by their approximate
    EUR value when known, and default to MEDIUM otherwise — the analysis
    must be total over the open currency-code space.
    """
    known = _STRENGTH_BY_CODE.get(currency.code)
    if known is not None:
        return known
    value = EUR_VALUE.get(currency.code)
    if value is None:
        return Strength.MEDIUM
    if value >= 10.0:
        return Strength.POWERFUL
    if value <= 0.01:
        return Strength.WEAK
    return Strength.MEDIUM


def rounding_resolutions(currency: Currency) -> Tuple[float, float, float]:
    """The (max, average, low) rounding granularities for ``currency``."""
    return ROUNDING_BY_STRENGTH[strength_of(currency)]


def eur_value(currency: Currency) -> float:
    """Approximate EUR value of one unit of ``currency`` (default 0.1)."""
    return EUR_VALUE.get(currency.code, 0.1)
