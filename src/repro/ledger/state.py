"""Mutable ledger state: accounts, XRP balances, trust lines, and offers.

``LedgerState`` is the authoritative in-memory image of "the current
ledger": the thing transactions mutate and consensus seals page by page.
It provides the low-level primitives (XRP transfers, trust-line updates,
offer placement, fee burning); multi-hop payment semantics live in
:mod:`repro.payments`, which drives these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    InsufficientBalanceError,
    LedgerError,
    TrustLineError,
    UnknownAccountError,
)
from repro.ledger.accounts import AccountID
from repro.ledger.amounts import Amount
from repro.ledger.currency import Currency
from repro.ledger.offers import Offer
from repro.ledger.trustlines import TrustLine

#: Minimum XRP reserve (drops) an account must keep — Ripple's base reserve.
BASE_RESERVE_DROPS = 20 * 10 ** 6


@dataclass
class AccountRoot:
    """Per-account ledger entry: XRP balance (drops) and sequence number.

    ``allows_rippling`` models Ripple's (No)Ripple flag at account
    granularity: when False, payments may start or end at the account but
    cannot *ripple through* it — the default posture of regular users,
    which confines relaying to gateways, hubs, and market makers.
    """

    account: AccountID
    balance_drops: int = 0
    sequence: int = 1
    is_gateway: bool = False
    is_market_maker: bool = False
    allows_rippling: bool = True


TrustKey = Tuple[AccountID, AccountID, str]
OfferKey = Tuple[AccountID, int]
BookKey = Tuple[str, str]
TrustVersionKey = Tuple[AccountID, str]


@dataclass
class CurrencyLineIndex:
    """Per-currency adjacency: the trust lines incident to each account.

    ``ins[x]`` are the lines where others trust ``x`` (candidate new-debt
    payment edges out of ``x``); ``outs[x]`` are the lines where ``x``
    extends credit (candidate settle edges out of ``x``).  Both preserve
    line-creation order, which keeps the path finder's edge-expansion order
    — and therefore every routed payment — identical to a full scan.
    """

    ins: Dict[AccountID, List[TrustLine]] = field(default_factory=dict)
    outs: Dict[AccountID, List[TrustLine]] = field(default_factory=dict)

    def add(self, line: TrustLine) -> None:
        self.ins.setdefault(line.trustee, []).append(line)
        self.outs.setdefault(line.truster, []).append(line)


@dataclass
class LedgerState:
    """The full mutable state of the ledger at some point in history."""

    accounts: Dict[AccountID, AccountRoot] = field(default_factory=dict)
    trustlines: Dict[TrustKey, TrustLine] = field(default_factory=dict)
    offers: Dict[OfferKey, Offer] = field(default_factory=dict)
    _books: Dict[BookKey, List[Offer]] = field(default_factory=dict, repr=False)
    #: Trust lines indexed by truster and by trustee, for path finding.
    _lines_by_truster: Dict[AccountID, List[TrustLine]] = field(
        default_factory=dict, repr=False
    )
    _lines_by_trustee: Dict[AccountID, List[TrustLine]] = field(
        default_factory=dict, repr=False
    )
    #: Lazily built per-currency adjacency indexes, maintained by every
    #: trust mutation after construction (see :meth:`currency_lines`).
    _currency_lines: Dict[str, CurrencyLineIndex] = field(
        default_factory=dict, repr=False
    )
    #: Per-(account, currency) mutation counters: bumped whenever a trust
    #: line incident to the account changes, so graph views can invalidate
    #: only the successor lists that actually went stale.
    _trust_versions: Dict[TrustVersionKey, int] = field(
        default_factory=dict, repr=False
    )
    #: Global counters: any trust-fabric mutation / any order-book mutation.
    trust_generation: int = 0
    book_generation: int = 0
    burned_fee_drops: int = 0
    enforce_reserve: bool = False

    @property
    def generation(self) -> int:
        """Total mutation counter over trust fabric and order books."""
        return self.trust_generation + self.book_generation

    # Accounts ----------------------------------------------------------------

    def create_account(self, account: AccountID, balance_drops: int = 0) -> AccountRoot:
        """Create ``account`` with an initial XRP balance.

        Creating an account in Ripple is done by sending it its first XRP
        payment ("activation", as the paper describes for ``~akhavr``'s
        hubs); callers model that by passing the activation amount here.
        """
        if account in self.accounts:
            raise LedgerError(f"account {account.short()} already exists")
        if balance_drops < 0:
            raise InsufficientBalanceError("initial balance cannot be negative")
        root = AccountRoot(account=account, balance_drops=balance_drops)
        self.accounts[account] = root
        return root

    def account(self, account: AccountID) -> AccountRoot:
        try:
            return self.accounts[account]
        except KeyError:
            raise UnknownAccountError(f"unknown account {account.short()}") from None

    def has_account(self, account: AccountID) -> bool:
        return account in self.accounts

    def xrp_balance(self, account: AccountID) -> int:
        return self.account(account).balance_drops

    def _spendable_drops(self, root: AccountRoot) -> int:
        reserve = BASE_RESERVE_DROPS if self.enforce_reserve else 0
        return root.balance_drops - reserve

    def transfer_xrp(self, sender: AccountID, receiver: AccountID, drops: int) -> None:
        """Move ``drops`` of XRP between existing accounts."""
        if drops < 0:
            raise InsufficientBalanceError("cannot transfer a negative amount")
        src = self.account(sender)
        dst = self.account(receiver)
        if self._spendable_drops(src) < drops:
            raise InsufficientBalanceError(
                f"{sender.short()} holds {src.balance_drops} drops, needs {drops}"
            )
        src.balance_drops -= drops
        dst.balance_drops += drops

    def burn_fee(self, account: AccountID, fee_drops: int) -> None:
        """Destroy ``fee_drops`` from ``account`` — fees leave the economy."""
        root = self.account(account)
        if root.balance_drops < fee_drops:
            raise InsufficientBalanceError(
                f"{account.short()} cannot pay fee of {fee_drops} drops"
            )
        root.balance_drops -= fee_drops
        self.burned_fee_drops += fee_drops

    def next_sequence(self, account: AccountID) -> int:
        """Consume and return the account's next transaction sequence."""
        root = self.account(account)
        seq = root.sequence
        root.sequence += 1
        return seq

    # Trust lines ---------------------------------------------------------------

    def _touch_trust(self, a: AccountID, b: AccountID, code: str) -> None:
        """Record a mutation of the trust fabric between ``a`` and ``b``.

        Bumps the per-endpoint version counters (successor lists of both
        endpoints may have changed capacity) and the global generation.
        """
        self.trust_generation += 1
        versions = self._trust_versions
        key = (a, code)
        versions[key] = versions.get(key, 0) + 1
        key = (b, code)
        versions[key] = versions.get(key, 0) + 1

    def trust_version(self, account: AccountID, code: str) -> int:
        """Mutation counter for trust lines incident to ``account``."""
        return self._trust_versions.get((account, code), 0)

    def currency_lines(self, code: str) -> CurrencyLineIndex:
        """The per-currency adjacency index (built lazily, then live).

        The first query for a currency scans ``trustlines`` once; from then
        on :meth:`set_trust` keeps the index current, so graph views never
        filter the all-currencies line lists again.
        """
        index = self._currency_lines.get(code)
        if index is None:
            index = CurrencyLineIndex()
            for line in self.trustlines.values():
                if line.currency.code == code:
                    index.add(line)
            self._currency_lines[code] = index
        return index

    def set_trust(self, truster: AccountID, trustee: AccountID, limit: Amount) -> TrustLine:
        """Create or update the trust line ``truster -> trustee``."""
        self.account(truster)
        self.account(trustee)
        code = limit.currency.code
        key: TrustKey = (truster, trustee, code)
        line = self.trustlines.get(key)
        if line is None:
            line = TrustLine(truster=truster, trustee=trustee, currency=limit.currency, limit=limit)
            self.trustlines[key] = line
            self._lines_by_truster.setdefault(truster, []).append(line)
            self._lines_by_trustee.setdefault(trustee, []).append(line)
            index = self._currency_lines.get(code)
            if index is not None:
                index.add(line)
        else:
            line.set_limit(limit)
        self._touch_trust(truster, trustee, code)
        return line

    def trust_line(
        self, truster: AccountID, trustee: AccountID, currency: Currency
    ) -> Optional[TrustLine]:
        return self.trustlines.get((truster, trustee, currency.code))

    def lines_trusted_by(self, truster: AccountID) -> List[TrustLine]:
        """All lines where ``truster`` extends credit."""
        return self._lines_by_truster.get(truster, [])

    def lines_trusting(self, trustee: AccountID) -> List[TrustLine]:
        """All lines where others extend credit to ``trustee``."""
        return self._lines_by_trustee.get(trustee, [])

    def close_trust_line(
        self, truster: AccountID, trustee: AccountID, currency: Currency
    ) -> float:
        """Write off and close the line ``truster -> trustee`` (forced unwind).

        The trustee's debt is erased — not repaid — and the credit limit
        withdrawn, so the line stops carrying payments; the truster eats
        the loss.  This is the ledger primitive behind the ADL-style
        unwind cascade.  Returns the face value written off in the line's
        own currency; closing a missing line is a no-op returning 0.0.
        """
        line = self.trustlines.get((truster, trustee, currency.code))
        if line is None:
            return 0.0
        lost = line.write_off()
        self._touch_trust(truster, trustee, currency.code)
        return lost.to_float()

    def iou_balance(self, holder: AccountID, currency: Currency) -> Amount:
        """Net IOU position of ``holder`` in ``currency``: credit − debt."""
        total = Amount.zero(currency)
        for line in self.lines_trusted_by(holder):
            if line.currency == currency:
                total = total + line.balance
        for line in self.lines_trusting(holder):
            if line.currency == currency:
                total = total - line.balance
        return total

    # Payment hops over trust lines ----------------------------------------------

    def hop_capacity(self, payer: AccountID, payee: AccountID, currency: Currency) -> float:
        """Liquidity available for a one-hop IOU payment ``payer -> payee``.

        Capacity = unused limit of payee's trust towards payer (new debt)
        plus the payer's existing credit towards the payee (debt settling).
        """
        capacity = 0.0
        code = currency.code
        trustlines = self.trustlines
        forward = trustlines.get((payee, payer, code))
        if forward is not None:
            capacity += forward._available_float
        backward = trustlines.get((payer, payee, code))
        if backward is not None:
            capacity += backward._balance_float
        return capacity

    def apply_hop(self, payer: AccountID, payee: AccountID, amount: Amount) -> None:
        """Move ``amount`` of IOU value one hop from payer to payee.

        Settles existing debt of the payee towards the payer first, then
        extends new debt of the payer towards the payee; raises
        :class:`TrustLineError` if the combined capacity is insufficient.
        """
        remaining = amount
        code = amount.currency.code
        backward = self.trust_line(payer, payee, amount.currency)
        if backward is not None and backward.balance.is_positive:
            settled = remaining.min(backward.balance)
            backward.settle_debt(settled)
            self._touch_trust(payer, payee, code)
            remaining = remaining - settled
        if remaining.is_zero:
            return
        forward = self.trust_line(payee, payer, amount.currency)
        if forward is None:
            raise TrustLineError(
                f"no trust from {payee.short()} to {payer.short()} in {amount.currency}"
            )
        forward.extend_debt(remaining)
        self._touch_trust(payer, payee, code)

    # Offers ----------------------------------------------------------------------

    def place_offer(self, offer: Offer) -> None:
        """Record an offer and index it into its order book."""
        self.account(offer.owner)
        key = offer.offer_id()
        if key in self.offers:
            raise LedgerError(f"duplicate offer {key}")
        self.offers[key] = offer
        self._books.setdefault(offer.book_key, []).append(offer)
        self.book_generation += 1

    def cancel_offer(self, owner: AccountID, sequence: int) -> bool:
        """Remove an offer; returns False if it was not found."""
        offer = self.offers.pop((owner, sequence), None)
        if offer is None:
            return False
        book = self._books.get(offer.book_key)
        if book is not None and offer in book:
            book.remove(offer)
        self.book_generation += 1
        return True

    def note_offer_fill(self) -> None:
        """Signal that an offer was (partially) consumed or restored.

        Fills mutate :class:`Offer` objects directly (the executor owns the
        journal), so this hook is how book-generation invalidation learns
        about consumption.
        """
        self.book_generation += 1

    def book_offers(self, pays: Currency, gets: Currency) -> List[Offer]:
        """Live offers on the (pays, gets) book, best quality first."""
        book = self._books.get((pays.code, gets.code), [])
        live = [offer for offer in book if not offer.is_consumed]
        if len(live) != len(book):
            self._books[(pays.code, gets.code)] = live
            for offer in book:
                if offer.is_consumed:
                    self.offers.pop(offer.offer_id(), None)
        live.sort(key=lambda o: o.quality)
        return live

    def offers_by_owner(self, owner: AccountID) -> List[Offer]:
        return [offer for offer in self.offers.values() if offer.owner == owner]

    def remove_all_offers_of(self, owner: AccountID) -> int:
        """Cancel every live offer of ``owner`` (market-maker removal)."""
        removed = 0
        for offer in list(self.offers.values()):
            if offer.owner == owner:
                self.cancel_offer(owner, offer.sequence)
                removed += 1
        return removed

    # Iteration ----------------------------------------------------------------

    def iter_trustlines(self) -> Iterator[TrustLine]:
        return iter(self.trustlines.values())

    def total_xrp_drops(self) -> int:
        return sum(root.balance_drops for root in self.accounts.values())
