"""Ledger pages — the blocks of Ripple's distributed ledger.

The ledger is a chain of *pages*; each page seals the set of transactions
that passed a consensus round, together with the close time the paper uses
as the payment timestamp (precision: seconds).  A page is identified by the
hash of its header, which commits to the parent page, the transaction set,
and the close time — so validators signing "a page" (Section IV) are
signing this hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import LedgerError
from repro.ledger.hashing import ledger_page_hash, tx_set_hash
from repro.ledger.transactions import Transaction

#: Hash of the (nonexistent) parent of the genesis page.
GENESIS_PARENT_HASH = b"\x00" * 32


@dataclass(frozen=True)
class LedgerPage:
    """An immutable, sealed page of the distributed ledger."""

    sequence: int
    parent_hash: bytes
    close_time: int
    transactions: Tuple[Transaction, ...]

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise LedgerError("page sequence must be non-negative")
        if len(self.parent_hash) != 32:
            raise LedgerError("parent hash must be 32 bytes")

    @property
    def tx_set_id(self) -> bytes:
        """Order-independent identifier of this page's transaction set."""
        return tx_set_hash([tx.tx_hash for tx in self.transactions])

    def header_bytes(self) -> bytes:
        return b"|".join(
            [
                self.sequence.to_bytes(8, "big"),
                self.parent_hash,
                self.close_time.to_bytes(8, "big"),
                self.tx_set_id,
            ]
        )

    @property
    def page_hash(self) -> bytes:
        """The 256-bit hash validators sign during validation."""
        return ledger_page_hash(self.header_bytes())

    def __len__(self) -> int:
        return len(self.transactions)


@dataclass
class LedgerChain:
    """An append-only chain of validated ledger pages.

    The chain enforces linkage (each page's ``parent_hash`` must match the
    previous page) and monotone close times, and offers iteration over all
    recorded transactions — the access pattern of the paper's 500 GB study.
    """

    pages: List[LedgerPage] = field(default_factory=list)
    _by_hash: Dict[bytes, LedgerPage] = field(default_factory=dict, repr=False)

    @classmethod
    def with_genesis(cls, close_time: int = 0) -> "LedgerChain":
        chain = cls()
        genesis = LedgerPage(
            sequence=0,
            parent_hash=GENESIS_PARENT_HASH,
            close_time=close_time,
            transactions=(),
        )
        chain.pages.append(genesis)
        chain._by_hash[genesis.page_hash] = genesis
        return chain

    @property
    def head(self) -> LedgerPage:
        if not self.pages:
            raise LedgerError("chain is empty")
        return self.pages[-1]

    def append(self, page: LedgerPage) -> None:
        """Append a sealed page, enforcing chain invariants."""
        if not self.pages:
            if page.parent_hash != GENESIS_PARENT_HASH:
                raise LedgerError("first page must descend from genesis parent")
        else:
            head = self.head
            if page.parent_hash != head.page_hash:
                raise LedgerError(
                    f"page {page.sequence} does not link to head {head.sequence}"
                )
            if page.sequence != head.sequence + 1:
                raise LedgerError(
                    f"page sequence {page.sequence} != head+1 ({head.sequence + 1})"
                )
            if page.close_time < head.close_time:
                raise LedgerError("close time must be monotone non-decreasing")
        self.pages.append(page)
        self._by_hash[page.page_hash] = page

    def seal(
        self,
        transactions: Sequence[Transaction],
        close_time: Optional[int] = None,
    ) -> LedgerPage:
        """Build, append, and return the next page for ``transactions``."""
        head = self.head
        page = LedgerPage(
            sequence=head.sequence + 1,
            parent_hash=head.page_hash,
            close_time=head.close_time + 5 if close_time is None else close_time,
            transactions=tuple(transactions),
        )
        self.append(page)
        return page

    def page_by_hash(self, page_hash: bytes) -> Optional[LedgerPage]:
        return self._by_hash.get(page_hash)

    def iter_transactions(self) -> Iterator[Tuple[LedgerPage, Transaction]]:
        """Yield every (page, transaction) pair in chain order."""
        for page in self.pages:
            for tx in page.transactions:
                yield page, tx

    def transaction_count(self) -> int:
        return sum(len(page) for page in self.pages)

    def __len__(self) -> int:
        return len(self.pages)
