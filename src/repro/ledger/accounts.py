"""Ripple account identifiers and the base58 address encoding.

Ripple accounts are identified by a 160-bit value derived from the account's
public key; the human-readable form is a base58check string using Ripple's
own alphabet (which starts with ``r``, so every account address starts with
the letter ``r`` — e.g. ``rp2PaYyy...``).  The paper's de-anonymization study
relies on the fact that these identifiers are random-looking and carry no
semantic information about their owner; we reproduce the encoding exactly so
addresses in our synthetic ledger are indistinguishable in form from real
ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidAddressError
from repro.ledger.hashing import checksum4

#: Ripple's base58 "dictionary": same 58 symbols as Bitcoin's but permuted so
#: that the version byte 0x00 encodes to a leading ``r``.
RIPPLE_ALPHABET = "rpshnaf39wBUDNEGHJKLM4PQRST7VWXYZ2bcdeCg65jkm8oFqi1tuvAxyz"
_ALPHABET_INDEX = {c: i for i, c in enumerate(RIPPLE_ALPHABET)}

#: Version byte prepended to the 20-byte account ID before base58check.
ACCOUNT_ID_VERSION = 0x00


def base58_encode(data: bytes) -> str:
    """Encode ``data`` in Ripple base58 (no checksum)."""
    number = int.from_bytes(data, "big")
    encoded = []
    while number > 0:
        number, rem = divmod(number, 58)
        encoded.append(RIPPLE_ALPHABET[rem])
    # Leading zero bytes encode as the alphabet's zero symbol ('r').
    for byte in data:
        if byte == 0:
            encoded.append(RIPPLE_ALPHABET[0])
        else:
            break
    return "".join(reversed(encoded))


def base58_decode(text: str) -> bytes:
    """Decode Ripple base58 ``text`` (no checksum)."""
    number = 0
    for char in text:
        try:
            number = number * 58 + _ALPHABET_INDEX[char]
        except KeyError:
            raise InvalidAddressError(f"invalid base58 character {char!r}") from None
    body = number.to_bytes((number.bit_length() + 7) // 8, "big")
    # Restore leading zero bytes.
    pad = 0
    for char in text:
        if char == RIPPLE_ALPHABET[0]:
            pad += 1
        else:
            break
    return b"\x00" * pad + body


def encode_account_id(account_id: bytes) -> str:
    """Base58check-encode a 20-byte account ID into an ``r...`` address."""
    if len(account_id) != 20:
        raise InvalidAddressError(f"account ID must be 20 bytes, got {len(account_id)}")
    payload = bytes([ACCOUNT_ID_VERSION]) + account_id
    return base58_encode(payload + checksum4(payload))


def decode_account_id(address: str) -> bytes:
    """Decode an ``r...`` address back to its 20-byte account ID.

    Raises :class:`InvalidAddressError` on a bad version byte, length, or
    checksum — a single flipped character is detected with probability
    ``1 - 2^-32``.
    """
    raw = base58_decode(address)
    if len(raw) != 25:
        raise InvalidAddressError(f"address decodes to {len(raw)} bytes, expected 25")
    payload, check = raw[:-4], raw[-4:]
    if checksum4(payload) != check:
        raise InvalidAddressError(f"bad checksum in address {address!r}")
    if payload[0] != ACCOUNT_ID_VERSION:
        raise InvalidAddressError(f"bad version byte {payload[0]:#x}")
    return payload[1:]


@dataclass(frozen=True, order=True, eq=True)
class AccountID:
    """A 160-bit Ripple account identifier.

    Instances are immutable, hashable, and totally ordered (by raw bytes), so
    they can key dictionaries and sort deterministically.  The hash is
    computed once at construction: account IDs key the ledger's account,
    trust-line, and version dictionaries, and the path finder's BFS hashes
    the same few hub accounts hundreds of times per payment — a cached slot
    turns each of those into one attribute read.
    """

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != 20:
            raise InvalidAddressError(f"account ID must be 20 bytes, got {len(self.raw)}")
        object.__setattr__(self, "_hash", hash(self.raw))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __getstate__(self):
        # _hash is salted per process (bytes hashing uses SipHash with a
        # per-interpreter key), so it must never travel in a pickle — spawn
        # workers would inherit a stale hash and corrupt every dict lookup.
        return {"raw": self.raw}

    def __setstate__(self, state):
        object.__setattr__(self, "raw", state["raw"])
        object.__setattr__(self, "_hash", hash(state["raw"]))

    @classmethod
    def from_public_key(cls, public_key: bytes) -> "AccountID":
        """Derive the account ID as RIPEMD160(SHA256(pubkey)) — or, where a
        RIPEMD-160 implementation is unavailable, a truncated double SHA-256
        with a domain tag (same 160-bit, collision-resistant shape)."""
        inner = hashlib.sha256(public_key).digest()
        try:
            digest = hashlib.new("ripemd160", inner).digest()
        except ValueError:
            digest = hashlib.sha256(b"ripemd160-fallback" + inner).digest()[:20]
        return cls(digest)

    @classmethod
    def from_address(cls, address: str) -> "AccountID":
        return cls(decode_account_id(address))

    @classmethod
    def from_seed(cls, seed: bytes) -> "AccountID":
        """Deterministic account ID from arbitrary seed bytes (simulation)."""
        return cls(hashlib.sha256(b"repro-account" + seed).digest()[:20])

    @property
    def address(self) -> str:
        """The base58check ``r...`` form of this account ID."""
        return encode_account_id(self.raw)

    def short(self, head: int = 6, tail: int = 6) -> str:
        """Abbreviated address like ``rp2PaY...X1mEx7`` as used in the paper's
        figures."""
        addr = self.address
        if len(addr) <= head + tail + 3:
            return addr
        return f"{addr[:head]}...{addr[-tail:]}"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.address

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"AccountID({self.address})"


#: The special account that initially holds all XRP.  Its 20-byte ID is all
#: zeros; the paper observes >1M spam payments sent to it because its secret
#: key is public.
ACCOUNT_ZERO = AccountID(b"\x00" * 20)


def account_from_name(name: str, namespace: Optional[str] = None) -> AccountID:
    """Deterministically mint an account ID from a human-readable name.

    The synthetic generator uses this so that runs are reproducible and
    well-known actors (gateways, the gambling service, ...) keep stable
    addresses across experiments.
    """
    tag = f"{namespace or 'default'}:{name}".encode()
    return AccountID.from_seed(tag)
