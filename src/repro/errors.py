"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  Subsystems define narrower
classes below; modules never raise bare ``ValueError``/``RuntimeError`` for
domain failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class LedgerError(ReproError):
    """Base class for ledger-state and data-model errors."""


class InvalidAddressError(LedgerError):
    """A Ripple address failed base58/checksum validation."""


class InvalidCurrencyError(LedgerError):
    """A currency code is malformed (not three ASCII characters)."""


class InvalidAmountError(LedgerError):
    """An amount is malformed, out of range, or mixes currencies."""


class UnknownAccountError(LedgerError):
    """An operation referenced an account that does not exist in state."""


class InsufficientBalanceError(LedgerError):
    """An account attempted to spend more than its available balance."""


class TrustLineError(LedgerError):
    """A trust-line operation was invalid (self-trust, bad limit, ...)."""


class TransactionError(ReproError):
    """Base class for transaction construction/application failures."""


class InvalidTransactionError(TransactionError):
    """A transaction failed static validation (malformed fields)."""


class SignatureError(TransactionError):
    """A cryptographic signature failed to verify."""


class PaymentError(ReproError):
    """Base class for payment-engine failures."""


class NoPathError(PaymentError):
    """No usable payment path exists between sender and receiver."""


class PathDryError(PaymentError):
    """A candidate path exists but carries insufficient liquidity."""


class OfferError(PaymentError):
    """An order-book operation was invalid."""


class ConsensusError(ReproError):
    """Base class for consensus-protocol failures."""


class QuorumError(ConsensusError):
    """A quorum/threshold configuration is unsatisfiable."""


class StreamError(ReproError):
    """Base class for validation-stream collection failures."""


class SyntheticError(ReproError):
    """Base class for synthetic-history generation failures."""


class AnalysisError(ReproError):
    """Base class for analysis/dataset failures."""


class IngestError(AnalysisError):
    """An archive line failed parsing or schema validation on ingest.

    Carries the 1-based line number of the offending record so a 500 GB
    download can be repaired without bisecting it by hand.
    """

    def __init__(self, message: str, line_number: int = 0):
        super().__init__(message)
        self.line_number = line_number


class QuarantineOverflowError(IngestError):
    """Lenient ingest aborted: too large a fraction of lines was bad."""


class IntegrityError(AnalysisError):
    """On-disk data failed checksum/manifest verification.

    Raised when a sidecar manifest disagrees with the bytes actually on
    disk — a truncated download, a bit flip, or a crash that outran the
    write path.  (Subclasses :class:`AnalysisError` so existing boundary
    handlers keep working; it is a :class:`ReproError` like everything
    else.)
    """
