"""Deprecated aliases for the artifact renderers.

The renderers moved to :mod:`repro.api.render` when the artifact registry
(:mod:`repro.api`) was introduced; import them from there.  This module
re-exports the old names so existing callers keep working, but importing
it warns — in-tree code and the shipped examples/benchmarks have all
moved to :mod:`repro.api`, and CI runs with the warning escalated to an
error for first-party modules.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.analysis.report is deprecated; import the renderers from "
    "repro.api (repro.api.render) instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.api.render import (  # noqa: E402,F401
    _bar,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_table2,
)

__all__ = [
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_table2",
]
