"""Deprecated aliases for the artifact renderers.

The renderers moved to :mod:`repro.api.render` when the artifact registry
(:mod:`repro.api`) was introduced; import them from there.  This module
re-exports the old names so existing callers keep working.
"""

from __future__ import annotations

from repro.api.render import (  # noqa: F401
    _bar,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_table2,
)

__all__ = [
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_table2",
]
