"""Payment-path structure (Fig. 6): hop counts and parallel paths.

Of the paper's 23M payments, 13M are direct XRP transfers; the remaining
10M traverse trust lines.  Fig. 6(a) histograms those by intermediate-hop
count (decreasing, with a 3.3M spike at exactly 8 hops — the MTL spam —
and a curiosity at 44); Fig. 6(b) histograms by parallel-path count (mass
at 1–4; the MTL spam pinned at exactly 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.dataset import TransactionDataset


@dataclass(frozen=True)
class PathStructure:
    """The Fig. 6 pair of histograms plus headline shares."""

    hops_histogram: Dict[int, int]
    parallel_histogram: Dict[int, int]
    multi_hop_payments: int
    direct_xrp_payments: int

    def hop_share(self, hops: int) -> float:
        if not self.multi_hop_payments:
            return 0.0
        return self.hops_histogram.get(hops, 0) / self.multi_hop_payments

    def parallel_share(self, paths: int) -> float:
        if not self.multi_hop_payments:
            return 0.0
        return self.parallel_histogram.get(paths, 0) / self.multi_hop_payments

    def modal_spam_hop(self) -> int:
        """The non-organic spike: the hop count whose mass most exceeds a
        monotone-decreasing fit of its neighbours."""
        best_hop, best_excess = 0, 0.0
        for hops, count in self.hops_histogram.items():
            if hops < 2:
                continue
            left = self.hops_histogram.get(hops - 1, 0)
            right = self.hops_histogram.get(hops + 1, 0)
            excess = count - max(left, right)
            if excess > best_excess:
                best_hop, best_excess = hops, float(excess)
        return best_hop


def path_structure(dataset: TransactionDataset) -> PathStructure:
    """Compute Fig. 6 over the multi-hop payment population."""
    multi = dataset.multi_hop_mask()
    hops = dataset.intermediate_hops[multi]
    parallel = dataset.parallel_paths[multi]
    hop_values, hop_counts = np.unique(hops, return_counts=True)
    par_values, par_counts = np.unique(parallel, return_counts=True)
    return PathStructure(
        hops_histogram={int(v): int(c) for v, c in zip(hop_values, hop_counts)},
        parallel_histogram={int(v): int(c) for v, c in zip(par_values, par_counts)},
        multi_hop_payments=int(multi.sum()),
        direct_xrp_payments=int(dataset.is_xrp_direct.sum()),
    )


def spam_hop_attribution(dataset: TransactionDataset, hops: int) -> Dict[str, int]:
    """Which currencies produce the payments at exactly ``hops`` hops.

    The paper traced the 8-hop spike to 3.3M MTL transactions; this is the
    equivalent drill-down.
    """
    multi = dataset.multi_hop_mask()
    at_hops = multi & (dataset.intermediate_hops == hops)
    out: Dict[str, int] = {}
    for currency_id in np.unique(dataset.currency_ids[at_hops]):
        code = dataset.currencies[int(currency_id)]
        out[code] = int(
            np.sum(at_hops & (dataset.currency_ids == currency_id))
        )
    return dict(sorted(out.items(), key=lambda kv: -kv[1]))
