"""Survival functions of exchanged amounts (Fig. 5).

For a currency, the survival function S(x) is the fraction of its payments
exchanging an amount *larger* than x.  The paper reads several findings off
these curves: EUR and USD nearly coincide; BTC (strong) and CCK live in the
micro-amount regime; MTL's curve is a cliff at ~10^9 — the spam signature;
"Global" is the currency-unaware mixture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.dataset import TransactionDataset
from repro.errors import AnalysisError

#: The x-grid of Fig. 5 (log-spaced from 1e-4 to 1e12).
DEFAULT_GRID = tuple(float(x) for x in np.logspace(-4, 12, 65))

#: Currencies Fig. 5 plots, plus the currency-unaware "Global" curve.
FIGURE5_CURRENCIES = ("BTC", "CCK", "CNY", "EUR", "MTL", "USD", "XRP")


@dataclass(frozen=True)
class SurvivalCurve:
    """One curve of Fig. 5."""

    label: str
    grid: Sequence[float]
    values: Sequence[float]
    samples: int

    def at(self, x: float) -> float:
        """Interpolated S(x) (step interpolation, as an ECDF complement)."""
        grid = np.asarray(self.grid)
        values = np.asarray(self.values)
        index = int(np.searchsorted(grid, x, side="right")) - 1
        if index < 0:
            return 1.0
        return float(values[min(index, len(values) - 1)])

    def median(self) -> Optional[float]:
        """Amount where survival crosses 0.5 (None for empty curves)."""
        values = np.asarray(self.values)
        below = np.flatnonzero(values <= 0.5)
        if len(below) == 0 or self.samples == 0:
            return None
        return float(np.asarray(self.grid)[below[0]])


def survival_curve(
    amounts: np.ndarray, label: str, grid: Sequence[float] = DEFAULT_GRID
) -> SurvivalCurve:
    data = np.sort(np.asarray(amounts, dtype=float))
    if data.size == 0:
        return SurvivalCurve(label=label, grid=grid, values=[0.0] * len(grid), samples=0)
    positions = np.searchsorted(data, np.asarray(grid), side="right")
    values = 1.0 - positions / data.size
    return SurvivalCurve(
        label=label, grid=grid, values=values.tolist(), samples=int(data.size)
    )


def figure5_curves(
    dataset: TransactionDataset,
    currencies: Sequence[str] = FIGURE5_CURRENCIES,
    grid: Sequence[float] = DEFAULT_GRID,
) -> Dict[str, SurvivalCurve]:
    """All Fig. 5 curves keyed by label (including 'Global')."""
    curves: Dict[str, SurvivalCurve] = {
        "Global": survival_curve(dataset.amounts, "Global", grid)
    }
    for code in currencies:
        mask = dataset.rows_for_currency(code)
        curves[code] = survival_curve(dataset.amounts[mask], code, grid)
    return curves


def curve_distance(a: SurvivalCurve, b: SurvivalCurve) -> float:
    """Max vertical gap between two curves (0 = identical shape).

    Used to assert the paper's 'EUR and USD are remarkably similar' and to
    verify CCK tracks BTC's micro-transaction profile.
    """
    if list(a.grid) != list(b.grid):
        raise AnalysisError("curves must share a grid")
    return float(np.max(np.abs(np.asarray(a.values) - np.asarray(b.values))))
