"""Survival functions of exchanged amounts (Fig. 5).

For a currency, the survival function S(x) is the fraction of its payments
exchanging an amount *larger* than x.  The paper reads several findings off
these curves: EUR and USD nearly coincide; BTC (strong) and CCK live in the
micro-amount regime; MTL's curve is a cliff at ~10^9 — the spam signature;
"Global" is the currency-unaware mixture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.dataset import TransactionDataset
from repro.errors import AnalysisError

#: The x-grid of Fig. 5 (log-spaced from 1e-4 to 1e12).
DEFAULT_GRID = tuple(float(x) for x in np.logspace(-4, 12, 65))

#: Currencies Fig. 5 plots, plus the currency-unaware "Global" curve.
FIGURE5_CURRENCIES = ("BTC", "CCK", "CNY", "EUR", "MTL", "USD", "XRP")


@dataclass(frozen=True)
class SurvivalCurve:
    """One curve of Fig. 5."""

    label: str
    grid: Sequence[float]
    values: Sequence[float]
    samples: int

    def at(self, x: float) -> float:
        """Interpolated S(x) (step interpolation, as an ECDF complement)."""
        grid = np.asarray(self.grid)
        values = np.asarray(self.values)
        index = int(np.searchsorted(grid, x, side="right")) - 1
        if index < 0:
            return 1.0
        return float(values[min(index, len(values) - 1)])

    def median(self) -> Optional[float]:
        """Amount where survival crosses 0.5 (None for empty curves)."""
        values = np.asarray(self.values)
        below = np.flatnonzero(values <= 0.5)
        if len(below) == 0 or self.samples == 0:
            return None
        return float(np.asarray(self.grid)[below[0]])


def survival_curve(
    amounts: np.ndarray, label: str, grid: Sequence[float] = DEFAULT_GRID
) -> SurvivalCurve:
    data = np.sort(np.asarray(amounts, dtype=float))
    if data.size == 0:
        return SurvivalCurve(label=label, grid=grid, values=[0.0] * len(grid), samples=0)
    positions = np.searchsorted(data, np.asarray(grid), side="right")
    values = 1.0 - positions / data.size
    return SurvivalCurve(
        label=label, grid=grid, values=values.tolist(), samples=int(data.size)
    )


def figure5_curves(
    dataset: TransactionDataset,
    currencies: Sequence[str] = FIGURE5_CURRENCIES,
    grid: Sequence[float] = DEFAULT_GRID,
) -> Dict[str, SurvivalCurve]:
    """All Fig. 5 curves keyed by label (including 'Global')."""
    curves: Dict[str, SurvivalCurve] = {
        "Global": survival_curve(dataset.amounts, "Global", grid)
    }
    for code in currencies:
        mask = dataset.rows_for_currency(code)
        curves[code] = survival_curve(dataset.amounts[mask], code, grid)
    return curves


# Sharded execution ---------------------------------------------------------


def figure5_shard_partial(
    dataset: TransactionDataset,
    currencies: Sequence[str] = FIGURE5_CURRENCIES,
    grid: Sequence[float] = DEFAULT_GRID,
) -> Dict[str, Tuple[np.ndarray, int]]:
    """Per-shard ECDF counts: label -> (#amounts <= x per grid point, n).

    The survival value is ``1 - positions/n``; ``positions`` is a plain
    count of shard amounts at or below each grid point, so partials from
    any shard partition sum to exactly the integers the serial
    :func:`survival_curve` derives from the full sorted array.
    """
    grid_array = np.asarray(grid, dtype=float)

    def counts(amounts: np.ndarray) -> Tuple[np.ndarray, int]:
        data = np.sort(np.asarray(amounts, dtype=float))
        positions = np.searchsorted(data, grid_array, side="right")
        return positions.astype(np.int64), int(data.size)

    partial = {"Global": counts(dataset.amounts)}
    for code in currencies:
        mask = dataset.rows_for_currency(code)
        partial[code] = counts(dataset.amounts[mask])
    return partial


def merge_figure5_partials(
    partials: Sequence[Dict[str, Tuple[np.ndarray, int]]],
    grid: Sequence[float] = DEFAULT_GRID,
) -> Dict[str, SurvivalCurve]:
    """Sum per-shard counts and derive the curves (order-independent).

    Bit-for-bit equal to :func:`figure5_curves`: the summed integer counts
    match the serial ``searchsorted`` positions exactly, and the final
    ``1 - positions/n`` is the same single float division.
    """
    if not partials:
        raise AnalysisError("no shard partials to merge")
    labels = list(partials[0])
    curves: Dict[str, SurvivalCurve] = {}
    for label in labels:
        positions = np.zeros(len(grid), dtype=np.int64)
        samples = 0
        for partial in partials:
            shard_positions, shard_samples = partial[label]
            positions += shard_positions
            samples += shard_samples
        if samples == 0:
            values = [0.0] * len(grid)
        else:
            values = (1.0 - positions / samples).tolist()
        curves[label] = SurvivalCurve(
            label=label, grid=grid, values=values, samples=samples
        )
    return curves


def curve_distance(a: SurvivalCurve, b: SurvivalCurve) -> float:
    """Max vertical gap between two curves (0 = identical shape).

    Used to assert the paper's 'EUR and USD are remarkably similar' and to
    verify CCK tracks BTC's micro-transaction profile.
    """
    if list(a.grid) != list(b.grid):
        raise AnalysisError("curves must share a grid")
    return float(np.max(np.abs(np.asarray(a.values) - np.asarray(b.values))))
