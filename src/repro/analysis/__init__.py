"""Ledger analytics: the appendix studies and shared dataset machinery."""

from repro.analysis.archive import dump_archive, iter_archive, load_archive
from repro.analysis.export import (
    export_figure2,
    export_figure3,
    export_figure4,
    export_figure5,
    export_figure6,
    export_figure7,
    export_table2,
)
from repro.analysis.population import (
    PopulationStats,
    growth_is_increasing,
    monthly_volume,
    population_stats,
    top_senders,
)
from repro.analysis.currencies import (
    CurrencyUsage,
    currency_ranking,
    rank_of,
    share_of,
    unrecognized_in_top,
)
from repro.analysis.dataset import TransactionDataset
from repro.analysis.gateways import (
    HubProfile,
    balance_eur,
    coverage_of_top,
    gateway_count_in_top,
    intermediary_counts,
    top_intermediaries,
    trust_profile_eur,
)
from repro.analysis.market_makers import (
    OfferConcentration,
    ReplayResult,
    ReplayRow,
    offer_concentration,
    replay_without_market_makers,
    table2,
)
from repro.analysis.paths import PathStructure, path_structure, spam_hop_attribution
from repro.analysis.timeseries import (
    Burst,
    bucketize,
    campaign_window,
    concentration_in_time,
    currency_series,
    detect_bursts,
)
from repro.analysis.survival import (
    DEFAULT_GRID,
    FIGURE5_CURRENCIES,
    SurvivalCurve,
    curve_distance,
    figure5_curves,
    survival_curve,
)
from repro.analysis.validators import (
    PeriodSummary,
    classify,
    figure2_rows,
    summarize,
)

__all__ = [
    "CurrencyUsage",
    "PopulationStats",
    "Burst",
    "bucketize",
    "campaign_window",
    "concentration_in_time",
    "currency_series",
    "detect_bursts",
    "export_figure2",
    "export_figure3",
    "export_figure4",
    "export_figure5",
    "export_figure6",
    "export_figure7",
    "export_table2",
    "growth_is_increasing",
    "monthly_volume",
    "population_stats",
    "top_senders",
    "dump_archive",
    "iter_archive",
    "load_archive",
    "DEFAULT_GRID",
    "FIGURE5_CURRENCIES",
    "HubProfile",
    "OfferConcentration",
    "PathStructure",
    "PeriodSummary",
    "ReplayResult",
    "ReplayRow",
    "SurvivalCurve",
    "TransactionDataset",
    "balance_eur",
    "classify",
    "coverage_of_top",
    "currency_ranking",
    "curve_distance",
    "figure2_rows",
    "figure5_curves",
    "gateway_count_in_top",
    "intermediary_counts",
    "offer_concentration",
    "path_structure",
    "rank_of",
    "replay_without_market_makers",
    "share_of",
    "spam_hop_attribution",
    "summarize",
    "survival_curve",
    "table2",
    "top_intermediaries",
    "trust_profile_eur",
    "unrecognized_in_top",
]
