"""Population analytics: users, activity, and system growth.

The appendix reports: "As of August 2015, Ripple counted more than 165K
users, +55K of which were actively participating".  This module computes
the equivalent statistics over a history — registered vs. active accounts,
the activity distribution (heavy-tailed, like every payment network), and
the growth of payment volume over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.dataset import TransactionDataset
from repro.errors import AnalysisError

SECONDS_PER_MONTH = 30 * 86400


@dataclass(frozen=True)
class PopulationStats:
    """The headline population numbers of appendix D."""

    accounts_seen: int
    active_senders: int
    active_share: float
    payments_per_active_sender: float
    #: Gini-style concentration of sending activity in [0, 1].
    activity_concentration: float


def population_stats(dataset: TransactionDataset, min_payments: int = 1) -> PopulationStats:
    """Compute who participates and how unequally.

    ``active`` means the account *sent* at least ``min_payments`` payments
    (the paper's "actively participating" — submitting transactions).
    """
    if len(dataset) == 0:
        raise AnalysisError("empty dataset")
    seen = np.union1d(
        np.unique(dataset.sender_ids), np.unique(dataset.destination_ids)
    )
    counts = np.bincount(dataset.sender_ids, minlength=len(dataset.accounts))
    sender_counts = counts[counts >= min_payments]
    active = int(len(sender_counts))
    return PopulationStats(
        accounts_seen=int(len(seen)),
        active_senders=active,
        active_share=active / len(seen) if len(seen) else 0.0,
        payments_per_active_sender=float(sender_counts.mean()) if active else 0.0,
        activity_concentration=_gini(sender_counts),
    )


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, 1 = one hog)."""
    if values.size == 0:
        return 0.0
    sorted_values = np.sort(values.astype(float))
    n = sorted_values.size
    cumulative = np.cumsum(sorted_values)
    total = cumulative[-1]
    if total == 0:
        return 0.0
    # Standard formula: 1 + 1/n - 2 * sum((n + 1 - i) x_i) / (n * total)
    index = np.arange(1, n + 1)
    return float((2 * np.sum(index * sorted_values) - (n + 1) * total) / (n * total))


# Sharded execution ---------------------------------------------------------


@dataclass(frozen=True)
class PopulationPartial:
    """One shard's mergeable population counts.

    ``sender_counts`` is a full-length (global factorization) bincount of
    the shard's senders; ``seen_mask`` flags accounts appearing as sender
    or destination; ``month_counts`` maps month bucket to payments.  All
    three merge by plain integer addition / boolean OR.
    """

    sender_counts: np.ndarray
    seen_mask: np.ndarray
    month_counts: Dict[int, int]


def population_shard_partial(dataset: TransactionDataset) -> PopulationPartial:
    """Map step: count one shard's senders, participants, and months."""
    n_accounts = len(dataset.accounts)
    sender_counts = np.bincount(dataset.sender_ids, minlength=n_accounts)
    seen_mask = np.zeros(n_accounts, dtype=bool)
    seen_mask[dataset.sender_ids] = True
    seen_mask[dataset.destination_ids] = True
    months, counts = np.unique(
        dataset.timestamps // SECONDS_PER_MONTH, return_counts=True
    )
    month_counts = {int(month): int(count) for month, count in zip(months, counts)}
    return PopulationPartial(
        sender_counts=sender_counts.astype(np.int64),
        seen_mask=seen_mask,
        month_counts=month_counts,
    )


def merge_population_partials(
    partials: Sequence[PopulationPartial], min_payments: int = 1
) -> Tuple[PopulationStats, List[Tuple[int, int]]]:
    """Reduce shard partials to ``(PopulationStats, monthly volume)``.

    The merged bincount and participation mask are exactly the full
    dataset's, so the derived statistics (shares, mean, Gini) come out of
    the same integer inputs as :func:`population_stats` — bit-for-bit.
    """
    if not partials:
        raise AnalysisError("no shard partials to merge")
    sender_counts = np.sum([p.sender_counts for p in partials], axis=0)
    seen_mask = np.logical_or.reduce([p.seen_mask for p in partials])
    month_counts: Dict[int, int] = {}
    for partial in partials:
        for month, count in partial.month_counts.items():
            month_counts[month] = month_counts.get(month, 0) + count
    seen = int(seen_mask.sum())
    active_counts = sender_counts[sender_counts >= min_payments]
    active = int(len(active_counts))
    stats = PopulationStats(
        accounts_seen=seen,
        active_senders=active,
        active_share=active / seen if seen else 0.0,
        payments_per_active_sender=(
            float(active_counts.mean()) if active else 0.0
        ),
        activity_concentration=_gini(active_counts),
    )
    monthly = [(month, month_counts[month]) for month in sorted(month_counts)]
    return stats, monthly


def monthly_volume(dataset: TransactionDataset) -> List[Tuple[int, int]]:
    """(month bucket, payment count) pairs in chronological order.

    The growth curve: Ripple's volume rises over its first three years,
    which is why the generator's arrival process is non-homogeneous.
    """
    months = dataset.timestamps // SECONDS_PER_MONTH
    values, counts = np.unique(months, return_counts=True)
    return [(int(month), int(count)) for month, count in zip(values, counts)]


def growth_is_increasing(dataset: TransactionDataset, halves_ratio: float = 1.05) -> bool:
    """True when the second half of history carries ≥ ``halves_ratio`` times
    the first half's payments — the macroscopic growth signal.

    The default ratio is modest because the spam flows (CCK, MTL) are
    deliberately front/mid-loaded, which partially offsets the organic
    growth of the legitimate flows.
    """
    midpoint = (int(dataset.timestamps.min()) + int(dataset.timestamps.max())) // 2
    first = int((dataset.timestamps <= midpoint).sum())
    second = len(dataset) - first
    if first == 0:
        return True
    return second / first >= halves_ratio


def top_senders(
    dataset: TransactionDataset, top_k: int = 10
) -> List[Tuple[int, int]]:
    """(sender id, payments) for the most active senders."""
    counts = np.bincount(dataset.sender_ids, minlength=len(dataset.accounts))
    order = np.argsort(-counts)[:top_k]
    return [(int(index), int(counts[index])) for index in order if counts[index] > 0]


def new_accounts_per_month(dataset: TransactionDataset) -> Dict[int, int]:
    """First-appearance month of every account (registration proxy)."""
    first_seen: Dict[int, int] = {}
    months = dataset.timestamps // SECONDS_PER_MONTH
    for row in np.argsort(dataset.timestamps, kind="stable"):
        for account_id in (int(dataset.sender_ids[row]), int(dataset.destination_ids[row])):
            if account_id not in first_seen:
                first_seen[account_id] = int(months[row])
    out: Dict[int, int] = {}
    for month in first_seen.values():
        out[month] = out.get(month, 0) + 1
    return dict(sorted(out.items()))
