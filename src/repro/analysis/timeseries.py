"""Time-series analytics: volume curves and spam-burst detection.

The paper dates its spam findings informally ("a gambling website launched
in 2015", a MTL campaign that "did not succeed" as a DoS).  This module
makes the dating mechanical: per-currency activity curves over time and a
simple burst detector that locates campaign windows — the tool an analyst
would run to answer "when did CCK/MTL actually happen?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.dataset import TransactionDataset
from repro.errors import AnalysisError

SECONDS_PER_WEEK = 7 * 86400


@dataclass(frozen=True)
class Burst:
    """A detected activity burst of one series."""

    start: int
    end: int
    peak_bucket: int
    peak_count: int
    total_count: int

    @property
    def duration_seconds(self) -> int:
        return self.end - self.start


def bucketize(
    timestamps: np.ndarray, bucket_seconds: int = SECONDS_PER_WEEK
) -> Tuple[np.ndarray, np.ndarray]:
    """(bucket start times, counts) over the full span of ``timestamps``."""
    if len(timestamps) == 0:
        raise AnalysisError("no timestamps to bucketize")
    start = (int(timestamps.min()) // bucket_seconds) * bucket_seconds
    end = int(timestamps.max())
    edges = np.arange(start, end + 2 * bucket_seconds, bucket_seconds)
    counts, _ = np.histogram(timestamps, bins=edges)
    return edges[:-1], counts


def currency_series(
    dataset: TransactionDataset,
    code: str,
    bucket_seconds: int = SECONDS_PER_WEEK,
) -> Tuple[np.ndarray, np.ndarray]:
    """Weekly payment counts for one currency, on the global time grid."""
    grid, _ = bucketize(dataset.timestamps, bucket_seconds)
    mask = dataset.rows_for_currency(code)
    counts, _ = np.histogram(
        dataset.timestamps[mask],
        bins=np.append(grid, grid[-1] + bucket_seconds),
    )
    return grid, counts


def detect_bursts(
    grid: np.ndarray,
    counts: np.ndarray,
    threshold_factor: float = 3.0,
    min_buckets: int = 1,
) -> List[Burst]:
    """Find contiguous windows where activity exceeds its typical level.

    A bucket is *hot* when its count exceeds ``threshold_factor`` times the
    median positive bucket; consecutive hot buckets merge into one burst.
    Robust to the overall growth trend because the comparison is against
    the median, not the mean.
    """
    if len(grid) != len(counts):
        raise AnalysisError("grid/count length mismatch")
    positive = counts[counts > 0]
    if positive.size == 0:
        return []
    typical = float(np.median(positive))
    hot = counts > threshold_factor * max(typical, 1.0)
    bursts: List[Burst] = []
    run_start: Optional[int] = None
    bucket_seconds = int(grid[1] - grid[0]) if len(grid) > 1 else SECONDS_PER_WEEK
    for index in range(len(counts) + 1):
        is_hot = index < len(counts) and hot[index]
        if is_hot and run_start is None:
            run_start = index
        elif not is_hot and run_start is not None:
            run = slice(run_start, index)
            if index - run_start >= min_buckets:
                peak = run_start + int(np.argmax(counts[run]))
                bursts.append(
                    Burst(
                        start=int(grid[run_start]),
                        end=int(grid[index - 1]) + bucket_seconds,
                        peak_bucket=int(grid[peak]),
                        peak_count=int(counts[peak]),
                        total_count=int(counts[run].sum()),
                    )
                )
            run_start = None
    return bursts


def campaign_window(
    dataset: TransactionDataset, code: str, coverage: float = 0.9
) -> Optional[Tuple[int, int]]:
    """The tightest window containing ``coverage`` of a currency's payments.

    For a campaign currency (MTL), this pins the attack to its dates; for
    an organic currency the window spans most of the history.
    """
    mask = dataset.rows_for_currency(code)
    times = np.sort(dataset.timestamps[mask])
    if times.size == 0:
        return None
    tail = (1.0 - coverage) / 2
    low = int(times[int(tail * (times.size - 1))])
    high = int(times[int((1 - tail) * (times.size - 1))])
    return low, high


def concentration_in_time(dataset: TransactionDataset, code: str) -> float:
    """Fraction of the history's span that holds 90 % of a currency's
    payments — near 0 for a campaign, near 0.9 for steady traffic."""
    window = campaign_window(dataset, code, coverage=0.9)
    if window is None:
        return 0.0
    span = int(dataset.timestamps.max()) - int(dataset.timestamps.min())
    if span <= 0:
        return 0.0
    return (window[1] - window[0]) / span
