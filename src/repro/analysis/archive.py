"""Ledger-archive I/O: dump a transaction history to disk and read it back.

The paper's pipeline starts with "an ad-hoc Ripple client that downloaded
more than 500 GB worth of data from the Ripple's distributed ledger".  This
module is the equivalent artifact boundary for the reproduction: a history
can be exported to a gzip-compressed JSONL archive (one payment per line,
exactly the ⟨S, A, T, C, D⟩ + path fields the study extracts) and re-read
later without re-running the generator — so expensive analyses can run on a
frozen dump, the way the authors' did.

The format is deliberately boring and stable:

    {"i": 17, "t": 472230405, "s": "rG9k...", "d": "r4HU...",
     "c": "USD", "a": 4.5, "x": false, "cc": false, "h": 1, "p": 1,
     "via": ["rPpS..."], "ok": true, "k": "fiat"}
"""

from __future__ import annotations

import gzip
import json
import os
from typing import IO, Iterable, Iterator, List, Sequence, Union

from repro.errors import AnalysisError
from repro.ledger.accounts import AccountID
from repro.synthetic.records import TransactionRecord

ARCHIVE_VERSION = 1


def _open_write(path: str) -> IO[str]:
    if path.endswith(".gz"):
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: str) -> IO[str]:
    if path.endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def record_to_json(record: TransactionRecord) -> dict:
    """Flatten one payment to its archive form."""
    return {
        "i": record.index,
        "t": record.timestamp,
        "s": record.sender.address,
        "d": record.destination.address,
        "c": record.currency,
        "a": record.amount,
        "x": record.is_xrp_direct,
        "cc": record.cross_currency,
        "h": record.intermediate_hops,
        "p": record.parallel_paths,
        "via": [account.address for account in record.intermediaries],
        "ok": record.delivered,
        "k": record.kind,
    }


def record_from_json(payload: dict) -> TransactionRecord:
    """Rebuild a payment from its archive form (validates addresses)."""
    try:
        return TransactionRecord(
            index=int(payload["i"]),
            timestamp=int(payload["t"]),
            sender=AccountID.from_address(payload["s"]),
            destination=AccountID.from_address(payload["d"]),
            currency=str(payload["c"]),
            amount=float(payload["a"]),
            is_xrp_direct=bool(payload["x"]),
            cross_currency=bool(payload["cc"]),
            intermediate_hops=int(payload["h"]),
            parallel_paths=int(payload["p"]),
            intermediaries=tuple(
                AccountID.from_address(address) for address in payload["via"]
            ),
            delivered=bool(payload["ok"]),
            kind=str(payload["k"]),
        )
    except KeyError as exc:
        raise AnalysisError(f"archive line missing field {exc}") from None


def dump_archive(
    records: Sequence[TransactionRecord], path: str
) -> int:
    """Write ``records`` to ``path`` (gzip when it ends in .gz).

    Returns the number of payments written.  The first line is a header
    carrying the format version and the record count, so a truncated
    download is detectable — the paper's client had the same problem at
    500 GB scale.
    """
    with _open_write(path) as handle:
        handle.write(
            json.dumps({"version": ARCHIVE_VERSION, "records": len(records)}) + "\n"
        )
        for record in records:
            handle.write(json.dumps(record_to_json(record)) + "\n")
    return len(records)


def iter_archive(path: str) -> Iterator[TransactionRecord]:
    """Stream payments out of an archive (constant memory)."""
    if not os.path.exists(path):
        raise AnalysisError(f"archive not found: {path}")
    with _open_read(path) as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            raise AnalysisError("archive has no valid header line") from None
        if header.get("version") != ARCHIVE_VERSION:
            raise AnalysisError(
                f"unsupported archive version {header.get('version')!r}"
            )
        expected = int(header.get("records", -1))
        count = 0
        for line in handle:
            if not line.strip():
                continue
            yield record_from_json(json.loads(line))
            count += 1
        if expected >= 0 and count != expected:
            raise AnalysisError(
                f"archive truncated: header says {expected} records, read {count}"
            )


def load_archive(path: str) -> List[TransactionRecord]:
    """Read a whole archive into memory."""
    return list(iter_archive(path))
