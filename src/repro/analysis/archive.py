"""Ledger-archive I/O: dump a transaction history to disk and read it back.

The paper's pipeline starts with "an ad-hoc Ripple client that downloaded
more than 500 GB worth of data from the Ripple's distributed ledger".  This
module is the equivalent artifact boundary for the reproduction: a history
can be exported to a gzip-compressed JSONL archive (one payment per line,
exactly the ⟨S, A, T, C, D⟩ + path fields the study extracts) and re-read
later without re-running the generator — so expensive analyses can run on a
frozen dump, the way the authors' did.

The format is deliberately boring and stable:

    {"i": 17, "t": 472230405, "s": "rG9k...", "d": "r4HU...",
     "c": "USD", "a": 4.5, "x": false, "cc": false, "h": 1, "p": 1,
     "via": ["rPpS..."], "ok": true, "k": "fiat"}

Durability contract (PR 4): writes are atomic (temp + fsync + rename) and
sealed with a ``<path>.sha256`` sidecar manifest that reads verify first;
reads run **strict** by default — any malformed line is a typed
:class:`IngestError` carrying its 1-based line number — or **lenient**,
where schema-rejected lines are diverted to a
``<path>.quarantine.jsonl`` sidecar (reason attached) up to a bounded
bad-line fraction.  Truncated gzip streams are reported distinctly from a
file that was never gzip at all.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import IO, Iterator, List, Optional, Sequence

from repro.durability.atomic import atomic_write, verify_manifest
from repro.durability.ingest import (
    DEFAULT_MAX_BAD_FRACTION,
    IngestStats,
    QuarantineWriter,
)
from repro.errors import (
    AnalysisError,
    IngestError,
    QuarantineOverflowError,
    ReproError,
)
from repro.ledger.accounts import AccountID
from repro.synthetic.records import TransactionRecord

ARCHIVE_VERSION = 1

#: Manifest format tag written by :func:`dump_archive`.
ARCHIVE_FORMAT = f"repro-archive/{ARCHIVE_VERSION}"

#: Ripple epoch is 2000-01-01; archive timestamps are seconds after it.
_MIN_TIMESTAMP = 0


def _open_read(path: str) -> IO[str]:
    # errors="replace": a bit-flipped byte that breaks UTF-8 must surface
    # as a failed JSON parse on that line (typed, quarantinable), not as a
    # raw UnicodeDecodeError killing the stream.  Valid records are valid
    # UTF-8, so replacement never touches data that could have decoded.
    if path.endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return open(path, "r", encoding="utf-8", errors="replace")


def record_to_json(record: TransactionRecord) -> dict:
    """Flatten one payment to its archive form."""
    return {
        "i": record.index,
        "t": record.timestamp,
        "s": record.sender.address,
        "d": record.destination.address,
        "c": record.currency,
        "a": record.amount,
        "x": record.is_xrp_direct,
        "cc": record.cross_currency,
        "h": record.intermediate_hops,
        "p": record.parallel_paths,
        "via": [account.address for account in record.intermediaries],
        "ok": record.delivered,
        "k": record.kind,
    }


#: field key -> (long name, required type check); the schema every line
#: must satisfy before it is trusted by any analysis.
_SCHEMA_FIELDS = {
    "i": "index",
    "t": "timestamp",
    "s": "sender",
    "d": "destination",
    "c": "currency",
    "a": "amount",
    "x": "is_xrp_direct",
    "cc": "cross_currency",
    "h": "intermediate_hops",
    "p": "parallel_paths",
    "via": "intermediaries",
    "ok": "delivered",
    "k": "kind",
}


def validate_payload(payload: dict) -> Optional[str]:
    """Schema-check one archive line; returns a rejection reason or None.

    Checks field presence, parseable types, and domain ranges: amounts,
    hop and path counts must be non-negative, the currency a 3-character
    code, the timestamp post-epoch, and the via list a list of strings.
    """
    if not isinstance(payload, dict):
        return "schema:not-an-object"
    for key in _SCHEMA_FIELDS:
        if key not in payload:
            return f"schema:missing:{_SCHEMA_FIELDS[key]}"
    try:
        timestamp = int(payload["t"])
        amount = float(payload["a"])
        hops = int(payload["h"])
        paths = int(payload["p"])
        index = int(payload["i"])
    except (TypeError, ValueError):
        return "schema:type"
    if timestamp < _MIN_TIMESTAMP:
        return "schema:timestamp"
    if not amount >= 0.0:  # also rejects NaN
        return "schema:amount"
    if hops < 0 or paths < 0 or index < 0:
        return "schema:counts"
    currency = payload["c"]
    if not isinstance(currency, str) or len(currency) != 3:
        return "schema:currency"
    via = payload["via"]
    if not isinstance(via, list) or not all(
        isinstance(address, str) for address in via
    ):
        return "schema:via"
    if not isinstance(payload["s"], str) or not isinstance(payload["d"], str):
        return "schema:address"
    return None


def record_from_json(payload: dict) -> TransactionRecord:
    """Rebuild a payment from its archive form (validates addresses)."""
    try:
        return TransactionRecord(
            index=int(payload["i"]),
            timestamp=int(payload["t"]),
            sender=AccountID.from_address(payload["s"]),
            destination=AccountID.from_address(payload["d"]),
            currency=str(payload["c"]),
            amount=float(payload["a"]),
            is_xrp_direct=bool(payload["x"]),
            cross_currency=bool(payload["cc"]),
            intermediate_hops=int(payload["h"]),
            parallel_paths=int(payload["p"]),
            intermediaries=tuple(
                AccountID.from_address(address) for address in payload["via"]
            ),
            delivered=bool(payload["ok"]),
            kind=str(payload["k"]),
        )
    except KeyError as exc:
        raise AnalysisError(f"archive line missing field {exc}") from None


def dump_archive(
    records: Sequence[TransactionRecord], path: str, manifest: bool = True
) -> int:
    """Write ``records`` to ``path`` (gzip when it ends in .gz), atomically.

    Returns the number of payments written.  The first line is a header
    carrying the format version and the record count, so a truncated
    download is detectable — the paper's client had the same problem at
    500 GB scale.  The write is staged and renamed into place (a crash
    never leaves a partial archive at ``path``) and, unless ``manifest``
    is off, sealed with a ``<path>.sha256`` sidecar that reads verify.
    Gzip members are written with a zeroed mtime, so identical records
    always produce identical bytes.
    """
    with atomic_write(path, mode="wb") as raw:
        if path.endswith(".gz"):
            stream = gzip.GzipFile(
                filename="", mode="wb", fileobj=raw, mtime=0
            )
        else:
            stream = raw

        def emit(line: str) -> None:
            stream.write(line.encode("utf-8"))

        emit(
            json.dumps({"version": ARCHIVE_VERSION, "records": len(records)})
            + "\n"
        )
        for record in records:
            emit(json.dumps(record_to_json(record)) + "\n")
        if stream is not raw:
            stream.close()
    if manifest:
        from repro.durability.atomic import write_manifest

        write_manifest(path, records=len(records), fmt=ARCHIVE_FORMAT)
    return len(records)


def _gzip_error(path: str, exc: Exception, started: bool) -> AnalysisError:
    """Classify a gzip failure: truncated stream vs not-gzip-at-all."""
    if isinstance(exc, EOFError) or (started and isinstance(exc, gzip.BadGzipFile)):
        return IngestError(
            f"archive {path}: gzip stream truncated mid-member "
            f"(incomplete download?): {exc}"
        )
    return AnalysisError(
        f"archive {path}: not a valid gzip file (bad magic/header): {exc}"
    )


def iter_archive(
    path: str,
    strict: bool = True,
    max_bad_fraction: float = DEFAULT_MAX_BAD_FRACTION,
    quarantine_path: Optional[str] = None,
    stats: Optional[IngestStats] = None,
) -> Iterator[TransactionRecord]:
    """Stream payments out of an archive (constant memory).

    A ``<path>.sha256`` sidecar manifest, when present, is verified before
    anything is parsed (:class:`~repro.errors.IntegrityError` on
    mismatch).  In ``strict`` mode (default) the first malformed or
    schema-invalid line raises :class:`IngestError` with its 1-based line
    number.  In lenient mode bad lines are diverted — reason attached — to
    ``quarantine_path`` (default ``<path>.quarantine.jsonl``) until their
    fraction exceeds ``max_bad_fraction``, at which point the read aborts
    with :class:`QuarantineOverflowError`.  Pass an :class:`IngestStats`
    to receive read/quarantine tallies; they are also mirrored into
    :data:`repro.obs.metrics.METRICS` when profiling is on.
    """
    if not os.path.exists(path):
        raise AnalysisError(f"archive not found: {path}")
    verify_manifest(path)
    stats = stats if stats is not None else IngestStats()
    quarantine = (
        None if strict else QuarantineWriter(path, path=quarantine_path)
    )
    gz = path.endswith(".gz")
    try:
        handle = _open_read(path)
    except (OSError, EOFError) as exc:
        if gz and isinstance(exc, (gzip.BadGzipFile, EOFError)):
            raise _gzip_error(path, exc, started=False) from None
        raise AnalysisError(f"cannot open archive {path}: {exc}") from None
    try:
        try:
            header_line = handle.readline()
        except (EOFError, gzip.BadGzipFile, OSError) as exc:
            if gz:
                raise _gzip_error(path, exc, started=False) from None
            raise AnalysisError(f"unreadable archive {path}: {exc}") from None
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            raise AnalysisError("archive has no valid header line") from None
        if not isinstance(header, dict) or header.get("version") != ARCHIVE_VERSION:
            version = header.get("version") if isinstance(header, dict) else header
            raise AnalysisError(f"unsupported archive version {version!r}")
        expected = int(header.get("records", -1))
        base_total = stats.total  # caller may pass a cumulative stats object
        line_number = 1  # the header
        lines = iter(handle)
        while True:
            try:
                line = next(lines)
            except StopIteration:
                break
            except (EOFError, gzip.BadGzipFile, OSError) as exc:
                if gz and isinstance(exc, (EOFError, gzip.BadGzipFile)):
                    raise _gzip_error(path, exc, started=True) from None
                raise AnalysisError(f"unreadable archive {path}: {exc}") from None
            line_number += 1
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise IngestError(
                        f"archive {path} line {line_number}: invalid JSON: "
                        f"{exc}",
                        line_number=line_number,
                    ) from None
                stats.record_bad("parse")
                quarantine.divert(line_number, "parse", str(exc), line)
                _check_overflow(path, stats, max_bad_fraction, quarantine)
                continue
            reason = validate_payload(payload)
            if reason is None:
                try:
                    record = record_from_json(payload)
                except (ReproError, ValueError, TypeError) as exc:
                    # e.g. InvalidAddressError from a bit-flipped address.
                    reason = f"decode:{type(exc).__name__}: {exc}"
            if reason is not None:
                if strict:
                    raise IngestError(
                        f"archive {path} line {line_number}: {reason}",
                        line_number=line_number,
                    )
                stats.record_bad(reason)
                quarantine.divert(line_number, reason, reason, line)
                _check_overflow(path, stats, max_bad_fraction, quarantine)
                continue
            stats.record_ok()
            yield record
        seen = stats.total - base_total
        if expected >= 0 and seen != expected:
            raise AnalysisError(
                f"archive truncated: header says {expected} records, "
                f"read {seen}"
            )
    finally:
        handle.close()
        if quarantine is not None:
            quarantine.close()
        stats.mirror_to_metrics()


def _check_overflow(
    path: str,
    stats: IngestStats,
    max_bad_fraction: float,
    quarantine: QuarantineWriter,
) -> None:
    """Abort lenient ingest once the bad-line fraction exceeds the cap.

    The cap only engages after a minimum sample (100 lines), so one bad
    line at the top of a large file does not abort the whole read.
    """
    if stats.total >= 100 and stats.bad_fraction > max_bad_fraction:
        quarantine.close()
        raise QuarantineOverflowError(
            f"archive {path}: {stats.quarantined}/{stats.total} lines "
            f"({stats.bad_fraction:.1%}) failed validation — exceeds the "
            f"{max_bad_fraction:.1%} tolerance; see {quarantine.path}"
        )


def load_archive(
    path: str,
    strict: bool = True,
    max_bad_fraction: float = DEFAULT_MAX_BAD_FRACTION,
    stats: Optional[IngestStats] = None,
) -> List[TransactionRecord]:
    """Read a whole archive into memory."""
    return list(
        iter_archive(
            path,
            strict=strict,
            max_bad_fraction=max_bad_fraction,
            stats=stats,
        )
    )
