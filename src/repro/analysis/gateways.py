"""Gateways vs. common users: the top-intermediary study (Fig. 7).

The appendix finds that just 50 accounts relay ~86 % of the 10M multi-hop
payments; the two most central (``rp2PaY...``, ``r42Ccn...``) are *not*
gateways and relay an order of magnitude more than anyone else; only ~20
of the top 50 are publicly announced gateways.  Trust and balance profiles
separate the classes: gateways concentrate incoming trust and carry
negative balances (they owe their depositors); common users hold positive
balances and must trust at least one gateway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ledger.accounts import AccountID
from repro.ledger.currency import Currency, eur_value
from repro.ledger.state import LedgerState
from repro.synthetic.generator import SyntheticHistory
from repro.synthetic.records import TransactionRecord


@dataclass(frozen=True)
class HubProfile:
    """One x-position of Fig. 7: a top intermediary and its profile."""

    account: AccountID
    label: str
    is_gateway: bool
    times_intermediate: int
    incoming_trust_eur: float
    outgoing_trust_eur: float
    balance_eur: float


#: Spam kinds excluded from the hub ranking: the MTL relay chains are
#: single-purpose attack accounts, not part of the payment fabric the
#: paper's Fig. 7 profiles.
SPAM_KINDS = frozenset({"mtl_spam", "long_spam"})


def intermediary_counts(
    records: Sequence[TransactionRecord],
    exclude_spam: bool = True,
) -> Dict[AccountID, int]:
    """How many multi-hop payments each account relayed (Fig. 7(a))."""
    counts: Dict[AccountID, int] = {}
    for record in records:
        if not record.is_multi_hop:
            continue
        if exclude_spam and record.kind in SPAM_KINDS:
            continue
        for account in record.intermediaries:
            counts[account] = counts.get(account, 0) + 1
    return counts


def trust_profile_eur(state: LedgerState, account: AccountID) -> Tuple[float, float]:
    """(incoming, outgoing) trust of ``account``, EUR-aggregated.

    Incoming trust is what others extend *to* the account (positive in
    Fig. 7(b)); outgoing is what the account extends to others (negative).
    """
    incoming = sum(
        line.limit.to_float() * eur_value(line.currency)
        for line in state.lines_trusting(account)
    )
    outgoing = sum(
        line.limit.to_float() * eur_value(line.currency)
        for line in state.lines_trusted_by(account)
    )
    return float(incoming), float(outgoing)


def balance_eur(state: LedgerState, account: AccountID) -> float:
    """Net credit − debt of ``account`` across currencies, in EUR.

    Matches Fig. 7(c): credit the account holds on others minus the debt
    it owes, plus its XRP.
    """
    total = state.xrp_balance(account) / 10 ** 6 * eur_value(Currency("XRP"))
    for line in state.lines_trusted_by(account):
        total += line.balance.to_float() * eur_value(line.currency)
    for line in state.lines_trusting(account):
        total -= line.balance.to_float() * eur_value(line.currency)
    return float(total)


def top_intermediaries(
    history: SyntheticHistory, top_k: int = 50
) -> List[HubProfile]:
    """The Fig. 7 table: top-k relays with trust and balance profiles."""
    counts = intermediary_counts(history.records)
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])[:top_k]
    profiles: List[HubProfile] = []
    for account, times in ranked:
        incoming, outgoing = trust_profile_eur(history.state, account)
        profiles.append(
            HubProfile(
                account=account,
                label=history.cast.label(account),
                is_gateway=history.cast.is_gateway(account),
                times_intermediate=times,
                incoming_trust_eur=incoming,
                outgoing_trust_eur=outgoing,
                balance_eur=balance_eur(history.state, account),
            )
        )
    return profiles


def coverage_of_top(history: SyntheticHistory, top_k: int = 50) -> float:
    """Fraction of multi-hop payments relayed by at least one of the top-k
    intermediaries (the paper's '50 peers contributed in about 86 %')."""
    counts = intermediary_counts(history.records)
    top = {
        account
        for account, _ in sorted(counts.items(), key=lambda kv: -kv[1])[:top_k]
    }
    multi = [
        record
        for record in history.records
        if record.is_multi_hop and record.kind not in SPAM_KINDS
    ]
    if not multi:
        return 0.0
    covered = sum(
        1
        for record in multi
        if any(account in top for account in record.intermediaries)
    )
    return covered / len(multi)


def gateway_count_in_top(history: SyntheticHistory, top_k: int = 50) -> int:
    """How many of the top-k intermediaries are gateways (paper: ~20/50)."""
    return sum(1 for profile in top_intermediaries(history, top_k) if profile.is_gateway)
