"""CSV export of every figure's data series, for external plotting.

The benches render text; researchers who want to re-plot the figures with
their own tooling get machine-readable series here — one CSV per artifact,
column headers first, no dependencies beyond the standard library.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, Iterable, Sequence

from repro.analysis.currencies import CurrencyUsage
from repro.analysis.gateways import HubProfile
from repro.analysis.market_makers import ReplayResult
from repro.analysis.paths import PathStructure
from repro.analysis.survival import SurvivalCurve
from repro.core.deanonymizer import InformationGain
from repro.core.robustness import PeriodReport
from repro.errors import AnalysisError


def _write(path: str, header: Sequence[str], rows: Iterable[Sequence]) -> int:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def export_figure2(report: PeriodReport, path: str) -> int:
    return _write(
        path,
        ["validator", "total_pages", "valid_pages", "is_ripple_labs"],
        (
            (obs.name, obs.total_pages, obs.valid_pages, obs.is_ripple_labs)
            for obs in report.observations
        ),
    )


def export_figure3(gains: Sequence[InformationGain], path: str) -> int:
    return _write(
        path,
        ["feature_list", "identified", "total", "percent"],
        (
            (ig.feature_list.label(), ig.identified, ig.total, round(ig.percent, 4))
            for ig in gains
        ),
    )


def export_figure4(ranking: Sequence[CurrencyUsage], path: str) -> int:
    return _write(
        path,
        ["currency", "payments", "share", "recognized"],
        (
            (usage.code, usage.payments, round(usage.share, 6), usage.is_recognized)
            for usage in ranking
        ),
    )


def export_figure5(curves: Dict[str, SurvivalCurve], path: str) -> int:
    labels = list(curves)
    if not labels:
        raise AnalysisError("no curves to export")
    grid = list(curves[labels[0]].grid)
    rows = []
    for index, x in enumerate(grid):
        rows.append([x] + [curves[label].values[index] for label in labels])
    return _write(path, ["amount"] + labels, rows)


def export_figure6(structure: PathStructure, path: str) -> int:
    rows = [
        ("hops", hops, count)
        for hops, count in sorted(structure.hops_histogram.items())
    ] + [
        ("parallel_paths", paths, count)
        for paths, count in sorted(structure.parallel_histogram.items())
    ]
    return _write(path, ["series", "x", "payments"], rows)


def export_figure7(profiles: Sequence[HubProfile], path: str) -> int:
    return _write(
        path,
        [
            "label", "address", "is_gateway", "times_intermediate",
            "incoming_trust_eur", "outgoing_trust_eur", "balance_eur",
        ],
        (
            (
                profile.label,
                profile.account.address,
                profile.is_gateway,
                profile.times_intermediate,
                profile.incoming_trust_eur,
                profile.outgoing_trust_eur,
                profile.balance_eur,
            )
            for profile in profiles
        ),
    )


def export_table2(result: ReplayResult, path: str) -> int:
    return _write(
        path,
        ["category", "submitted", "delivered", "delivery_rate"],
        (
            (row.category, row.submitted, row.delivered, round(row.delivery_rate, 6))
            for row in result.rows()
        ),
    )
