"""Market-Maker criticality: offer concentration and the Table II replay.

Two results from the appendix:

* **Offer concentration** — of ~90M offers, the top 10 market makers place
  50 %, the top 50 place 75 %, the top 100 place 87 %: controlling a
  handful of accounts controls most of the system's exchange liquidity.
* **Table II** — starting from a stable snapshot (Feb 2015), replay every
  payment delivered until Aug 2015 on a trust network with market makers
  and their offers removed.  All cross-currency payments fail; ~64 % of
  single-currency payments fail too; only 11.2 % of payments survive.

The replay here is a true counterfactual execution: the snapshot ledger is
copied, post-snapshot trust-line updates are re-applied, deposits are
re-issued, and every payment is re-routed by the real engine with the
maker accounts banned from relaying and the order books disabled.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import AnalysisError, LedgerError, PaymentError
from repro.ledger.accounts import AccountID
from repro.ledger.amounts import Amount
from repro.ledger.currency import Currency
from repro.ledger.state import LedgerState
from repro.payments.engine import PaymentEngine
from repro.synthetic.generator import SyntheticHistory
from repro.synthetic.records import OfferRecord, ReplayIntent


@dataclass(frozen=True)
class OfferConcentration:
    """Share of all offers placed by the top-k market makers."""

    total_offers: int
    shares: Dict[int, float]

    def share_of_top(self, k: int) -> float:
        return self.shares.get(k, 0.0)


def offer_concentration(
    offer_records: Sequence[OfferRecord], top_ks: Iterable[int] = (10, 50, 100)
) -> OfferConcentration:
    """Compute the top-k offer-placement shares (the 50/75/87 % finding)."""
    if not offer_records:
        raise AnalysisError("no offers recorded")
    counts: Dict[AccountID, int] = {}
    for record in offer_records:
        counts[record.owner] = counts.get(record.owner, 0) + 1
    ranked = sorted(counts.values(), reverse=True)
    total = sum(ranked)
    shares = {
        k: sum(ranked[:k]) / total for k in top_ks
    }
    return OfferConcentration(total_offers=total, shares=shares)


@dataclass
class ReplayRow:
    """One row of Table II."""

    category: str
    submitted: int = 0
    delivered: int = 0

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.submitted if self.submitted else 0.0


@dataclass
class ReplayResult:
    """Table II: delivery with market makers removed."""

    cross_currency: ReplayRow = field(
        default_factory=lambda: ReplayRow("Cross-currency")
    )
    single_currency: ReplayRow = field(
        default_factory=lambda: ReplayRow("Single-currency")
    )

    @property
    def total(self) -> ReplayRow:
        row = ReplayRow("Total")
        row.submitted = self.cross_currency.submitted + self.single_currency.submitted
        row.delivered = self.cross_currency.delivered + self.single_currency.delivered
        return row

    def rows(self) -> List[ReplayRow]:
        return [self.cross_currency, self.single_currency, self.total]


def replay_outcomes(
    history: SyntheticHistory,
    remove_market_makers: bool = True,
    banned: Optional[Set[AccountID]] = None,
    remove_offers_of: Optional[Set[AccountID]] = None,
) -> List[Tuple[bool, bool]]:
    """Run the Table II counterfactual; one ``(is_cross_currency,
    delivered)`` outcome per replayed payment, in replay order.

    The replay itself is inherently sequential — every delivered payment
    consumes liquidity the next payments see — so it always runs in one
    process; only the outcome *tally* is shardable (see
    :func:`tally_outcomes` / :func:`merge_replay_results`).

    With ``remove_market_makers=False`` the same replay runs on the intact
    network — the control measuring replay fidelity rather than the attack.

    The cascade scenarios (:mod:`repro.chaos.cascade`) generalize the
    counterfactual: an explicit ``banned`` set removes *those* accounts
    from the relay fabric instead of the all-makers set, and
    ``remove_offers_of`` cancels the victims' order-book offers while
    leaving everyone else's standing.  Removing every maker's offers is
    equivalent to disabling the books outright (only makers place offers
    into ledger state), so the all-makers cascade wave reproduces Table II
    exactly.
    """
    return replay_with_state(
        history,
        remove_market_makers=remove_market_makers,
        banned=banned,
        remove_offers_of=remove_offers_of,
    )[0]


def replay_with_state(
    history: SyntheticHistory,
    remove_market_makers: bool = True,
    banned: Optional[Set[AccountID]] = None,
    remove_offers_of: Optional[Set[AccountID]] = None,
) -> Tuple[List[Tuple[bool, bool]], LedgerState]:
    """:func:`replay_outcomes` plus the post-replay ledger state.

    The cascade scenarios measure credit-network *health* after each
    outage wave, which needs the ledger the replay left behind, not just
    the delivery tallies.
    """
    if history.snapshot_state is None:
        raise AnalysisError(
            "history has no snapshot; generate with a snapshot inside the window"
        )
    state = copy.deepcopy(history.snapshot_state)
    allow_offers = not remove_market_makers
    if banned is None:
        banned = (
            set(history.cast.market_maker_accounts())
            if remove_market_makers
            else set()
        )
    else:
        banned = set(banned)
        allow_offers = True
        for owner in sorted(
            remove_offers_of if remove_offers_of is not None else banned,
            key=lambda account: account.address,
        ):
            state.remove_all_offers_of(owner)
    engine = PaymentEngine(state)

    # Re-apply post-snapshot trust-line updates, as the paper did.
    for event in history.trust_events:
        state.set_trust(
            event.truster,
            event.trustee,
            Amount.from_value(Currency(event.currency), event.limit),
        )

    outcomes: List[Tuple[bool, bool]] = []
    for intent in sorted(history.replay_intents, key=lambda i: i.timestamp):
        if intent.kind == "deposit":
            # Issuance from a gateway to its customer: a one-hop payment on
            # an existing line, unaffected by maker removal.
            try:
                state.apply_hop(
                    intent.sender,
                    intent.receiver,
                    Amount.from_value(Currency(intent.currency), intent.amount),
                )
            except (LedgerError, PaymentError):
                pass  # dropped deposits only make later payments harder
            continue
        send_max = None
        if intent.is_cross_currency:
            send_max = Amount.from_value(
                Currency(intent.spend_currency), intent.amount * 10
            )
        outcome = engine.submit(
            intent.sender,
            intent.receiver,
            Amount.from_value(Currency(intent.currency), intent.amount),
            send_max=send_max,
            banned_intermediaries=banned,
            allow_offers=allow_offers,
        )
        outcomes.append((intent.is_cross_currency, outcome.success))
    return outcomes, state


def tally_outcomes(outcomes: Sequence[Tuple[bool, bool]]) -> ReplayResult:
    """Count replay outcomes into Table II rows (pure, shardable)."""
    result = ReplayResult()
    for is_cross_currency, delivered in outcomes:
        row = (
            result.cross_currency if is_cross_currency else result.single_currency
        )
        row.submitted += 1
        if delivered:
            row.delivered += 1
    return result


def merge_replay_results(partials: Sequence[ReplayResult]) -> ReplayResult:
    """Sum per-shard tallies (integer addition — order-independent)."""
    merged = ReplayResult()
    for partial in partials:
        merged.cross_currency.submitted += partial.cross_currency.submitted
        merged.cross_currency.delivered += partial.cross_currency.delivered
        merged.single_currency.submitted += partial.single_currency.submitted
        merged.single_currency.delivered += partial.single_currency.delivered
    return merged


def replay_without_market_makers(
    history: SyntheticHistory,
    remove_market_makers: bool = True,
) -> ReplayResult:
    """Run the Table II counterfactual over a generated history."""
    return tally_outcomes(replay_outcomes(history, remove_market_makers))


def table2(history: SyntheticHistory) -> ReplayResult:
    """The Table II experiment with makers and offers removed."""
    return replay_without_market_makers(history, remove_market_makers=True)
