"""Most-used currencies (Fig. 4) and related currency statistics.

The paper ranks currencies by payment count over the full history and
highlights: XRP on top (49 %, ~10^7 payments), the unrecognized CCK and MTL
in the top three (crafted spam currencies), BTC as the first well-known
currency (4.7 %), then USD, CNY, JPY, with EUR only 11th at 0.4 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.dataset import TransactionDataset


@dataclass(frozen=True)
class CurrencyUsage:
    """One bar of Fig. 4."""

    code: str
    payments: int
    share: float
    is_recognized: bool


#: ISO-4217-recognized subset among the codes the study encounters; the
#: paper calls out CCK and MTL as *not* in the standard.
_RECOGNIZED = frozenset(
    {
        "USD", "EUR", "CNY", "JPY", "GBP", "AUD", "KRW", "CAD", "NZD", "MXN",
        "BRL", "ILS", "XAU", "XAG", "XPT",
    }
)


def currency_ranking(dataset: TransactionDataset) -> List[CurrencyUsage]:
    """Payment count per currency, descending — the Fig. 4 x-axis order."""
    counts = np.bincount(dataset.currency_ids, minlength=len(dataset.currencies))
    total = int(counts.sum())
    ranking = [
        CurrencyUsage(
            code=dataset.currencies[index],
            payments=int(count),
            share=count / total if total else 0.0,
            is_recognized=dataset.currencies[index] in _RECOGNIZED
            or dataset.currencies[index] == "XRP",
        )
        for index, count in enumerate(counts)
        if count > 0
    ]
    ranking.sort(key=lambda usage: -usage.payments)
    return ranking


def share_of(dataset: TransactionDataset, code: str) -> float:
    """Payment share of one currency."""
    return float(dataset.rows_for_currency(code).mean())


def rank_of(dataset: TransactionDataset, code: str) -> int:
    """1-based rank of ``code`` in the usage ranking (0 when absent)."""
    for position, usage in enumerate(currency_ranking(dataset), start=1):
        if usage.code == code:
            return position
    return 0


def unrecognized_in_top(dataset: TransactionDataset, top: int = 3) -> List[str]:
    """Unrecognized currency codes appearing in the top ``top`` — the
    paper's 'probably crafted for denial of service' finding."""
    return [
        usage.code
        for usage in currency_ranking(dataset)[:top]
        if not usage.is_recognized
    ]
