"""Columnar view of a transaction history, for vectorized analytics.

The paper's pipeline processes 23M payments; per-record Python objects are
the wrong shape for that, so analyses operate on a ``TransactionDataset``:
numpy arrays with factorized account and currency identifiers.  Building
one from :class:`~repro.synthetic.records.TransactionRecord` lists is the
synthetic equivalent of the authors' extract-transform step over the raw
ledger.

Every numeric column — including the ``int8`` kind codes that replace the
old ``dtype=object`` kind strings — lives in **one contiguous byte
buffer**; the column arrays are views into it at the offsets
:func:`column_layout` computes.  That single-buffer shape is what makes
the dataset shareable: :mod:`repro.parallel.shm` copies the same layout
into a ``multiprocessing.shared_memory`` segment and hands workers a
``(segment, offset, rows)`` descriptor instead of a pickle of the arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.ledger.accounts import AccountID
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.synthetic.records import TransactionRecord

#: The shareable numeric columns in buffer order: ``(field, dtype)``.
#: Explicit byte orders keep a descriptor meaningful across processes and
#: machines; the layout is the contract between the in-process dataset,
#: the shared-memory publisher, and the worker-side reconstruction.
NUMERIC_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("timestamps", "<i8"),
    ("sender_ids", "<i8"),
    ("destination_ids", "<i8"),
    ("currency_ids", "<i8"),
    ("amounts", "<f8"),
    ("intermediate_hops", "<i8"),
    ("parallel_paths", "<i8"),
    ("is_xrp_direct", "|b1"),
    ("cross_currency", "|b1"),
    ("kind_codes", "|i1"),
)


def column_layout(n_rows: int) -> Tuple[List[Tuple[str, str, int]], int]:
    """``([(name, dtype, byte offset), ...], total bytes)`` for ``n_rows``.

    Columns are packed in :data:`NUMERIC_COLUMNS` order, each starting on
    an 8-byte boundary so every view is aligned for its dtype regardless
    of how many rows precede it.
    """
    layout: List[Tuple[str, str, int]] = []
    offset = 0
    for name, dtype in NUMERIC_COLUMNS:
        layout.append((name, dtype, offset))
        nbytes = n_rows * np.dtype(dtype).itemsize
        offset += (nbytes + 7) // 8 * 8
    return layout, offset


def consolidate_columns(
    columns: Dict[str, np.ndarray], n_rows: int, out=None
) -> Tuple[object, Dict[str, np.ndarray]]:
    """Pack ``columns`` into one contiguous buffer; return (buffer, views).

    ``out`` is an optional pre-allocated writable buffer (e.g. a
    ``multiprocessing.shared_memory`` block) of at least the layout's
    total size; by default a process-private ``bytearray`` is allocated.
    The returned views alias the buffer — writing one writes the other —
    which is exactly the zero-copy property the shard executor relies on.
    """
    layout, total = column_layout(n_rows)
    buffer = bytearray(total) if out is None else out
    views: Dict[str, np.ndarray] = {}
    for name, dtype, offset in layout:
        view = np.frombuffer(buffer, dtype=dtype, count=n_rows, offset=offset)
        view[:] = columns[name]
        views[name] = view
    return buffer, views


@dataclass
class TransactionDataset:
    """Payments as parallel numpy columns.

    ``accounts``/``currencies`` are the factorization dictionaries:
    ``sender_ids[i]`` indexes into ``accounts``, etc.  Only *delivered*
    payments are included by default — the public ledger's payment view.

    ``kind_codes`` is an ``int8`` column indexing into ``kind_vocab``
    (first-appearance order); the legacy string view is available through
    the :attr:`kinds` property.  The factorization *indexes* are built
    lazily on first lookup — shard workers that only touch the numeric
    columns never pay for hashing every account.
    """

    accounts: Sequence[AccountID]
    currencies: List[str]
    timestamps: np.ndarray
    sender_ids: np.ndarray
    destination_ids: np.ndarray
    currency_ids: np.ndarray
    amounts: np.ndarray
    intermediate_hops: np.ndarray
    parallel_paths: np.ndarray
    is_xrp_direct: np.ndarray
    cross_currency: np.ndarray
    kind_codes: np.ndarray
    kind_vocab: List[str]
    _account_index: Dict[AccountID, int] = field(default_factory=dict, repr=False)
    _currency_index: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if len(self.timestamps) != len(self.sender_ids):
            raise AnalysisError("column length mismatch")
        if len(self.kind_codes) != len(self.timestamps):
            raise AnalysisError("column length mismatch")

    # Construction -----------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Sequence[TransactionRecord],
        delivered_only: bool = True,
    ) -> "TransactionDataset":
        with METRICS.timer("etl.from_records"), TRACER.span("etl.dataset"):
            return cls._from_records(records, delivered_only)

    @classmethod
    def _from_records(
        cls,
        records: Sequence[TransactionRecord],
        delivered_only: bool,
    ) -> "TransactionDataset":
        rows = [
            record
            for record in records
            if record.delivered or not delivered_only
        ]
        if not rows:
            raise AnalysisError("no transactions to build a dataset from")
        n = len(rows)

        # One interning pass in plain Python (dict hits dominate), then bulk
        # array assembly with np.fromiter — per-element numpy scalar stores
        # are ~10x slower than building the id lists first.  The pass keeps
        # the original sender-then-destination interning order per row, so
        # the factorization dictionaries are identical to the historical
        # per-row loop's.
        account_index: Dict[AccountID, int] = {}
        accounts: List[AccountID] = []
        currency_index: Dict[str, int] = {}
        currencies: List[str] = []
        kind_index: Dict[str, int] = {}
        kind_vocab: List[str] = []
        sender_list: List[int] = []
        destination_list: List[int] = []
        currency_list: List[int] = []
        kind_list: List[int] = []
        account_get = account_index.get
        currency_get = currency_index.get
        kind_get = kind_index.get
        for record in rows:
            sender = record.sender
            found = account_get(sender)
            if found is None:
                found = account_index[sender] = len(accounts)
                accounts.append(sender)
            sender_list.append(found)
            destination = record.destination
            found = account_get(destination)
            if found is None:
                found = account_index[destination] = len(accounts)
                accounts.append(destination)
            destination_list.append(found)
            code = record.currency
            found = currency_get(code)
            if found is None:
                found = currency_index[code] = len(currencies)
                currencies.append(code)
            currency_list.append(found)
            kind = record.kind
            found = kind_get(kind)
            if found is None:
                found = kind_index[kind] = len(kind_vocab)
                kind_vocab.append(kind)
            kind_list.append(found)
        if len(kind_vocab) > 127:
            raise AnalysisError("more than 127 payment kinds; int8 overflow")

        # One consolidation pass packs every column into a single
        # contiguous buffer; the dataset's arrays are views into it.
        _buffer, views = consolidate_columns(
            {
                "timestamps": np.fromiter(
                    (r.timestamp for r in rows), dtype=np.int64, count=n
                ),
                "sender_ids": np.array(sender_list, dtype=np.int64),
                "destination_ids": np.array(destination_list, dtype=np.int64),
                "currency_ids": np.array(currency_list, dtype=np.int64),
                "amounts": np.fromiter(
                    (r.amount for r in rows), dtype=np.float64, count=n
                ),
                "intermediate_hops": np.fromiter(
                    (r.intermediate_hops for r in rows), dtype=np.int64, count=n
                ),
                "parallel_paths": np.fromiter(
                    (r.parallel_paths for r in rows), dtype=np.int64, count=n
                ),
                "is_xrp_direct": np.fromiter(
                    (r.is_xrp_direct for r in rows), dtype=bool, count=n
                ),
                "cross_currency": np.fromiter(
                    (r.cross_currency for r in rows), dtype=bool, count=n
                ),
                "kind_codes": np.array(kind_list, dtype=np.int8),
            },
            n,
        )
        return cls(
            accounts=accounts,
            currencies=currencies,
            kind_vocab=kind_vocab,
            _account_index=account_index,
            _currency_index=currency_index,
            **views,
        )

    # Accessors --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def kinds(self) -> np.ndarray:
        """Row kinds as strings (``dtype=object``) — the legacy view.

        Materialized on demand from the ``int8`` codes; analyses that
        filter on kind (``dataset.kinds == "fiat"``) keep working, while
        everything that ships a dataset across a process boundary moves
        the one-byte codes instead of per-row Python strings.
        """
        if not self.kind_vocab:
            return np.empty(len(self.kind_codes), dtype=object)
        vocab = np.array(self.kind_vocab, dtype=object)
        return vocab[self.kind_codes]

    def account_id_of(self, account: AccountID) -> Optional[int]:
        index = self._account_index
        if not index and len(self.accounts):
            # Built in place: slices share this dict with their parent, so
            # one build serves every view of the same factorization.
            index.update(
                (account, position)
                for position, account in enumerate(self.accounts)
            )
        return index.get(account)

    def currency_code(self, currency_id: int) -> str:
        return self.currencies[currency_id]

    def mask_subset(self, mask: np.ndarray) -> "TransactionDataset":
        """A new dataset restricted to rows where ``mask`` is True."""
        if mask.shape != self.timestamps.shape:
            raise AnalysisError("mask shape mismatch")
        return TransactionDataset(
            accounts=self.accounts,
            currencies=self.currencies,
            timestamps=self.timestamps[mask],
            sender_ids=self.sender_ids[mask],
            destination_ids=self.destination_ids[mask],
            currency_ids=self.currency_ids[mask],
            amounts=self.amounts[mask],
            intermediate_hops=self.intermediate_hops[mask],
            parallel_paths=self.parallel_paths[mask],
            is_xrp_direct=self.is_xrp_direct[mask],
            cross_currency=self.cross_currency[mask],
            kind_codes=self.kind_codes[mask],
            kind_vocab=self.kind_vocab,
            _account_index=self._account_index,
            _currency_index=self._currency_index,
        )

    def slice_rows(self, start: int, stop: int) -> "TransactionDataset":
        """A contiguous row shard ``[start, stop)`` for parallel execution.

        The factorization dictionaries (``accounts``, ``currencies``) are
        shared with the parent dataset, so sender/destination/currency ids
        in a shard mean exactly what they mean globally — per-shard
        partials can be merged without re-aligning identifiers.
        """
        return TransactionDataset(
            accounts=self.accounts,
            currencies=self.currencies,
            timestamps=self.timestamps[start:stop],
            sender_ids=self.sender_ids[start:stop],
            destination_ids=self.destination_ids[start:stop],
            currency_ids=self.currency_ids[start:stop],
            amounts=self.amounts[start:stop],
            intermediate_hops=self.intermediate_hops[start:stop],
            parallel_paths=self.parallel_paths[start:stop],
            is_xrp_direct=self.is_xrp_direct[start:stop],
            cross_currency=self.cross_currency[start:stop],
            kind_codes=self.kind_codes[start:stop],
            kind_vocab=self.kind_vocab,
            _account_index=self._account_index,
            _currency_index=self._currency_index,
        )

    def multi_hop_mask(self) -> np.ndarray:
        """The Fig. 6 population: non-direct-XRP with ≥1 intermediate."""
        return (~self.is_xrp_direct) & (self.intermediate_hops >= 1)

    def rows_for_currency(self, code: str) -> np.ndarray:
        index = self._currency_index
        if not index and self.currencies:
            index.update(
                (code_, position)
                for position, code_ in enumerate(self.currencies)
            )
        currency_id = index.get(code)
        if currency_id is None:
            return np.zeros(len(self), dtype=bool)
        return self.currency_ids == currency_id

    def time_window_mask(self, start: int, end: int) -> np.ndarray:
        return (self.timestamps >= start) & (self.timestamps <= end)

    def payments_by_sender(self, sender: AccountID) -> np.ndarray:
        sender_id = self.account_id_of(sender)
        if sender_id is None:
            return np.zeros(len(self), dtype=bool)
        return self.sender_ids == sender_id
