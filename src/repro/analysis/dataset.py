"""Columnar view of a transaction history, for vectorized analytics.

The paper's pipeline processes 23M payments; per-record Python objects are
the wrong shape for that, so analyses operate on a ``TransactionDataset``:
numpy arrays with factorized account and currency identifiers.  Building
one from :class:`~repro.synthetic.records.TransactionRecord` lists is the
synthetic equivalent of the authors' extract-transform step over the raw
ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.ledger.accounts import AccountID
from repro.synthetic.records import TransactionRecord


@dataclass
class TransactionDataset:
    """Payments as parallel numpy columns.

    ``accounts``/``currencies`` are the factorization dictionaries:
    ``sender_ids[i]`` indexes into ``accounts``, etc.  Only *delivered*
    payments are included by default — the public ledger's payment view.
    """

    accounts: List[AccountID]
    currencies: List[str]
    timestamps: np.ndarray
    sender_ids: np.ndarray
    destination_ids: np.ndarray
    currency_ids: np.ndarray
    amounts: np.ndarray
    intermediate_hops: np.ndarray
    parallel_paths: np.ndarray
    is_xrp_direct: np.ndarray
    cross_currency: np.ndarray
    kinds: np.ndarray
    _account_index: Dict[AccountID, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if len(self.timestamps) != len(self.sender_ids):
            raise AnalysisError("column length mismatch")
        if not self._account_index:
            self._account_index = {
                account: index for index, account in enumerate(self.accounts)
            }

    # Construction -----------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Sequence[TransactionRecord],
        delivered_only: bool = True,
    ) -> "TransactionDataset":
        rows = [
            record
            for record in records
            if record.delivered or not delivered_only
        ]
        if not rows:
            raise AnalysisError("no transactions to build a dataset from")
        account_index: Dict[AccountID, int] = {}
        accounts: List[AccountID] = []

        def intern_account(account: AccountID) -> int:
            found = account_index.get(account)
            if found is None:
                found = len(accounts)
                account_index[account] = found
                accounts.append(account)
            return found

        currency_index: Dict[str, int] = {}
        currencies: List[str] = []

        def intern_currency(code: str) -> int:
            found = currency_index.get(code)
            if found is None:
                found = len(currencies)
                currency_index[code] = found
                currencies.append(code)
            return found

        n = len(rows)
        timestamps = np.empty(n, dtype=np.int64)
        sender_ids = np.empty(n, dtype=np.int64)
        destination_ids = np.empty(n, dtype=np.int64)
        currency_ids = np.empty(n, dtype=np.int64)
        amounts = np.empty(n, dtype=np.float64)
        hops = np.empty(n, dtype=np.int64)
        parallel = np.empty(n, dtype=np.int64)
        xrp_direct = np.empty(n, dtype=bool)
        cross = np.empty(n, dtype=bool)
        kinds = np.empty(n, dtype=object)
        for i, record in enumerate(rows):
            timestamps[i] = record.timestamp
            sender_ids[i] = intern_account(record.sender)
            destination_ids[i] = intern_account(record.destination)
            currency_ids[i] = intern_currency(record.currency)
            amounts[i] = record.amount
            hops[i] = record.intermediate_hops
            parallel[i] = record.parallel_paths
            xrp_direct[i] = record.is_xrp_direct
            cross[i] = record.cross_currency
            kinds[i] = record.kind
        return cls(
            accounts=accounts,
            currencies=currencies,
            timestamps=timestamps,
            sender_ids=sender_ids,
            destination_ids=destination_ids,
            currency_ids=currency_ids,
            amounts=amounts,
            intermediate_hops=hops,
            parallel_paths=parallel,
            is_xrp_direct=xrp_direct,
            cross_currency=cross,
            kinds=np.asarray(kinds, dtype=object),
            _account_index=account_index,
        )

    # Accessors --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    def account_id_of(self, account: AccountID) -> Optional[int]:
        return self._account_index.get(account)

    def currency_code(self, currency_id: int) -> str:
        return self.currencies[currency_id]

    def mask_subset(self, mask: np.ndarray) -> "TransactionDataset":
        """A new dataset restricted to rows where ``mask`` is True."""
        if mask.shape != self.timestamps.shape:
            raise AnalysisError("mask shape mismatch")
        return TransactionDataset(
            accounts=self.accounts,
            currencies=self.currencies,
            timestamps=self.timestamps[mask],
            sender_ids=self.sender_ids[mask],
            destination_ids=self.destination_ids[mask],
            currency_ids=self.currency_ids[mask],
            amounts=self.amounts[mask],
            intermediate_hops=self.intermediate_hops[mask],
            parallel_paths=self.parallel_paths[mask],
            is_xrp_direct=self.is_xrp_direct[mask],
            cross_currency=self.cross_currency[mask],
            kinds=self.kinds[mask],
            _account_index=self._account_index,
        )

    def multi_hop_mask(self) -> np.ndarray:
        """The Fig. 6 population: non-direct-XRP with ≥1 intermediate."""
        return (~self.is_xrp_direct) & (self.intermediate_hops >= 1)

    def rows_for_currency(self, code: str) -> np.ndarray:
        try:
            currency_id = self.currencies.index(code)
        except ValueError:
            return np.zeros(len(self), dtype=bool)
        return self.currency_ids == currency_id

    def time_window_mask(self, start: int, end: int) -> np.ndarray:
        return (self.timestamps >= start) & (self.timestamps <= end)

    def payments_by_sender(self, sender: AccountID) -> np.ndarray:
        sender_id = self.account_id_of(sender)
        if sender_id is None:
            return np.zeros(len(self), dtype=bool)
        return self.sender_ids == sender_id
