"""Validator-activity aggregation helpers for the Fig. 2 rendering.

:mod:`repro.core.robustness` produces per-validator observations; this
module classifies and formats them the way the paper's figures and prose
do (active / struggling / zero-valid, per-period summaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.robustness import PeriodReport, ValidatorObservation


@dataclass(frozen=True)
class PeriodSummary:
    """The headline numbers the paper reports for one period."""

    key: str
    label: str
    observed_non_ripple: int
    active_non_ripple: int
    zero_valid: int
    availability: float


def classify(
    report: PeriodReport, active_threshold: float = 0.5, struggle_threshold: float = 0.15
) -> Dict[str, List[str]]:
    """Partition observed validators into the paper's behavioural classes.

    * ``active``   — valid pages comparable to R1–R5;
    * ``struggling`` — some valid pages, but a very small fraction;
    * ``zero_valid`` — signed pages, none on the main ledger;
    * ``absent``   — (almost) never seen.
    """
    active = set(report.active_validators(active_threshold))
    classes: Dict[str, List[str]] = {
        "active": [],
        "struggling": [],
        "zero_valid": [],
        "absent": [],
    }
    labs_median = sorted(
        obs.valid_pages for obs in report.observations if obs.is_ripple_labs
    )
    reference = labs_median[len(labs_median) // 2] if labs_median else 0
    for obs in report.observations:
        if obs.total_pages < max(1, reference * 0.01):
            classes["absent"].append(obs.name)
        elif obs.name in active:
            classes["active"].append(obs.name)
        elif obs.valid_pages == 0:
            classes["zero_valid"].append(obs.name)
        else:
            classes["struggling"].append(obs.name)
    return classes


def summarize(report: PeriodReport) -> PeriodSummary:
    classes = classify(report)
    non_ripple_active = [
        name
        for name in classes["active"]
        if not report.observation(name).is_ripple_labs
    ]
    return PeriodSummary(
        key=report.period.key,
        label=report.period.label,
        observed_non_ripple=report.period.observed_count(),
        active_non_ripple=len(non_ripple_active),
        zero_valid=len(classes["zero_valid"]),
        availability=report.availability,
    )


def figure2_rows(report: PeriodReport) -> List[Tuple[str, int, int]]:
    """(label, total pages, valid pages) rows in the Fig. 2 x-axis order:
    R1–R5 first, then the rest alphabetically."""
    ordered = sorted(
        report.observations, key=lambda obs: (not obs.is_ripple_labs, obs.name)
    )
    return [(obs.name, obs.total_pages, obs.valid_pages) for obs in ordered]
